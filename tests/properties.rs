//! Property-based tests over the core data structures and codecs.
//!
//! The crates.io `proptest` harness is unavailable offline, so these
//! properties are exercised the classic way: a seeded RNG generates a fixed
//! number of random cases per property and every case is asserted. Failures
//! print the offending case seed so a run is reproducible by construction.

use rand::prelude::*;
use rcmo::codec::{decode, decode_prefix, encode, EncoderConfig};
use rcmo::core::cpnet::{improving_flips, samples::random_net, samples::RandomNetSpec};
use rcmo::core::{CpNet, PartialAssignment, PreferenceNet, Value, VarId};
use rcmo::imaging::GrayImage;
use rcmo::storage::{Database, RowValue};

// ---------------------------------------------------------------------
// CP-networks.

/// The optimal outcome of any random acyclic CP-net admits no improving
/// flip (it is a local — and for acyclic nets global — optimum).
#[test]
fn cpnet_optimum_is_flip_free() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for case in 0..48 {
        let spec = RandomNetSpec {
            vars: rng.gen_range(2..14),
            max_domain: rng.gen_range(2..4),
            max_parents: 3,
            seed: rng.gen_range(0..5_000u64),
        };
        let net = random_net(&spec);
        let best = net.optimal_outcome();
        assert!(
            improving_flips(&net, &best).is_empty(),
            "case {case}: {spec:?}"
        );
    }
}

/// Optimal completion respects arbitrary evidence and leaves no improving
/// flip among unconstrained variables.
#[test]
fn cpnet_completion_respects_evidence() {
    let mut rng = StdRng::seed_from_u64(0xE71DE);
    for case in 0..48 {
        let spec = RandomNetSpec {
            vars: rng.gen_range(2..12),
            max_domain: 2,
            max_parents: 2,
            seed: rng.gen_range(0..5_000u64),
        };
        let net = random_net(&spec);
        let mut ev = PartialAssignment::empty(net.len());
        for _ in 0..rng.gen_range(0..4usize) {
            let v = rng.gen_range(0..12usize);
            let val = rng.gen_range(0..2u16);
            if v < net.len() {
                ev.set(VarId(v as u32), Value(val));
            }
        }
        let out = net.optimal_completion(&ev);
        assert!(ev.consistent_with(&out), "case {case}: {spec:?}");
        for (v, val) in improving_flips(&net, &out) {
            // Any improving flip must be on an evidence variable (we are
            // optimal only among completions of the evidence).
            assert!(
                ev.get(v).is_some(),
                "case {case}: free var {v} improvable to {val} ({spec:?})"
            );
        }
    }
}

/// The binary codec round-trips arbitrary random networks exactly.
#[test]
fn cpnet_codec_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x0DEC);
    for case in 0..48 {
        let spec = RandomNetSpec {
            vars: rng.gen_range(1..10),
            max_domain: 4,
            max_parents: 3,
            seed: rng.gen_range(0..5_000u64),
        };
        let net = random_net(&spec);
        let back = CpNet::from_bytes(&net.to_bytes()).unwrap();
        assert_eq!(back.len(), net.len(), "case {case}: {spec:?}");
        assert_eq!(back.optimal_outcome(), net.optimal_outcome());
        for i in 0..net.len() {
            let v = VarId(i as u32);
            assert_eq!(back.parents(v), net.parents(v));
            assert_eq!(back.var_name(v), net.var_name(v));
        }
    }
}

/// Preference-ordered enumeration starts at the optimum, never repeats,
/// and is exhaustive on small nets.
#[test]
fn cpnet_enumeration_is_a_permutation() {
    let mut rng = StdRng::seed_from_u64(0xE9);
    for case in 0..24 {
        let seed = rng.gen_range(0..2_000u64);
        let net = random_net(&RandomNetSpec {
            vars: 6,
            max_domain: 2,
            max_parents: 2,
            seed,
        });
        let all: Vec<_> = net
            .outcomes_by_preference(&PartialAssignment::empty(net.len()))
            .collect();
        assert_eq!(all.len(), 1 << 6, "case {case} seed {seed}");
        assert_eq!(all[0].clone(), net.optimal_outcome());
        let unique: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(unique.len(), all.len(), "case {case} seed {seed}");
    }
}

// ---------------------------------------------------------------------
// Layered image codec.

/// Encode/decode round-trips arbitrary image sizes with bounded error
/// (the finest layer's quantiser bounds per-pixel error loosely).
#[test]
fn codec_roundtrip_bounded_error() {
    let mut rng = StdRng::seed_from_u64(0x1347);
    for case in 0..24 {
        let (w, h) = (rng.gen_range(9usize..70), rng.gen_range(9usize..70));
        let seed = rng.gen_range(0..10_000u64);
        let img = GrayImage::from_fn(w, h, |x, y| {
            let v = (x as u64 * 31 + y as u64 * 17 + seed) % 251;
            v as u8
        })
        .unwrap();
        let bytes = encode(&img, &EncoderConfig::default()).unwrap();
        let out = decode(&bytes).unwrap();
        assert_eq!(out.width(), w, "case {case} {w}x{h} seed {seed}");
        assert_eq!(out.height(), h);
        let max_err = img
            .pixels()
            .iter()
            .zip(out.pixels())
            .map(|(&a, &b)| (a as i32 - b as i32).abs())
            .max()
            .unwrap();
        assert!(
            max_err <= 64,
            "case {case} {w}x{h} seed {seed}: max pixel error {max_err}"
        );
    }
}

/// Any byte prefix either decodes (to ≥1 layer) or fails cleanly — never
/// panics, never produces the wrong dimensions.
#[test]
fn codec_prefix_safety() {
    let mut rng = StdRng::seed_from_u64(0x9AFE);
    let img = GrayImage::from_fn(40, 33, |x, y| ((x * 7 + y * 13) % 256) as u8).unwrap();
    let bytes = encode(&img, &EncoderConfig::default()).unwrap();
    for _ in 0..200 {
        let cut = rng.gen_range(0..=bytes.len());
        if let Ok((out, layers)) = decode_prefix(&bytes[..cut]) {
            assert!(layers >= 1);
            assert_eq!(out.width(), 40, "cut {cut}");
            assert_eq!(out.height(), 33, "cut {cut}");
        }
    }
}

// ---------------------------------------------------------------------
// Storage engine vs. a model.

/// Random insert/update/delete workloads agree with a BTreeMap model
/// across commits and rollbacks.
#[test]
fn table_matches_model() {
    use std::collections::BTreeMap;
    let mut rng = StdRng::seed_from_u64(0x7AB1E);
    for case in 0..16 {
        let db = Database::in_memory().unwrap();
        {
            let mut tx = db.begin().unwrap();
            tx.create_table(
                "T",
                rcmo::storage::Schema::new(vec![
                    rcmo::storage::Column::new("ID", rcmo::storage::ColumnType::U64),
                    rcmo::storage::Column::new("V", rcmo::storage::ColumnType::I64),
                ])
                .unwrap(),
            )
            .unwrap();
            tx.commit().unwrap();
        }
        let mut model: BTreeMap<u64, i64> = BTreeMap::new();
        let mut tx = db.begin().unwrap();
        for step in 0..rng.gen_range(1..80usize) {
            let op = rng.gen_range(0u8..4);
            let key = rng.gen_range(0..48u64) + 1; // keys start at 1
            let val = rng.gen::<u16>() as i64;
            let ctx = format!("case {case} step {step} op {op} key {key}");
            match op {
                0 => {
                    // insert (duplicate keys must be rejected by the engine)
                    if let std::collections::btree_map::Entry::Vacant(e) = model.entry(key) {
                        tx.insert("T", vec![RowValue::U64(key), RowValue::I64(val)])
                            .unwrap();
                        e.insert(val);
                    } else {
                        assert!(
                            tx.insert("T", vec![RowValue::U64(key), RowValue::I64(val)])
                                .is_err(),
                            "{ctx}"
                        );
                    }
                }
                1 => {
                    // update
                    if let std::collections::btree_map::Entry::Occupied(mut e) = model.entry(key) {
                        tx.update("T", key, vec![RowValue::Null, RowValue::I64(val)])
                            .unwrap();
                        e.insert(val);
                    } else {
                        assert!(
                            tx.update("T", key, vec![RowValue::Null, RowValue::I64(val)])
                                .is_err(),
                            "{ctx}"
                        );
                    }
                }
                2 => {
                    // delete
                    if model.remove(&key).is_some() {
                        tx.delete("T", key).unwrap();
                    } else {
                        assert!(tx.delete("T", key).is_err(), "{ctx}");
                    }
                }
                _ => {
                    // point lookup
                    let got = tx.get("T", key).unwrap();
                    match model.get(&key) {
                        Some(&v) => {
                            let row = got.unwrap();
                            assert_eq!(row[1].clone(), RowValue::I64(v), "{ctx}");
                        }
                        None => assert!(got.is_none(), "{ctx}"),
                    }
                }
            }
        }
        // Full scan agrees with the model, in key order.
        let rows = tx.scan("T").unwrap();
        let got: Vec<(u64, i64)> = rows
            .iter()
            .map(|r| {
                (
                    r[0].as_u64().unwrap(),
                    match r[1] {
                        RowValue::I64(v) => v,
                        _ => unreachable!(),
                    },
                )
            })
            .collect();
        let want: Vec<(u64, i64)> = model.into_iter().collect();
        assert_eq!(got, want, "case {case}");
        tx.commit().unwrap();
    }
}

/// Snapshot readers observe *exactly* the state a serial execution had at
/// the moment the snapshot was taken: never a partially-applied
/// transaction, never a later commit, never a rolled-back one — no matter
/// how many writers commit, roll back, or checkpoint after the snapshot.
#[test]
fn snapshot_readers_observe_serial_states() {
    use std::collections::BTreeMap;

    fn dump_reader(tx: &rcmo::storage::ReadTransaction<'_>) -> BTreeMap<u64, i64> {
        tx.scan("T")
            .unwrap()
            .into_iter()
            .map(|r| {
                (
                    r[0].as_u64().unwrap(),
                    match r[1] {
                        RowValue::I64(v) => v,
                        ref other => panic!("unexpected value {other:?}"),
                    },
                )
            })
            .collect()
    }

    let mut rng = StdRng::seed_from_u64(0x05EE_D5A9);
    for case in 0..8 {
        let db = Database::in_memory().unwrap();
        {
            let mut tx = db.begin().unwrap();
            tx.create_table(
                "T",
                rcmo::storage::Schema::new(vec![
                    rcmo::storage::Column::new("ID", rcmo::storage::ColumnType::U64),
                    rcmo::storage::Column::new("V", rcmo::storage::ColumnType::I64),
                ])
                .unwrap(),
            )
            .unwrap();
            tx.commit().unwrap();
        }

        // Committed serial state, and the snapshots pinned along the way
        // (each paired with the model state at pin time).
        let mut model: BTreeMap<u64, i64> = BTreeMap::new();
        let mut pinned: Vec<(rcmo::storage::ReadTransaction<'_>, BTreeMap<u64, i64>)> = Vec::new();

        for txn in 0..24 {
            let mut scratch = model.clone();
            let mut tx = db.begin().unwrap();
            for _ in 0..rng.gen_range(1..8usize) {
                let key = rng.gen_range(1..32u64);
                let val = rng.gen::<u16>() as i64;
                match scratch.entry(key) {
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        if rng.gen_bool(0.5) {
                            tx.update("T", key, vec![RowValue::Null, RowValue::I64(val)])
                                .unwrap();
                            e.insert(val);
                        } else {
                            tx.delete("T", key).unwrap();
                            e.remove();
                        }
                    }
                    std::collections::btree_map::Entry::Vacant(e) => {
                        tx.insert("T", vec![RowValue::U64(key), RowValue::I64(val)])
                            .unwrap();
                        e.insert(val);
                    }
                }
            }
            // A snapshot taken while the writer holds uncommitted changes
            // must see the last *committed* state, not the scratch one.
            if rng.gen_bool(0.3) {
                let snap = db.begin_read().unwrap();
                assert_eq!(
                    dump_reader(&snap),
                    model,
                    "case {case} txn {txn}: mid-transaction snapshot saw dirty state"
                );
                drop(snap);
            }
            if rng.gen_bool(0.75) {
                tx.commit().unwrap();
                model = scratch;
            } else {
                tx.rollback();
            }
            // Occasionally pin a snapshot at this commit point and keep it
            // alive across later commits (and skipped checkpoints).
            if rng.gen_bool(0.35) {
                pinned.push((db.begin_read().unwrap(), model.clone()));
            }
            // Occasionally release an old pin so checkpoints can fold.
            if pinned.len() > 3 {
                pinned.remove(0);
            }
        }

        for (i, (snap, expect)) in pinned.iter().enumerate() {
            assert_eq!(
                &dump_reader(snap),
                expect,
                "case {case}: pinned snapshot {i} drifted from its serial state"
            );
            assert_eq!(snap.count("T").unwrap(), expect.len(), "case {case}");
            for key in 1..32u64 {
                let got = snap.get("T", key).unwrap().map(|r| match r[1] {
                    RowValue::I64(v) => v,
                    ref other => panic!("unexpected value {other:?}"),
                });
                assert_eq!(got, expect.get(&key).copied(), "case {case} key {key}");
            }
        }
        drop(pinned);
        // With every snapshot released the deferred fold must go through.
        db.checkpoint().unwrap();
        let final_reader = db.begin_read().unwrap();
        assert_eq!(
            dump_reader(&final_reader),
            model,
            "case {case}: final state"
        );
    }
}

/// BLOBs of arbitrary contents round-trip exactly, including prefixes.
#[test]
fn blob_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xB10B);
    for case in 0..12 {
        let len = rng.gen_range(0..60_000usize);
        let data: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        let cut = rng.gen_range(0..70_000usize);
        let db = Database::in_memory().unwrap();
        let mut tx = db.begin().unwrap();
        let id = tx.put_blob(&data).unwrap();
        assert_eq!(tx.get_blob(id).unwrap(), data, "case {case} len {len}");
        let prefix = tx.get_blob_prefix(id, cut).unwrap();
        assert_eq!(&prefix[..], &data[..cut.min(data.len())], "case {case}");
        assert_eq!(tx.blob_len(id).unwrap(), data.len() as u64);
    }
}

// ---------------------------------------------------------------------
// Documents.

/// Randomly shaped documents validate, serialise, and reload identically
/// (outline + optimal presentation).
#[test]
fn document_roundtrip() {
    use rcmo::core::{FormKind, MediaRef, MultimediaDocument, PresentationForm};
    let mut rng = StdRng::seed_from_u64(0xD0C);
    for case in 0..32 {
        let mut doc = MultimediaDocument::new("prop");
        let mut composites = vec![doc.root()];
        let shape_len = rng.gen_range(1..12usize);
        for i in 0..shape_len {
            let parent = composites[i % composites.len()];
            match rng.gen_range(0u8..3) {
                0 => {
                    let c = doc.add_composite(parent, &format!("folder{i}")).unwrap();
                    composites.push(c);
                }
                1 => {
                    doc.add_primitive(
                        parent,
                        &format!("leaf{i}"),
                        MediaRef::None,
                        vec![
                            PresentationForm::new("flat", FormKind::Flat, i as u64 * 100),
                            PresentationForm::hidden(),
                        ],
                    )
                    .unwrap();
                }
                _ => {
                    doc.add_primitive(
                        parent,
                        &format!("media{i}"),
                        MediaRef::Inline(vec![i as u8; 16]),
                        vec![
                            PresentationForm::new("flat", FormKind::Flat, 1_000),
                            PresentationForm::new("icon", FormKind::Icon, 10),
                            PresentationForm::hidden(),
                        ],
                    )
                    .unwrap();
                }
            }
        }
        doc.validate().unwrap();
        let back = MultimediaDocument::from_bytes(&doc.to_bytes()).unwrap();
        assert_eq!(back.outline(), doc.outline(), "case {case}");
        assert_eq!(back.net().optimal_outcome(), doc.net().optimal_outcome());
        assert_eq!(back.num_components(), doc.num_components());
    }
}

// ---------------------------------------------------------------------
// Robustness: decoders must never panic on hostile bytes.

/// Random bytes into every public decoder: errors are fine, panics are
/// not, and truncations of valid streams never crash either.
#[test]
fn decoders_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xF00);
    for _ in 0..64 {
        let len = rng.gen_range(0..400usize);
        let data: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        let _ = rcmo::codec::decode(&data);
        let _ = rcmo::codec::decode_prefix(&data);
        let _ = CpNet::from_bytes(&data);
        let _ = rcmo::core::MultimediaDocument::from_bytes(&data);
        let _ = rcmo::imaging::GrayImage::from_bytes(&data);
        let _ = rcmo::imaging::AnnotatedImage::from_bytes(&data);
        let _ = rcmo::audio::segment::decode_segments(&data);
    }
}

/// Truncating a valid document stream at any point yields a clean error
/// (or, at full length, the document).
#[test]
fn document_truncation_is_clean() {
    use rcmo::core::{FormKind, MediaRef, MultimediaDocument, PresentationForm};
    let mut doc = MultimediaDocument::new("t");
    doc.add_primitive(
        doc.root(),
        "leaf",
        MediaRef::Inline(vec![1, 2, 3]),
        vec![
            PresentationForm::new("flat", FormKind::Flat, 10),
            PresentationForm::hidden(),
        ],
    )
    .unwrap();
    let bytes = doc.to_bytes();
    for cut in 0..=bytes.len() {
        match MultimediaDocument::from_bytes(&bytes[..cut]) {
            Ok(d) => assert_eq!(
                cut,
                bytes.len(),
                "only the full stream decodes: {}",
                d.title()
            ),
            Err(_) => assert!(cut < bytes.len()),
        }
    }
}

/// The annotated-image overlay codec round-trips arbitrary elements.
#[test]
fn overlay_roundtrip() {
    use rcmo::imaging::{AnnotatedImage, GrayImage, LineElement, TextElement};
    let mut rng = StdRng::seed_from_u64(0x0E1);
    for case in 0..32 {
        let mut img = AnnotatedImage::new(GrayImage::new(32, 32).unwrap());
        for _ in 0..rng.gen_range(0..6usize) {
            let text: String = (0..rng.gen_range(0..12usize))
                .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                .collect();
            img.add_text(TextElement {
                x: rng.gen_range(0..64usize),
                y: rng.gen_range(0..64usize),
                text,
                intensity: 200,
                scale: 1,
            });
        }
        for _ in 0..rng.gen_range(0..6usize) {
            img.add_line(LineElement {
                x0: rng.gen_range(-64i64..128),
                y0: rng.gen_range(-64i64..128),
                x1: rng.gen_range(-64i64..128),
                y1: rng.gen_range(-64i64..128),
                intensity: 100,
            });
        }
        let back = AnnotatedImage::from_bytes(&img.to_bytes()).unwrap();
        assert_eq!(&back, &img, "case {case}");
        let via_parts =
            AnnotatedImage::from_parts(img.base().clone(), &img.overlay_to_bytes()).unwrap();
        assert_eq!(via_parts, img, "case {case}");
        // Rendering never panics, whatever the coordinates.
        let _ = back.render();
    }
}

// ---------------------------------------------------------------------
// Write-ahead log under crash injection.

/// WAL replay recovers exactly the transactions whose commit record
/// survived a torn tail write, with all their page images intact — a crash
/// at *any* byte position loses only uncommitted work.
#[test]
fn wal_replay_recovers_committed_state_under_torn_tails() {
    use rcmo::storage::wal::{Wal, WalRecord};
    use rcmo::storage::{PageId, PAGE_SIZE};
    use std::collections::HashMap;

    let mut rng = StdRng::seed_from_u64(0x7EA6_7A11);
    for case in 0..40 {
        // Build a random log: a few transactions, each dirtying a few
        // pages; ~1 in 5 never commits. Track the byte offset at which
        // each record ends, plus each transaction's commit end offset.
        let mut wal = Wal::in_memory();
        let mut record_ends: Vec<u64> = Vec::new();
        let mut commit_end: HashMap<u64, u64> = HashMap::new();
        // Model of what each transaction wrote, in log order.
        let mut writes: Vec<(u64, PageId, u8)> = Vec::new();
        let n_txns = rng.gen_range(1..6u64);
        for txn in 1..=n_txns {
            for _ in 0..rng.gen_range(1..4usize) {
                let page = PageId(rng.gen_range(0..8u64));
                let fill = rng.gen_range(0..=255u8);
                wal.log_page(txn, page, &[fill; PAGE_SIZE]).unwrap();
                record_ends.push(wal.len().unwrap());
                writes.push((txn, page, fill));
            }
            if rng.gen_bool(0.8) {
                wal.log_commit(txn).unwrap();
                let end = wal.len().unwrap();
                record_ends.push(end);
                commit_end.insert(txn, end);
            }
        }
        let total = wal.len().unwrap();

        // Crash injection: tear the log at a random byte (anywhere from
        // "right after the magic" to "nothing lost at all").
        let cut = rng.gen_range(4..=total);
        wal.backend_mut().set_len(cut).unwrap();

        // Records are decoded iff they fit entirely within the cut, and
        // a transaction survives iff its commit record does.
        let expect_records = record_ends.iter().filter(|&&e| e <= cut).count();
        let expect_committed: Vec<u64> = commit_end
            .iter()
            .filter(|(_, &e)| e <= cut)
            .map(|(&t, _)| t)
            .collect();

        let records = wal.records().unwrap();
        assert_eq!(records.len(), expect_records, "case {case} cut {cut}");
        let (images, committed) = wal.committed_images().unwrap();
        assert_eq!(
            {
                let mut c: Vec<u64> = committed.iter().copied().collect();
                c.sort_unstable();
                c
            },
            {
                let mut c = expect_committed.clone();
                c.sort_unstable();
                c
            },
            "case {case} cut {cut}"
        );

        // Redo-only WAL: a committed transaction's page images all precede
        // its commit, so every one of its writes must be replayed, in
        // order — fold both the model and the replay into final page
        // states and compare.
        let mut want: HashMap<PageId, u8> = HashMap::new();
        for &(txn, page, fill) in &writes {
            if committed.contains(&txn) {
                want.insert(page, fill);
            }
        }
        let mut got: HashMap<PageId, u8> = HashMap::new();
        for (page, image) in &images {
            assert!(image.iter().all(|&b| b == image[0]), "uniform fill");
            got.insert(*page, image[0]);
        }
        assert_eq!(got, want, "case {case} cut {cut}");

        // Uncommitted writes never replay.
        for r in &records {
            if let WalRecord::PageImage { txn, .. } = r {
                assert!(
                    committed.contains(txn)
                        || images.iter().all(|(p, i)| {
                            writes
                                .iter()
                                .any(|&(t, wp, f)| committed.contains(&t) && wp == *p && f == i[0])
                        }),
                    "case {case}: replayed an uncommitted image"
                );
            }
        }
    }
}

/// A flipped byte anywhere in the log stops replay at the damaged record:
/// everything before it is recovered, nothing after it leaks through, and
/// decoding never panics.
#[test]
fn wal_corruption_never_panics_and_keeps_the_clean_prefix() {
    use rcmo::storage::wal::Wal;
    use rcmo::storage::{PageId, PAGE_SIZE};

    let mut rng = StdRng::seed_from_u64(0xBAD_C0DE);
    for case in 0..40 {
        let mut wal = Wal::in_memory();
        let mut record_ends: Vec<u64> = vec![4];
        let n_txns = rng.gen_range(1..5u64);
        for txn in 1..=n_txns {
            let page = PageId(txn);
            wal.log_page(txn, page, &[txn as u8; PAGE_SIZE]).unwrap();
            record_ends.push(wal.len().unwrap());
            wal.log_commit(txn).unwrap();
            record_ends.push(wal.len().unwrap());
        }
        let total = wal.len().unwrap();

        let flip_at = rng.gen_range(4..total);
        let mut byte = [0u8; 1];
        wal.backend_mut().read_at(flip_at, &mut byte).unwrap();
        byte[0] ^= 1 << rng.gen_range(0..8u32);
        wal.backend_mut().write_at(flip_at, &byte).unwrap();

        // Replay must stop at (or before) the record containing the flip.
        let clean_records = record_ends
            .iter()
            .filter(|&&e| e <= flip_at)
            .count()
            .saturating_sub(1); // drop the sentinel at offset 4
        let records = wal.records().unwrap();
        assert!(
            records.len() <= clean_records + 1,
            "case {case}: replay ran past the damage ({} > {})",
            records.len(),
            clean_records + 1,
        );
        // CRC catches the damaged record itself, so the decoded count is
        // exactly the clean prefix.
        assert_eq!(records.len(), clean_records, "case {case} flip {flip_at}");
        // And a commit that survived keeps its page image intact.
        let (images, committed) = wal.committed_images().unwrap();
        for (page, image) in &images {
            assert!(committed.contains(&page.0), "case {case}");
            assert!(image.iter().all(|&b| b == page.0 as u8), "case {case}");
        }
    }
}

// ---------------------------------------------------------------------
// Change-log resync.

/// Resync at the exact eviction boundary: for every `last_seen` around the
/// oldest-retained sequence number, `events_since` either replays a dense,
/// gapless tail running `last_seen + 1 ..= last_seq` (the `Resync::Events`
/// path) or reports "beyond the horizon" (forcing `Resync::Snapshot`) —
/// with no off-by-one gap and no duplicated event on either side of the
/// edge.
#[test]
fn change_log_resync_has_no_gap_at_the_eviction_boundary() {
    use rcmo::server::{ChangeLog, RoomEvent};

    let mut rng = StdRng::seed_from_u64(0x0B0B_5EA1);
    for case in 0..80 {
        let capacity = rng.gen_range(1..20usize);
        let pushed = rng.gen_range(0..60u64);
        let mut log = ChangeLog::new(capacity);
        for i in 1..=pushed {
            log.push(RoomEvent::Chat {
                user: "u".into(),
                text: format!("m{i}"),
            });
        }
        let last = log.last_seq();
        assert_eq!(last, pushed, "case {case}");
        let first = log.first_retained_seq();

        // Probe every last_seen within ±2 of the horizon plus the extremes.
        let mut probes = vec![0, last, last + 1, last + 5];
        if let Some(f) = first {
            for d in 0..=2u64 {
                probes.push(f.saturating_sub(d));
                probes.push(f + d);
            }
        }
        for &seen in &probes {
            match log.events_since(seen) {
                Some(tail) => {
                    if seen >= last {
                        assert!(
                            tail.is_empty(),
                            "case {case}: caught-up client (seen {seen}) got events"
                        );
                        continue;
                    }
                    let seqs: Vec<u64> = tail.iter().map(|e| e.seq).collect();
                    let want: Vec<u64> = (seen + 1..=last).collect();
                    assert_eq!(
                        seqs, want,
                        "case {case} cap {capacity} pushed {pushed} seen {seen}: \
                         tail must be dense and end at last_seq"
                    );
                }
                None => {
                    // Snapshot is only legal when the first missed event
                    // (last_seen + 1) was truly evicted.
                    let f = first.expect("snapshot forced on an empty log");
                    assert!(
                        seen + 1 < f,
                        "case {case}: snapshot forced although event {} is retained (first {f})",
                        seen + 1
                    );
                }
            }
        }

        // The boundary itself, when eviction has happened: last_seen ==
        // first_retained - 1 must still replay; one further back must not.
        if let Some(f) = first {
            if f > 1 {
                assert!(
                    log.events_since(f - 1).is_some(),
                    "case {case}: replay lost at last_seen == first_retained - 1"
                );
                assert!(
                    log.events_since(f - 2).is_none(),
                    "case {case}: replay claimed an evicted event at first_retained - 2"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Broadcast fan-out.

/// The bounded per-member queues deliver the same gap-free total order
/// the pre-refactor per-clone channels did: for any random mix of
/// members, roles, and actions, every member that keeps draining observes
/// a dense sequence `join_seq..=last_seq` with payloads identical across
/// members — encode-once fan-out changes the cost, never the stream.
#[test]
fn fanout_queues_preserve_the_broadcast_total_order() {
    use rcmo::mediadb::{AccessLevel, DocumentObject, MediaDb};
    use rcmo::server::{Action, InteractionServer, JoinRequest, SequencedEvent};

    let mut rng = StdRng::seed_from_u64(0xFA_2007);
    for case in 0..24 {
        let db = MediaDb::in_memory().unwrap();
        let members = rng.gen_range(2..9usize);
        for m in 0..members {
            db.put_user("admin", &format!("u{m}"), AccessLevel::Write)
                .unwrap();
        }
        let mut doc = rcmo::core::MultimediaDocument::new("lecture notes");
        doc.add_primitive(
            doc.root(),
            "Slide",
            rcmo::core::MediaRef::None,
            vec![
                rcmo::core::PresentationForm::new("flat", rcmo::core::FormKind::Flat, 1_000),
                rcmo::core::PresentationForm::hidden(),
            ],
        )
        .unwrap();
        doc.validate().unwrap();
        let doc_id = db
            .insert_document(
                "admin",
                &DocumentObject {
                    title: "lecture notes".into(),
                    data: doc.to_bytes(),
                },
            )
            .unwrap();

        let srv = InteractionServer::new(db);
        let room = srv.create_room("u0", "lecture", doc_id).unwrap();
        let conns: Vec<_> = (0..members)
            .map(|m| {
                let req = if m == 0 {
                    JoinRequest::presenter("u0")
                } else if rng.gen_bool(0.5) {
                    JoinRequest::moderator(&format!("u{m}"))
                } else {
                    JoinRequest::viewer(&format!("u{m}"))
                };
                srv.join(room, &req).unwrap()
            })
            .collect();

        let ops = rng.gen_range(5..40usize);
        for i in 0..ops {
            // Only the presenter mutates; everyone chats. Denied calls
            // must not perturb the stream, so sprinkle some in too.
            let actor = rng.gen_range(0..members);
            let action = Action::Chat {
                text: format!("c{case}-m{i}"),
            };
            srv.act(room, &format!("u{actor}"), action).unwrap();
            if rng.gen_bool(0.2) {
                let _ = srv.save_document(room, &format!("u{actor}"));
            }
        }

        let last = srv.last_seq(room).unwrap();
        let mut reference: Option<Vec<SequencedEvent>> = None;
        for (m, conn) in conns.iter().enumerate() {
            let got: Vec<SequencedEvent> = conn.events.try_iter().collect();
            let seqs: Vec<u64> = got.iter().map(|e| e.seq).collect();
            assert!(
                seqs.windows(2).all(|w| w[1] == w[0] + 1),
                "case {case}: member {m} saw a gap: {seqs:?}"
            );
            assert_eq!(
                *seqs.last().unwrap(),
                last,
                "case {case}: member {m} missed the tail"
            );
            // Later joiners see a suffix of the first member's stream:
            // same events, same order, from their own join onward.
            match &reference {
                None => reference = Some(got),
                Some(r) => {
                    let offset = r.len() - got.len();
                    assert_eq!(
                        &r[offset..],
                        &got[..],
                        "case {case}: member {m} diverged from the total order"
                    );
                }
            }
        }
    }
}
