//! Property-based tests over the core data structures and codecs.

use proptest::prelude::*;
use rcmo::codec::{decode, decode_prefix, encode, EncoderConfig};
use rcmo::core::cpnet::{improving_flips, samples::random_net, samples::RandomNetSpec};
use rcmo::core::{CpNet, PartialAssignment, PreferenceNet, Value, VarId};
use rcmo::imaging::GrayImage;
use rcmo::storage::{Database, RowValue};

// ---------------------------------------------------------------------
// CP-networks.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The optimal outcome of any random acyclic CP-net admits no improving
    /// flip (it is a local — and for acyclic nets global — optimum).
    #[test]
    fn cpnet_optimum_is_flip_free(seed in 0u64..5_000, vars in 2usize..14, dom in 2usize..4) {
        let net = random_net(&RandomNetSpec { vars, max_domain: dom, max_parents: 3, seed });
        let best = net.optimal_outcome();
        prop_assert!(improving_flips(&net, &best).is_empty());
    }

    /// Optimal completion respects arbitrary evidence and leaves no
    /// improving flip among unconstrained variables.
    #[test]
    fn cpnet_completion_respects_evidence(
        seed in 0u64..5_000,
        vars in 2usize..12,
        pins in proptest::collection::vec((0usize..12, 0u16..2), 0..4)
    ) {
        let net = random_net(&RandomNetSpec { vars, max_domain: 2, max_parents: 2, seed });
        let mut ev = PartialAssignment::empty(net.len());
        for (v, val) in pins {
            if v < net.len() {
                ev.set(VarId(v as u32), Value(val));
            }
        }
        let out = net.optimal_completion(&ev);
        prop_assert!(ev.consistent_with(&out));
        for (v, val) in improving_flips(&net, &out) {
            // Any improving flip must be on an evidence variable (we are
            // optimal only among completions of the evidence).
            prop_assert!(ev.get(v).is_some(), "free var {v} improvable to {val}");
        }
    }

    /// The binary codec round-trips arbitrary random networks exactly.
    #[test]
    fn cpnet_codec_roundtrip(seed in 0u64..5_000, vars in 1usize..10) {
        let net = random_net(&RandomNetSpec { vars, max_domain: 4, max_parents: 3, seed });
        let back = CpNet::from_bytes(&net.to_bytes()).unwrap();
        prop_assert_eq!(back.len(), net.len());
        prop_assert_eq!(back.optimal_outcome(), net.optimal_outcome());
        for i in 0..net.len() {
            let v = VarId(i as u32);
            prop_assert_eq!(back.parents(v), net.parents(v));
            prop_assert_eq!(back.var_name(v), net.var_name(v));
        }
    }

    /// Preference-ordered enumeration starts at the optimum, never repeats,
    /// and is exhaustive on small nets.
    #[test]
    fn cpnet_enumeration_is_a_permutation(seed in 0u64..2_000) {
        let net = random_net(&RandomNetSpec { vars: 6, max_domain: 2, max_parents: 2, seed });
        let all: Vec<_> = net
            .outcomes_by_preference(&PartialAssignment::empty(net.len()))
            .collect();
        prop_assert_eq!(all.len(), 1 << 6);
        prop_assert_eq!(all[0].clone(), net.optimal_outcome());
        let unique: std::collections::HashSet<_> = all.iter().cloned().collect();
        prop_assert_eq!(unique.len(), all.len());
    }
}

// ---------------------------------------------------------------------
// Layered image codec.


proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Encode/decode round-trips arbitrary image sizes with bounded error
    /// (the finest layer's quantiser bounds per-pixel error loosely).
    #[test]
    fn codec_roundtrip_bounded_error(w in 9usize..70, h in 9usize..70, seed in 0u64..10_000) {
        let img = GrayImage::from_fn(w, h, |x, y| {
            let v = (x as u64 * 31 + y as u64 * 17 + seed) % 251;
            v as u8
        }).unwrap();
        let bytes = encode(&img, &EncoderConfig::default()).unwrap();
        let out = decode(&bytes).unwrap();
        prop_assert_eq!(out.width(), w);
        prop_assert_eq!(out.height(), h);
        let max_err = img
            .pixels()
            .iter()
            .zip(out.pixels())
            .map(|(&a, &b)| (a as i32 - b as i32).abs())
            .max()
            .unwrap();
        prop_assert!(max_err <= 64, "max pixel error {max_err}");
    }

    /// Any byte prefix either decodes (to ≥1 layer) or fails cleanly —
    /// never panics, never produces the wrong dimensions.
    #[test]
    fn codec_prefix_safety(cut_permille in 0u32..1000, seed in 0u64..1_000) {
        let img = GrayImage::from_fn(40, 33, |x, y| ((x * 7 + y * 13) as u64 + seed) as u8).unwrap();
        let bytes = encode(&img, &EncoderConfig::default()).unwrap();
        let cut = (bytes.len() as u64 * cut_permille as u64 / 1000) as usize;
        if let Ok((out, layers)) = decode_prefix(&bytes[..cut]) {
            prop_assert!(layers >= 1);
            prop_assert_eq!(out.width(), 40);
            prop_assert_eq!(out.height(), 33);
        }
    }
}

// ---------------------------------------------------------------------
// Storage engine vs. a model.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random insert/update/delete workloads agree with a BTreeMap model
    /// across commits and rollbacks.
    #[test]
    fn table_matches_model(ops in proptest::collection::vec((0u8..4, 0u64..48, any::<u16>()), 1..80)) {
        use std::collections::BTreeMap;
        let db = Database::in_memory().unwrap();
        {
            let mut tx = db.begin().unwrap();
            tx.create_table(
                "T",
                rcmo::storage::Schema::new(vec![
                    rcmo::storage::Column::new("ID", rcmo::storage::ColumnType::U64),
                    rcmo::storage::Column::new("V", rcmo::storage::ColumnType::I64),
                ])
                .unwrap(),
            )
            .unwrap();
            tx.commit().unwrap();
        }
        let mut model: BTreeMap<u64, i64> = BTreeMap::new();
        let mut tx = db.begin().unwrap();
        for (op, key, val) in ops {
            let key = key + 1; // keys start at 1
            let val = val as i64;
            match op {
                0 => {
                    // insert (duplicate keys must be rejected by the engine)
                    if let std::collections::btree_map::Entry::Vacant(e) = model.entry(key) {
                        tx.insert("T", vec![RowValue::U64(key), RowValue::I64(val)]).unwrap();
                        e.insert(val);
                    } else {
                        prop_assert!(tx
                            .insert("T", vec![RowValue::U64(key), RowValue::I64(val)])
                            .is_err());
                    }
                }
                1 => {
                    // update
                    if let std::collections::btree_map::Entry::Occupied(mut e) = model.entry(key) {
                        tx.update("T", key, vec![RowValue::Null, RowValue::I64(val)]).unwrap();
                        e.insert(val);
                    } else {
                        prop_assert!(tx
                            .update("T", key, vec![RowValue::Null, RowValue::I64(val)])
                            .is_err());
                    }
                }
                2 => {
                    // delete
                    if model.remove(&key).is_some() {
                        tx.delete("T", key).unwrap();
                    } else {
                        prop_assert!(tx.delete("T", key).is_err());
                    }
                }
                _ => {
                    // point lookup
                    let got = tx.get("T", key).unwrap();
                    match model.get(&key) {
                        Some(&v) => {
                            let row = got.unwrap();
                            prop_assert_eq!(row[1].clone(), RowValue::I64(v));
                        }
                        None => prop_assert!(got.is_none()),
                    }
                }
            }
        }
        // Full scan agrees with the model, in key order.
        let rows = tx.scan("T").unwrap();
        let got: Vec<(u64, i64)> = rows
            .iter()
            .map(|r| {
                (
                    r[0].as_u64().unwrap(),
                    match r[1] {
                        RowValue::I64(v) => v,
                        _ => unreachable!(),
                    },
                )
            })
            .collect();
        let want: Vec<(u64, i64)> = model.into_iter().collect();
        prop_assert_eq!(got, want);
        tx.commit().unwrap();
    }

    /// BLOBs of arbitrary contents round-trip exactly, including prefixes.
    #[test]
    fn blob_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..60_000), cut in 0usize..70_000) {
        let db = Database::in_memory().unwrap();
        let mut tx = db.begin().unwrap();
        let id = tx.put_blob(&data).unwrap();
        prop_assert_eq!(tx.get_blob(id).unwrap(), data.clone());
        let prefix = tx.get_blob_prefix(id, cut).unwrap();
        prop_assert_eq!(&prefix[..], &data[..cut.min(data.len())]);
        prop_assert_eq!(tx.blob_len(id).unwrap(), data.len() as u64);
    }
}

// ---------------------------------------------------------------------
// Documents.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomly shaped documents validate, serialise, and reload
    /// identically (outline + optimal presentation).
    #[test]
    fn document_roundtrip(shape in proptest::collection::vec(0u8..3, 1..12)) {
        use rcmo::core::{FormKind, MediaRef, MultimediaDocument, PresentationForm};
        let mut doc = MultimediaDocument::new("prop");
        let mut composites = vec![doc.root()];
        for (i, kind) in shape.iter().enumerate() {
            let parent = composites[i % composites.len()];
            match kind {
                0 => {
                    let c = doc.add_composite(parent, &format!("folder{i}")).unwrap();
                    composites.push(c);
                }
                1 => {
                    doc.add_primitive(
                        parent,
                        &format!("leaf{i}"),
                        MediaRef::None,
                        vec![
                            PresentationForm::new("flat", FormKind::Flat, i as u64 * 100),
                            PresentationForm::hidden(),
                        ],
                    )
                    .unwrap();
                }
                _ => {
                    doc.add_primitive(
                        parent,
                        &format!("media{i}"),
                        MediaRef::Inline(vec![i as u8; 16]),
                        vec![
                            PresentationForm::new("flat", FormKind::Flat, 1_000),
                            PresentationForm::new("icon", FormKind::Icon, 10),
                            PresentationForm::hidden(),
                        ],
                    )
                    .unwrap();
                }
            }
        }
        doc.validate().unwrap();
        let back = MultimediaDocument::from_bytes(&doc.to_bytes()).unwrap();
        prop_assert_eq!(back.outline(), doc.outline());
        prop_assert_eq!(back.net().optimal_outcome(), doc.net().optimal_outcome());
        prop_assert_eq!(back.num_components(), doc.num_components());
    }
}

// ---------------------------------------------------------------------
// Robustness: decoders must never panic on hostile bytes.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random bytes into every public decoder: errors are fine, panics are
    /// not, and truncations of valid streams never crash either.
    #[test]
    fn decoders_never_panic(data in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = rcmo::codec::decode(&data);
        let _ = rcmo::codec::decode_prefix(&data);
        let _ = CpNet::from_bytes(&data);
        let _ = rcmo::core::MultimediaDocument::from_bytes(&data);
        let _ = rcmo::imaging::GrayImage::from_bytes(&data);
        let _ = rcmo::imaging::AnnotatedImage::from_bytes(&data);
        let _ = rcmo::audio::segment::decode_segments(&data);
    }

    /// Truncating a valid document stream at any point yields a clean error
    /// (or, at full length, the document).
    #[test]
    fn document_truncation_is_clean(cut_permille in 0u32..=1000) {
        use rcmo::core::{FormKind, MediaRef, MultimediaDocument, PresentationForm};
        let mut doc = MultimediaDocument::new("t");
        doc.add_primitive(
            doc.root(),
            "leaf",
            MediaRef::Inline(vec![1, 2, 3]),
            vec![
                PresentationForm::new("flat", FormKind::Flat, 10),
                PresentationForm::hidden(),
            ],
        )
        .unwrap();
        let bytes = doc.to_bytes();
        let cut = (bytes.len() as u64 * cut_permille as u64 / 1000) as usize;
        match MultimediaDocument::from_bytes(&bytes[..cut]) {
            Ok(d) => prop_assert_eq!(cut, bytes.len(), "only the full stream decodes: {}", d.title()),
            Err(_) => prop_assert!(cut < bytes.len()),
        }
    }

    /// The annotated-image overlay codec round-trips arbitrary elements.
    #[test]
    fn overlay_roundtrip(
        texts in proptest::collection::vec(("[a-z ]{0,12}", 0usize..64, 0usize..64), 0..6),
        lines in proptest::collection::vec((-64i64..128, -64i64..128, -64i64..128, -64i64..128), 0..6),
    ) {
        use rcmo::imaging::{AnnotatedImage, GrayImage, LineElement, TextElement};
        let mut img = AnnotatedImage::new(GrayImage::new(32, 32).unwrap());
        for (text, x, y) in texts {
            img.add_text(TextElement { x, y, text, intensity: 200, scale: 1 });
        }
        for (x0, y0, x1, y1) in lines {
            img.add_line(LineElement { x0, y0, x1, y1, intensity: 100 });
        }
        let back = AnnotatedImage::from_bytes(&img.to_bytes()).unwrap();
        prop_assert_eq!(&back, &img);
        let via_parts =
            AnnotatedImage::from_parts(img.base().clone(), &img.overlay_to_bytes()).unwrap();
        prop_assert_eq!(via_parts, img);
        // Rendering never panics, whatever the coordinates.
        let _ = back.render();
    }
}
