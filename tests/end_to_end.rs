//! The full Figure-1 scenario as a test: database → interaction server →
//! shared room → presentation module → persistence, including reopening the
//! file-backed database in a "second clinic session".

use rcmo::codec::{encode, EncoderConfig};
use rcmo::core::{ComponentId, FormKind, MediaRef, MultimediaDocument, PresentationForm};
use rcmo::imaging::{ct_phantom, AnnotatedImage, GrayImage, TextElement};
use rcmo::mediadb::{AccessLevel, DocumentObject, ImageObject, MediaDb};
use rcmo::server::{Action, InteractionServer};
use std::path::PathBuf;

fn tmp_db(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcmo-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("{tag}.db"));
    let _ = std::fs::remove_file(&p);
    let _ = std::fs::remove_file(rcmo::storage::db::wal_path_for(&p));
    p
}

fn build_case(db: &MediaDb) -> (u64, u64, ComponentId) {
    db.put_user("admin", "dr-a", AccessLevel::Write).unwrap();
    db.put_user("admin", "dr-b", AccessLevel::Write).unwrap();
    let ct = ct_phantom(96, 3, 21).unwrap();
    let stream = encode(&ct, &EncoderConfig::default()).unwrap();
    let image_id = db
        .insert_image(
            "dr-a",
            &ImageObject {
                name: "ct".into(),
                quality: 1,
                texts: String::new(),
                cm: Vec::new(),
                data: stream,
            },
        )
        .unwrap();
    let mut doc = MultimediaDocument::new("Patient X");
    let comp = doc
        .add_primitive(
            doc.root(),
            "CT",
            MediaRef::Stored {
                media_type: "Image".into(),
                object_id: image_id,
            },
            vec![
                PresentationForm::new("flat", FormKind::Flat, 96 * 96),
                PresentationForm::new("segmented", FormKind::Segmented, 96 * 96 + 2_000),
                PresentationForm::hidden(),
            ],
        )
        .unwrap();
    doc.validate().unwrap();
    let doc_id = db
        .insert_document(
            "dr-a",
            &DocumentObject {
                title: doc.title().into(),
                data: doc.to_bytes(),
            },
        )
        .unwrap();
    (doc_id, image_id, comp)
}

#[test]
fn two_session_consultation_with_persistence() {
    let path = tmp_db("consult");

    // ----- Session 1: annotate, operate globally, persist. -----
    let (doc_id, image_id, comp) = {
        let db = MediaDb::open(&path).unwrap();
        let ids = build_case(&db);
        let srv = InteractionServer::new(db);
        let room = srv.create_room("dr-a", "s1", ids.0).unwrap();
        let _a = srv.join_default(room, "dr-a").unwrap();
        let _b = srv.join_default(room, "dr-b").unwrap();
        srv.open_image(room, "dr-a", ids.1).unwrap();
        srv.act(
            room,
            "dr-a",
            Action::AddText {
                object: ids.1,
                element: TextElement {
                    x: 30,
                    y: 30,
                    text: "REVIEW".into(),
                    intensity: 255,
                    scale: 1,
                },
            },
        )
        .unwrap();
        srv.act(
            room,
            "dr-b",
            Action::ApplyOperation {
                component: ids.2,
                trigger_form: 0,
                operation: "segmentation".into(),
                global: true,
            },
        )
        .unwrap();
        srv.save_document(room, "dr-b").unwrap();
        srv.save_and_close_image(room, "dr-a", ids.1).unwrap();
        ids
    };
    let _ = image_id;

    // ----- Session 2: a fresh process reopens the same files. -----
    {
        let db = MediaDb::open(&path).unwrap();
        // The document still carries the global derived variable.
        let stored = db.get_document("dr-b", doc_id).unwrap();
        let doc = MultimediaDocument::from_bytes(&stored.data).unwrap();
        assert_eq!(doc.derived_vars().len(), 1);
        assert_eq!(doc.derived_vars()[0].operation, "segmentation");

        // The annotated image is back, with the overlay intact (it was
        // re-inserted under a fresh id by save_and_close_image).
        let images = db.list_objects("dr-a", "Image").unwrap();
        let saved = images.iter().find(|o| o.label == "ct").unwrap();
        let obj = db.get_image("dr-a", saved.id).unwrap();
        assert!(!obj.cm.is_empty(), "overlay stored in FLD_CM");
        let base = rcmo::codec::decode(&obj.data).unwrap();
        let restored = AnnotatedImage::from_parts(base, &obj.cm).unwrap();
        assert_eq!(restored.num_elements(), 1);
        let rendered: GrayImage = restored.render();
        assert!(rendered.pixels().contains(&255));

        // A new room over the stored document presents with the derived
        // variable for a brand-new viewer.
        let srv = InteractionServer::new(db);
        let room = srv.create_room("dr-b", "s2", doc_id).unwrap();
        let _c = srv.join_default(room, "dr-b").unwrap();
        let p = srv.presentation(room, "dr-b").unwrap();
        assert_eq!(p.derived_states().len(), 1);
        assert_eq!(p.form(comp), 0);
    }

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(rcmo::storage::db::wal_path_for(&path));
}

#[test]
fn crash_between_sessions_recovers_committed_state() {
    let path = tmp_db("crash");
    let doc_id;
    {
        let db = MediaDb::open(&path).unwrap();
        db.put_user("admin", "dr-a", AccessLevel::Write).unwrap();
        let doc = MultimediaDocument::new("crash case");
        doc_id = db
            .insert_document(
                "dr-a",
                &DocumentObject {
                    title: doc.title().into(),
                    data: doc.to_bytes(),
                },
            )
            .unwrap();
        // Simulate a crash after the WAL sync of one more write.
        let mut tx = db.database().begin().unwrap();
        let blob = tx.put_blob(b"post-crash payload").unwrap();
        tx.create_table(
            "CRASH_MARKER",
            rcmo::storage::Schema::new(vec![
                rcmo::storage::Column::new("ID", rcmo::storage::ColumnType::U64),
                rcmo::storage::Column::new("B", rcmo::storage::ColumnType::Blob),
            ])
            .unwrap(),
        )
        .unwrap();
        tx.insert(
            "CRASH_MARKER",
            vec![
                rcmo::storage::RowValue::Null,
                rcmo::storage::RowValue::Blob(blob),
            ],
        )
        .unwrap();
        tx.simulate_crash_after_wal().unwrap();
    }
    {
        // Recovery replays both the document insert and the marker table.
        let db = MediaDb::open(&path).unwrap();
        assert!(db.get_document("admin", doc_id).is_ok());
        let mut tx = db.database().begin().unwrap();
        let rows = tx.scan("CRASH_MARKER").unwrap();
        assert_eq!(rows.len(), 1);
        let blob = rows[0][1].as_blob().unwrap();
        assert_eq!(tx.get_blob(blob).unwrap(), b"post-crash payload");
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(rcmo::storage::db::wal_path_for(&path));
}

#[test]
fn room_scales_to_many_partners() {
    let db = MediaDb::in_memory().unwrap();
    for i in 0..8 {
        db.put_user("admin", &format!("dr-{i}"), AccessLevel::Write)
            .unwrap();
    }
    let (doc_id, image_id, comp) = build_case(&db);
    let srv = InteractionServer::new(db);
    let room = srv.create_room("dr-a", "board", doc_id).unwrap();
    let conns: Vec<_> = (0..8)
        .map(|i| srv.join_default(room, &format!("dr-{i}")).unwrap())
        .collect();
    srv.open_image(room, "dr-0", image_id).unwrap();
    for i in 0..8 {
        srv.act(
            room,
            &format!("dr-{i}"),
            Action::Choose {
                component: comp,
                form: (i % 2) as usize,
            },
        )
        .unwrap();
    }
    // All partners converge on the same event log.
    let logs: Vec<Vec<_>> = conns
        .iter()
        .map(|c| c.events.try_iter().collect())
        .collect();
    for w in logs.windows(2) {
        // Later joiners miss earlier join events; compare the common tail.
        let n = w[0].len().min(w[1].len());
        assert_eq!(w[0][w[0].len() - n..], w[1][w[1].len() - n..]);
    }
    let stats = srv.room_stats(room).unwrap();
    assert!(stats.events_delivered >= 8 * 16);
}
