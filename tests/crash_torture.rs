//! Deterministic crash-injection torture for the storage stack.
//!
//! Three sweeps exercise every durability site (ISSUE: crash-at-every-
//! failpoint × several workload seeds) plus salvage-mode acceptance:
//!
//! 1. **Failpoint sweep** — a file-backed database runs a seeded workload
//!    with each named failpoint armed at every occurrence in turn. The
//!    interrupted database is reopened and must pass `check_integrity`,
//!    match the shadow model exactly (zero committed-transaction loss,
//!    zero uncommitted visibility), and accept further writes.
//! 2. **FaultyBackend sweep** — the same workload over `SimStore`s with a
//!    crash injected at every byte-level operation, in three volatility
//!    models (plain, torn writes, torn + dropped-unsynced). Only the
//!    *surviving* bytes are reopened.
//! 3. **Salvage acceptance** — torn trailing data-file garbage, corrupt
//!    WAL tails, and corrupt WAL headers must not prevent `open`.
//!
//! All randomness is a seeded SplitMix64: every run replays byte-for-byte.

use rcmo::mediadb::{AccessLevel, ImageObject, MediaDb};
use rcmo::storage::db::wal_path_for;
use rcmo::storage::{
    failpoint, Column, ColumnType, CrashSpec, Database, DbOptions, FaultInjector, MemBackend,
    RowValue, Schema, SimStore, StorageError,
};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;

const FRAMES: usize = 256;
const TABLE: &str = "t";

fn tmp_db(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcmo-torture-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("{tag}.db"));
    let _ = std::fs::remove_file(&p);
    let _ = std::fs::remove_file(wal_path_for(&p));
    p
}

// ---------------------------------------------------------------------------
// Deterministic workload plans + shadow model
// ---------------------------------------------------------------------------

/// SplitMix64, so plans replay identically without an RNG dependency.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert {
        id: u64,
        v: i64,
        d_len: usize,
        blob_len: Option<usize>,
    },
    Update {
        id: u64,
        v: i64,
        d_len: usize,
        blob_len: Option<usize>,
    },
    Delete {
        id: u64,
    },
}

/// One transaction's worth of operations. The first plan additionally
/// creates the table.
struct TxnPlan {
    ops: Vec<Op>,
}

/// Row contents are pure functions of (id, v, len) so the shadow model can
/// recompute them without storing payloads in the plan.
fn d_bytes(id: u64, v: i64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (id as u8) ^ (v as u8) ^ (i as u8))
        .collect()
}

fn blob_bytes(id: u64, v: i64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (id as u8).wrapping_mul(31) ^ (v as u8) ^ (i as u8).wrapping_mul(7))
        .collect()
}

fn make_plans(seed: u64, txns: usize) -> Vec<TxnPlan> {
    let mut rng = Rng(seed);
    let mut live: Vec<u64> = Vec::new();
    let mut next_id = 1u64;
    // Plan 0 only creates the table.
    let mut plans = vec![TxnPlan { ops: Vec::new() }];
    for _ in 0..txns {
        let nops = 1 + rng.below(3) as usize;
        let mut ops = Vec::new();
        for _ in 0..nops {
            let choice = rng.below(10);
            if live.is_empty() || choice < 5 {
                let id = next_id;
                next_id += 1;
                live.push(id);
                ops.push(Op::Insert {
                    id,
                    v: rng.below(1000) as i64 - 500,
                    d_len: 1 + rng.below(40) as usize,
                    blob_len: match rng.below(4) {
                        0 => None,
                        // Occasionally multi-page (> 2 × PAGE_SIZE).
                        1 => Some(9000 + rng.below(1500) as usize),
                        _ => Some(100 + rng.below(1900) as usize),
                    },
                });
            } else if choice < 8 {
                let id = live[rng.below(live.len() as u64) as usize];
                ops.push(Op::Update {
                    id,
                    v: rng.below(1000) as i64 - 500,
                    d_len: 1 + rng.below(40) as usize,
                    blob_len: match rng.below(3) {
                        0 => None,
                        _ => Some(100 + rng.below(3000) as usize),
                    },
                });
            } else {
                let idx = rng.below(live.len() as u64) as usize;
                ops.push(Op::Delete {
                    id: live.remove(idx),
                });
            }
        }
        plans.push(TxnPlan { ops });
    }
    plans
}

#[derive(Debug, Clone, PartialEq)]
struct ModelRow {
    v: i64,
    d: Vec<u8>,
    b: Option<Vec<u8>>,
}

/// `None` means the table does not exist yet (the creating transaction
/// never committed).
type State = Option<BTreeMap<u64, ModelRow>>;

fn model_apply(state: &mut State, plan: &TxnPlan, first: bool) {
    if first {
        *state = Some(BTreeMap::new());
    }
    let m = state.as_mut().expect("table created before row ops");
    for op in &plan.ops {
        match *op {
            Op::Insert {
                id,
                v,
                d_len,
                blob_len,
            }
            | Op::Update {
                id,
                v,
                d_len,
                blob_len,
            } => {
                m.insert(
                    id,
                    ModelRow {
                        v,
                        d: d_bytes(id, v, d_len),
                        b: blob_len.map(|n| blob_bytes(id, v, n)),
                    },
                );
            }
            Op::Delete { id } => {
                m.remove(&id);
            }
        }
    }
}

fn table_schema() -> Schema {
    Schema::new(vec![
        Column::new("ID", ColumnType::U64),
        Column::new("V", ColumnType::I64),
        Column::new("D", ColumnType::Bytes),
        Column::new("B", ColumnType::Blob),
    ])
    .unwrap()
}

/// Applies one planned transaction, committing at the end. Any error
/// (injected or real) propagates; the transaction rolls back on drop.
fn apply_txn(db: &Database, plan: &TxnPlan, first: bool) -> Result<(), StorageError> {
    let mut tx = db.begin()?;
    if first {
        tx.create_table(TABLE, table_schema())?;
    }
    for op in &plan.ops {
        match *op {
            Op::Insert {
                id,
                v,
                d_len,
                blob_len,
            } => {
                let b = match blob_len {
                    Some(n) => RowValue::Blob(tx.put_blob(&blob_bytes(id, v, n))?),
                    None => RowValue::Null,
                };
                tx.insert(
                    TABLE,
                    vec![
                        RowValue::U64(id),
                        RowValue::I64(v),
                        RowValue::Bytes(d_bytes(id, v, d_len)),
                        b,
                    ],
                )?;
            }
            Op::Update {
                id,
                v,
                d_len,
                blob_len,
            } => {
                let old = tx.get(TABLE, id)?.expect("plan updates live rows only");
                if let RowValue::Blob(old_blob) = old[3] {
                    tx.delete_blob(old_blob)?;
                }
                let b = match blob_len {
                    Some(n) => RowValue::Blob(tx.put_blob(&blob_bytes(id, v, n))?),
                    None => RowValue::Null,
                };
                tx.update(
                    TABLE,
                    id,
                    vec![
                        RowValue::Null,
                        RowValue::I64(v),
                        RowValue::Bytes(d_bytes(id, v, d_len)),
                        b,
                    ],
                )?;
            }
            Op::Delete { id } => {
                let old = tx.delete(TABLE, id)?;
                if let RowValue::Blob(old_blob) = old[3] {
                    tx.delete_blob(old_blob)?;
                }
            }
        }
    }
    tx.commit()
}

/// Reads the reopened database back into shadow-model form (including full
/// BLOB contents), or `None` if the table does not exist.
fn dump(db: &Database) -> State {
    let mut tx = db.begin().unwrap();
    if !tx.table_names().contains(&TABLE.to_string()) {
        return None;
    }
    let mut m = BTreeMap::new();
    for row in tx.scan(TABLE).unwrap() {
        let RowValue::U64(id) = row[0] else {
            panic!("bad key {row:?}")
        };
        let RowValue::I64(v) = row[1] else {
            panic!("bad v {row:?}")
        };
        let RowValue::Bytes(ref d) = row[2] else {
            panic!("bad d {row:?}")
        };
        let b = match row[3] {
            RowValue::Blob(bid) => Some(tx.get_blob(bid).unwrap()),
            RowValue::Null => None,
            ref other => panic!("bad blob column {other:?}"),
        };
        m.insert(id, ModelRow { v, d: d.clone(), b });
    }
    Some(m)
}

/// Runs plans until the first error, tracking the shadow model. Returns
/// `(committed, staged, failed)`: the model after the last successful
/// commit, the model including the in-flight transaction at the moment of
/// failure (equal to `committed` if nothing failed), and whether a failure
/// occurred.
fn run_plans(db: &Database, plans: &[TxnPlan]) -> (State, State, bool) {
    let mut committed: State = None;
    for (i, plan) in plans.iter().enumerate() {
        let mut staged = committed.clone();
        model_apply(&mut staged, plan, i == 0);
        match apply_txn(db, plan, i == 0) {
            Ok(()) => committed = staged,
            Err(_) => return (committed, staged, true),
        }
    }
    (committed.clone(), committed, false)
}

// ---------------------------------------------------------------------------
// 1. Failpoint sweep: crash at every durability site × every occurrence
// ---------------------------------------------------------------------------

#[test]
fn failpoint_sweep_recovers_at_every_durability_site() {
    const TXNS: usize = 5;
    for seed in [0xA11CE_u64, 0xB0B0, 0xCAFE] {
        let plans = make_plans(seed, TXNS);

        // Counting run: how often does the workload pass each site?
        // (Reset after open so bootstrap commits do not shift the counts.)
        let path = tmp_db(&format!("fp-count-{seed:x}"));
        let db = Database::open(&path).unwrap();
        failpoint::reset();
        let (full_model, _, failed) = run_plans(&db, &plans);
        assert!(!failed, "counting run must not fail");
        let counts: Vec<(&'static str, u64)> = failpoint::ALL
            .iter()
            .map(|s| (*s, failpoint::hits(s)))
            .collect();
        failpoint::reset();
        drop(db);

        for &(site, n_hits) in &counts {
            assert!(n_hits > 0, "site {site} never exercised by the workload");
            for n in 1..=n_hits {
                let tag = format!("fp-{}-{seed:x}-{n}", site.replace('.', "_"));
                let path = tmp_db(&tag);
                let db = Database::open(&path).unwrap();
                failpoint::reset();
                failpoint::arm(site, n);
                let (committed, staged, failed) = run_plans(&db, &plans);
                assert!(
                    failed,
                    "armed failpoint {site}@{n} must fire (seed {seed:x})"
                );
                failpoint::reset();
                drop(db);

                let db = Database::open(&path)
                    .unwrap_or_else(|e| panic!("reopen after {site}@{n} failed: {e}"));
                let report = db.check_integrity();
                assert!(
                    report.is_ok(),
                    "integrity after {site}@{n} (seed {seed:x}):\n{report}"
                );
                // The process survived, so every written byte survived: a
                // crash before the commit record is appended loses exactly
                // the in-flight transaction; a crash at any later site
                // leaves a complete WAL image to replay.
                let expected = if site == failpoint::WAL_APPEND {
                    &committed
                } else {
                    &staged
                };
                let got = dump(&db);
                assert_eq!(
                    &got, expected,
                    "state after {site}@{n} (seed {seed:x}) diverged from shadow model"
                );

                // The recovered database must accept further writes.
                let mut tx = db.begin().unwrap();
                if got.is_none() {
                    tx.create_table(TABLE, table_schema()).unwrap();
                }
                tx.insert(
                    TABLE,
                    vec![
                        RowValue::U64(999_999),
                        RowValue::I64(-1),
                        RowValue::Bytes(vec![0xEE; 8]),
                        RowValue::Null,
                    ],
                )
                .unwrap();
                tx.commit().unwrap();
            }
        }
        let _ = full_model;
    }
}

// ---------------------------------------------------------------------------
// 2. FaultyBackend sweep: crash at every byte-level operation
// ---------------------------------------------------------------------------

#[test]
fn faulty_backend_crash_at_every_operation() {
    const TXNS: usize = 4;
    for (torn, drop_unsynced) in [(false, false), (true, false), (true, true)] {
        let seed = 0xD15C_u64 ^ ((torn as u64) << 8) ^ ((drop_unsynced as u64) << 9);
        let plans = make_plans(seed, TXNS);

        // Counting run over fault-free simulated stores.
        let data = SimStore::new();
        let wal = SimStore::new();
        let inj = FaultInjector::new(CrashSpec::count_only(seed));
        let db = Database::open_with_backends(
            Box::new(data.backend(&inj)),
            Box::new(wal.backend(&inj)),
            FRAMES,
        )
        .unwrap();
        let (final_model, _, failed) = run_plans(&db, &plans);
        assert!(!failed, "counting run must not fail");
        drop(db);
        let total_ops = inj.ops();
        assert!(total_ops > 50, "workload too small to be interesting");

        for op in 1..=total_ops {
            let spec = CrashSpec {
                seed,
                crash_at_op: Some(op),
                torn_writes: torn,
                drop_unsynced,
                io_error_prob: 0.0,
            };
            let data = SimStore::new();
            let wal = SimStore::new();
            let inj = FaultInjector::new(spec);
            let (committed, staged) = match Database::open_with_backends(
                Box::new(data.backend(&inj)),
                Box::new(wal.backend(&inj)),
                FRAMES,
            ) {
                // Crash during bootstrap: nothing was ever committed.
                Err(_) => (None, None),
                Ok(db) => {
                    let (committed, staged, _) = run_plans(&db, &plans);
                    (committed, staged)
                }
            };
            assert!(
                inj.crashed(),
                "op {op}/{total_ops} (torn={torn}, drop={drop_unsynced}): crash never fired"
            );

            // Reopen only what survived the crash, with no further faults.
            let db = Database::open_with_backends(
                Box::new(MemBackend::from_bytes(data.surviving_bytes())),
                Box::new(MemBackend::from_bytes(wal.surviving_bytes())),
                FRAMES,
            )
            .unwrap_or_else(|e| {
                panic!("salvage reopen after op {op} (torn={torn}, drop={drop_unsynced}): {e}")
            });
            let report = db.check_integrity();
            assert!(
                report.is_ok(),
                "integrity after op {op} (torn={torn}, drop={drop_unsynced}):\n{report}"
            );
            let got = dump(&db);
            assert!(
                got == committed || got == staged,
                "op {op} (torn={torn}, drop={drop_unsynced}): recovered state is neither the \
                 last committed model nor the in-flight one"
            );
        }
        let _ = final_model;
    }
}

// ---------------------------------------------------------------------------
// 3. Salvage-mode open
// ---------------------------------------------------------------------------

#[test]
fn torn_data_tail_and_corrupt_wal_tail_reopen_in_salvage_mode() {
    let path = tmp_db("salvage-torn");
    let plans = make_plans(0x5EED, 4);
    let db = Database::open(&path).unwrap();
    let (model, _, failed) = run_plans(&db, &plans);
    assert!(!failed);
    drop(db);

    // A torn trailing page on the data file (not a page multiple) plus
    // garbage after the WAL header: both must be salvaged, not fatal.
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    f.write_all(&[0xAB; 1234]).unwrap();
    drop(f);
    let mut w = std::fs::OpenOptions::new()
        .append(true)
        .open(wal_path_for(&path))
        .unwrap();
    w.write_all(b"this is not a wal record").unwrap();
    drop(w);

    let db = Database::open(&path).expect("salvage open must succeed");
    let report = db.check_integrity();
    assert!(report.is_ok(), "integrity after salvage:\n{report}");
    assert_eq!(dump(&db), model, "salvage must not lose committed data");
}

#[test]
fn corrupt_wal_header_is_quarantined_on_open() {
    let path = tmp_db("salvage-quarantine");
    let plans = make_plans(0xFACE, 3);
    let db = Database::open(&path).unwrap();
    let (model, _, failed) = run_plans(&db, &plans);
    assert!(!failed);
    // Under deferred checkpointing, recent commits are durable only in the
    // WAL; fold them into the data file so the stomp below destroys no
    // committed state.
    db.checkpoint().unwrap();
    drop(db);

    // Stomp the WAL magic: the file is unrecognizable and must be moved
    // aside (never deleted) so the database still opens.
    let wal = wal_path_for(&path);
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes[..4].copy_from_slice(b"XXXX");
    std::fs::write(&wal, &bytes).unwrap();

    let db = Database::open(&path).expect("open must quarantine the bad WAL");
    assert_eq!(dump(&db), model, "data file contents must be intact");
    assert!(db.check_integrity().is_ok());

    let quarantined = PathBuf::from(format!("{}.corrupt-1", wal.display()));
    assert!(
        quarantined.exists(),
        "corrupt WAL must be preserved at {quarantined:?}"
    );
    assert_eq!(
        std::fs::read(&quarantined).unwrap(),
        bytes,
        "quarantined WAL must hold the original bytes"
    );
}

// ---------------------------------------------------------------------------
// 4. Transient I/O errors
// ---------------------------------------------------------------------------

#[test]
fn transient_io_errors_leave_a_recoverable_store() {
    let seed = 0x7EA5_u64;
    let plans = make_plans(seed, 6);
    let spec = CrashSpec {
        seed,
        crash_at_op: None,
        torn_writes: false,
        drop_unsynced: false,
        io_error_prob: 0.08,
    };
    let data = SimStore::new();
    let wal = SimStore::new();
    let inj = FaultInjector::new(spec);
    let (committed, staged) = match Database::open_with_backends(
        Box::new(data.backend(&inj)),
        Box::new(wal.backend(&inj)),
        FRAMES,
    ) {
        Err(_) => (None, None),
        Ok(db) => {
            // Stop at the first failed commit: the on-disk image is then
            // either the pre-transaction or the post-transaction state.
            let (committed, staged, _) = run_plans(&db, &plans);
            (committed, staged)
        }
    };
    assert!(
        inj.transients() > 0,
        "seed {seed:x} produced no transient errors; pick another seed"
    );
    assert!(!inj.crashed(), "transient spec must never hard-crash");

    let db = Database::open_with_backends(
        Box::new(MemBackend::from_bytes(data.bytes())),
        Box::new(MemBackend::from_bytes(wal.bytes())),
        FRAMES,
    )
    .expect("reopen after transient errors");
    let report = db.check_integrity();
    assert!(report.is_ok(), "integrity after transients:\n{report}");
    let got = dump(&db);
    assert!(
        got == committed || got == staged,
        "state after transient errors is neither committed nor in-flight model"
    );
}

// ---------------------------------------------------------------------------
// 5. Group commit under concurrent writers: a crash mid-batch keeps every
//    acknowledged commit and recovers a per-writer prefix (all-or-prefix)
// ---------------------------------------------------------------------------

#[test]
fn group_commit_crash_keeps_acked_commits_and_prefix_order() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    const WRITERS: u64 = 4;
    const TXNS_PER_WRITER: u64 = 12;

    let mut total_acked = 0u64;
    for (i, &crash_op) in [23u64, 41, 67, 97, 131].iter().enumerate() {
        let seed = 0x6C0D_u64 + i as u64;
        let data = SimStore::new();
        let wal = SimStore::new();
        let inj = FaultInjector::new(CrashSpec {
            seed,
            crash_at_op: Some(crash_op),
            torn_writes: true,
            drop_unsynced: true,
            io_error_prob: 0.0,
        });
        // Deferred mode with checkpoints disabled: every commit's durability
        // rides exclusively on the group-commit WAL fsync.
        let opts = DbOptions {
            group_commit_window: Duration::from_micros(200),
            checkpoint_commits: u64::MAX,
            checkpoint_wal_bytes: u64::MAX,
            ..DbOptions::default()
        };
        let setup_ok = (|| {
            let db = Database::open_with_backends_opts(
                Box::new(data.backend(&inj)),
                Box::new(wal.backend(&inj)),
                opts,
            )?;
            let mut tx = db.begin()?;
            tx.create_table(TABLE, table_schema())?;
            tx.commit()?;
            Ok::<_, StorageError>(db)
        })();
        let acked: Vec<AtomicU64> = (0..WRITERS).map(|_| AtomicU64::new(0)).collect();
        if let Ok(db) = &setup_ok {
            std::thread::scope(|s| {
                for w in 0..WRITERS {
                    let acked = &acked;
                    s.spawn(move || {
                        for seq in 1..=TXNS_PER_WRITER {
                            let Ok(mut tx) = db.begin() else { return };
                            let key = w * 1_000 + seq;
                            let row = vec![
                                RowValue::U64(key),
                                RowValue::I64(seq as i64),
                                RowValue::Bytes(vec![w as u8; 16]),
                                RowValue::Null,
                            ];
                            if tx.insert(TABLE, row).is_err() {
                                return;
                            }
                            if tx.commit().is_err() {
                                return;
                            }
                            // commit() returned Ok: this row is durable.
                            acked[w as usize].store(seq, Ordering::Release);
                        }
                    });
                }
            });
        }
        drop(setup_ok);
        assert!(
            inj.crashed(),
            "crash op {crash_op} never fired — workload too small"
        );

        // Reopen only what a real disk would hold, with no further faults.
        let db = Database::open_with_backends(
            Box::new(MemBackend::from_bytes(data.surviving_bytes())),
            Box::new(MemBackend::from_bytes(wal.surviving_bytes())),
            FRAMES,
        )
        .unwrap_or_else(|e| panic!("reopen after group-commit crash at op {crash_op}: {e}"));
        let report = db.check_integrity();
        assert!(
            report.is_ok(),
            "integrity after crash at op {crash_op}:\n{report}"
        );
        let mut tx = db.begin().unwrap();
        let rows = if tx.table_names().iter().any(|t| t == TABLE) {
            tx.scan(TABLE).unwrap()
        } else {
            Vec::new() // crashed during setup; nothing was acknowledged
        };
        let mut recovered: Vec<Vec<u64>> = vec![Vec::new(); WRITERS as usize];
        for row in &rows {
            let key = row[0].as_u64().unwrap();
            recovered[(key / 1_000) as usize].push(key % 1_000);
        }
        for (w, seqs) in recovered.iter_mut().enumerate() {
            seqs.sort_unstable();
            let k = seqs.len() as u64;
            assert_eq!(
                *seqs,
                (1..=k).collect::<Vec<_>>(),
                "writer {w}: recovered commits are not a prefix (crash op {crash_op})"
            );
            let acked_hi = acked[w].load(Ordering::Acquire);
            assert!(
                k >= acked_hi,
                "writer {w}: commit {acked_hi} was acknowledged but only {k} survived \
                 (crash op {crash_op})"
            );
            total_acked += acked_hi;
        }
    }
    assert!(
        total_acked > 0,
        "no commit was ever acknowledged before a crash — the sweep is vacuous"
    );
}

// ---------------------------------------------------------------------------
// 6. MediaDb object-level atomicity across the same failpoints
// ---------------------------------------------------------------------------

#[test]
fn mediadb_update_is_atomic_across_every_failpoint() {
    let v1 = ImageObject {
        name: "ct".into(),
        quality: 1,
        texts: String::new(),
        cm: Vec::new(),
        data: (0..5000u32).map(|i| i as u8).collect(),
    };
    let v2 = ImageObject {
        name: "ct".into(),
        quality: 2,
        texts: "relabelled".into(),
        cm: Vec::new(),
        data: (0..7000u32).map(|i| (i as u8).wrapping_mul(3)).collect(),
    };

    for &site in failpoint::ALL {
        let path = tmp_db(&format!("mediadb-{}", site.replace('.', "_")));
        let id = {
            let mdb = MediaDb::open(&path).unwrap();
            mdb.put_user("admin", "dr-a", AccessLevel::Write).unwrap();
            mdb.insert_image("dr-a", &v1).unwrap()
        };

        {
            // Eager checkpointing makes the single update commit cross every
            // durability site, so arming any of them must trip it.
            let mdb = MediaDb::open_with_options(&path, DbOptions::eager()).unwrap();
            failpoint::reset();
            failpoint::arm(site, 1);
            let res = mdb.update_image("dr-a", id, &v2);
            assert!(res.is_err(), "armed {site} must fail the update");
            failpoint::reset();
        }

        let mdb = MediaDb::open(&path).unwrap();
        let got = mdb.get_image("dr-a", id).unwrap();
        assert!(
            got.data == v1.data || got.data == v2.data,
            "{site}: image is neither fully v1 nor fully v2"
        );
        if got.data == v2.data {
            assert_eq!(got.quality, v2.quality, "{site}: torn object update");
            assert_eq!(got.texts, v2.texts, "{site}: torn object update");
        } else {
            assert_eq!(got.quality, v1.quality, "{site}: torn object update");
            assert_eq!(got.texts, v1.texts, "{site}: torn object update");
        }
        let report = mdb.database().check_integrity();
        assert!(
            report.is_ok(),
            "{site}: integrity after recovery:\n{report}"
        );
    }
}
