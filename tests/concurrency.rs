//! Per-room concurrency, end to end: many OS threads drive independent
//! rooms through the public `rcmo::server` surface while rooms are created
//! and left, metrics are snapshot, and the server is `Debug`-formatted —
//! the integration-level complement to the in-crate stress test. Verifies
//! the two-level locking scheme's observable guarantees: per-room event
//! integrity, cross-room isolation, and the lock wait/hold instrumentation.

use rcmo::core::{ComponentId, FormKind, MediaRef, MultimediaDocument, PresentationForm};
use rcmo::imaging::LineElement;
use rcmo::mediadb::{AccessLevel, DocumentObject, ImageObject, MediaDb};
use rcmo::server::{Action, InteractionServer, SequencedEvent};
use std::sync::Arc;

const ROOMS: usize = 4;
const MEMBERS: usize = 2;
const OPS: usize = 30;

/// A server with `ROOMS × MEMBERS` write-enabled users, one stored
/// document, and one stored image; returns `(server, doc id, image id)`.
fn fixture() -> (InteractionServer, u64, u64) {
    let db = MediaDb::in_memory().unwrap();
    for r in 0..ROOMS {
        for m in 0..MEMBERS {
            db.put_user("admin", &format!("u-{r}-{m}"), AccessLevel::Write)
                .unwrap();
        }
    }
    db.put_user("admin", "churn", AccessLevel::Write).unwrap();
    let ct = rcmo::imaging::ct_phantom(64, 2, 2).unwrap();
    let image_id = db
        .insert_image(
            "admin",
            &ImageObject {
                name: "ct".into(),
                quality: 0,
                texts: String::new(),
                cm: Vec::new(),
                data: ct.to_bytes(),
            },
        )
        .unwrap();
    let mut doc = MultimediaDocument::new("Ward round");
    let folder = doc.add_composite(doc.root(), "images").unwrap();
    doc.add_primitive(
        folder,
        "CT",
        MediaRef::None,
        vec![
            PresentationForm::new("flat", FormKind::Flat, 50_000),
            PresentationForm::new("icon", FormKind::Icon, 2_000),
            PresentationForm::hidden(),
        ],
    )
    .unwrap();
    doc.validate().unwrap();
    let doc_id = db
        .insert_document(
            "admin",
            &DocumentObject {
                title: doc.title().into(),
                data: doc.to_bytes(),
            },
        )
        .unwrap();
    (InteractionServer::new(db), doc_id, image_id)
}

/// ≥8 worker threads over ≥4 rooms, with concurrent room churn, metrics
/// snapshots and `Debug` formatting. Afterwards every room's members must
/// have observed one identical, gap-free event order containing no other
/// room's traffic.
#[test]
fn eight_threads_four_rooms_no_deadlock_no_crosstalk() {
    let (srv, doc_id, image_id) = fixture();
    let srv = Arc::new(srv);
    let rooms: Vec<u64> = (0..ROOMS)
        .map(|r| {
            srv.create_room("admin", &format!("room-{r}"), doc_id)
                .unwrap()
        })
        .collect();
    let mut conns = Vec::new();
    for (r, &room) in rooms.iter().enumerate() {
        for m in 0..MEMBERS {
            conns.push((r, srv.join_default(room, &format!("u-{r}-{m}")).unwrap()));
        }
        srv.open_image(room, &format!("u-{r}-0"), image_id).unwrap();
    }

    let mut handles = Vec::new();
    for (r, &room) in rooms.iter().enumerate() {
        for m in 0..MEMBERS {
            let srv = Arc::clone(&srv);
            let user = format!("u-{r}-{m}");
            handles.push(std::thread::spawn(move || {
                for i in 0..OPS {
                    match i % 4 {
                        0 => srv
                            .act(
                                room,
                                &user,
                                Action::Chat {
                                    text: format!("{user}:{i}"),
                                },
                            )
                            .unwrap(),
                        1 => srv
                            .act(
                                room,
                                &user,
                                Action::AddLine {
                                    object: image_id,
                                    element: LineElement {
                                        x0: (i % 64) as i64,
                                        y0: (i % 64) as i64,
                                        x1: 63,
                                        y1: 0,
                                        intensity: 200,
                                    },
                                },
                            )
                            .unwrap(),
                        2 => {
                            let _ = srv.act(
                                room,
                                &user,
                                Action::Choose {
                                    component: ComponentId(2),
                                    form: i % 2,
                                },
                            );
                        }
                        _ => {
                            srv.render_object(room, image_id).unwrap();
                        }
                    }
                }
            }));
        }
    }
    // Churn: create/join/leave rooms while the workers run.
    {
        let srv = Arc::clone(&srv);
        handles.push(std::thread::spawn(move || {
            for i in 0..10 {
                let room = srv
                    .create_room("churn", &format!("ephemeral-{i}"), doc_id)
                    .unwrap();
                let _conn = srv.join_default(room, "churn").unwrap();
                srv.act(
                    room,
                    "churn",
                    Action::Chat {
                        text: "passing through".into(),
                    },
                )
                .unwrap();
                srv.leave(room, "churn").unwrap();
            }
        }));
    }
    // Observer: snapshots and Debug must stay responsive throughout.
    {
        let srv = Arc::clone(&srv);
        handles.push(std::thread::spawn(move || {
            for _ in 0..50 {
                let snap = srv.metrics();
                assert!(snap.counters.contains_key("server.rooms.map.read.count"));
                assert!(format!("{srv:?}").starts_with("InteractionServer(rooms="));
                std::thread::yield_now();
            }
        }));
    }
    assert!(
        handles.len() >= 10,
        "stress needs >= 8 workers + churn + observer"
    );
    for h in handles {
        h.join().unwrap();
    }

    for (r, &room) in rooms.iter().enumerate() {
        let streams: Vec<Vec<SequencedEvent>> = conns
            .iter()
            .filter(|(cr, _)| *cr == r)
            .map(|(_, c)| c.events.try_iter().collect())
            .collect();
        assert_eq!(streams.len(), MEMBERS);
        let n = streams.iter().map(|s| s.len()).min().unwrap();
        assert!(n > 0, "room {room} delivered no events");
        for w in streams.windows(2) {
            assert_eq!(
                w[0][w[0].len() - n..],
                w[1][w[1].len() - n..],
                "room {room}: members saw different event orders"
            );
        }
        for s in &streams {
            assert!(
                s.windows(2).all(|w| w[1].seq == w[0].seq + 1),
                "room {room}: non-contiguous sequence numbers"
            );
            for ev in s {
                let dump = format!("{:?}", ev.event);
                for other in (0..ROOMS).filter(|&o| o != r) {
                    assert!(
                        !dump.contains(&format!("u-{other}-")),
                        "room {room}: saw room-{other} traffic: {dump}"
                    );
                }
            }
        }
    }

    // The per-room lock instrumentation is part of the public metrics
    // surface: wait/hold histograms and map acquisition counters.
    let snap = srv.metrics();
    for h in ["server.room.lock.wait.us", "server.room.lock.hold.us"] {
        let hist = snap
            .histograms
            .get(h)
            .unwrap_or_else(|| panic!("{h} missing from metrics()"));
        assert!(hist.count > 0, "{h} recorded no samples");
    }
    assert!(snap.counters["server.rooms.map.read.count"] > 0);
    assert!(snap.counters["server.rooms.map.write.count"] >= (ROOMS + 10) as u64);
}

/// A stalled room must not impede the rest of the server: while one room's
/// lock is pinned, every other room (and room creation) stays live.
#[test]
fn stalled_room_does_not_block_the_server() {
    let (srv, doc_id, image_id) = fixture();
    let slow = srv.create_room("admin", "slow", doc_id).unwrap();
    let fast = srv.create_room("admin", "fast", doc_id).unwrap();
    let _s = srv.join_default(slow, "u-0-0").unwrap();
    let _f = srv.join_default(fast, "u-1-0").unwrap();
    srv.open_image(fast, "u-1-0", image_id).unwrap();

    let handle = srv.room_handle(slow).unwrap();
    let guard = handle.lock();
    // Same-thread progress through other rooms proves no global lock is
    // involved anywhere on these paths.
    srv.act(
        fast,
        "u-1-0",
        Action::Chat {
            text: "live".into(),
        },
    )
    .unwrap();
    srv.render_object(fast, image_id).unwrap();
    srv.render_presentation(fast, "u-1-0").unwrap();
    let extra = srv.create_room("admin", "extra", doc_id).unwrap();
    assert!(srv.members(extra).unwrap().is_empty());
    assert!(format!("{srv:?}").contains("rooms=3"));
    drop(guard);
    srv.act(
        slow,
        "u-0-0",
        Action::Chat {
            text: "caught up".into(),
        },
    )
    .unwrap();
}
