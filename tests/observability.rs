//! Cross-crate observability: the `Metrics` trait, server-wide snapshots,
//! snapshot diffing on instance registries, and the JSON export path — the
//! integration-level complement to `rcmo-obs`'s unit tests.

use rcmo::core::{FormKind, MediaRef, MultimediaDocument, PresentationForm};
use rcmo::mediadb::{AccessLevel, DocumentObject, MediaDb};
use rcmo::netsim::buffer::BufferStats;
use rcmo::netsim::ClientBuffer;
use rcmo::obs::{Metrics, MetricsSnapshot, Registry};
use rcmo::server::{Action, InteractionServer, RoomStats};

fn fixture_server() -> (InteractionServer, u64) {
    let db = MediaDb::in_memory().unwrap();
    db.put_user("admin", "dr-a", AccessLevel::Write).unwrap();
    db.put_user("admin", "dr-b", AccessLevel::Write).unwrap();
    let mut doc = MultimediaDocument::new("Patient Y");
    doc.add_primitive(
        doc.root(),
        "CT",
        MediaRef::None,
        vec![
            PresentationForm::new("flat", FormKind::Flat, 10_000),
            PresentationForm::hidden(),
        ],
    )
    .unwrap();
    doc.validate().unwrap();
    let doc_id = db
        .insert_document(
            "dr-a",
            &DocumentObject {
                title: doc.title().into(),
                data: doc.to_bytes(),
            },
        )
        .unwrap();
    (InteractionServer::new(db), doc_id)
}

/// One `server.metrics()` call sees every room: rooms parent their
/// registries under the server's, so counters roll up without locks, and
/// the typed `RoomStats` view agrees with the raw snapshot.
#[test]
fn server_snapshot_covers_room_activity() {
    let (srv, doc_id) = fixture_server();
    let room = srv.create_room("dr-a", "obs", doc_id).unwrap();
    let _a = srv.join_default(room, "dr-a").unwrap();
    let _b = srv.join_default(room, "dr-b").unwrap();
    for i in 0..5 {
        srv.act(
            room,
            "dr-a",
            Action::Chat {
                text: format!("note {i}"),
            },
        )
        .unwrap();
    }

    let snap = srv.metrics();
    assert_eq!(snap.gauges["server.rooms.active"], 1);
    assert!(snap.counters["server.room.delivered.count"] > 0);
    assert!(snap.counters["server.room.delivered.bytes"] > 0);
    let bh = &snap.histograms["server.room.broadcast.us"];
    assert!(bh.count > 0, "broadcast latency must have samples");

    // The trait's typed view reads the same cells the snapshot captured.
    let stats: RoomStats = Metrics::metrics(&srv);
    assert_eq!(
        stats.events_delivered,
        snap.counters["server.room.delivered.count"]
    );
    assert_eq!(
        stats.changes_logged,
        snap.counters["server.room.logged.count"]
    );
    assert_eq!(stats.delivery_failures, 0);
}

/// `ClientBuffer` implements `Metrics`: the `BufferStats` view is produced
/// from the registry, and diffing two snapshots isolates one burst of
/// activity even though the registry keeps accumulating.
#[test]
fn buffer_stats_view_and_snapshot_diff() {
    // Detached: this test's counts must not race other tests' global rollup.
    let mut buf = ClientBuffer::with_registry(1_000, Registry::detached());
    let c = rcmo::core::ComponentId(1);
    assert!(!buf.lookup((c, 0))); // miss
    buf.insert((c, 0), 600);
    assert!(buf.lookup((c, 0))); // hit
    assert_eq!(
        buf.metrics(),
        BufferStats {
            hits: 1,
            misses: 1,
            evictions: 0
        }
    );

    let before = buf.metrics_snapshot();
    buf.insert((c, 1), 600); // evicts (c, 0)
    assert!(!buf.lookup((c, 0)));
    let delta = buf.metrics_snapshot().diff(&before);
    assert_eq!(delta.counters["netsim.buffer.eviction.count"], 1);
    assert_eq!(delta.counters["netsim.buffer.miss.count"], 1);
    assert_eq!(delta.counters["netsim.buffer.hit.count"], 0);

    // Gauges are point-in-time, not differenced away.
    assert_eq!(delta.gauges["netsim.buffer.used.bytes"], 600);
}

/// A live server snapshot survives the JSON round trip bit-exactly — the
/// same path E14 uses to write `BENCH_obs.json`.
#[test]
fn server_snapshot_json_round_trip() {
    let (srv, doc_id) = fixture_server();
    let room = srv.create_room("dr-a", "json", doc_id).unwrap();
    let _a = srv.join_default(room, "dr-a").unwrap();
    srv.act(
        room,
        "dr-a",
        Action::Chat {
            text: "ping".into(),
        },
    )
    .unwrap();
    let snap = srv.metrics();
    let json = snap.to_json();
    assert_eq!(MetricsSnapshot::from_json(&json).unwrap(), snap);
}
