//! Cross-crate integration: codec ↔ imaging ↔ storage ↔ mediadb ↔ core.

use rcmo::codec::{decode, decode_prefix, decode_resolution, encode, EncoderConfig};
use rcmo::core::{
    CpNet, FormKind, MediaRef, MultimediaDocument, PrefetchPlanner, PresentationEngine,
    PresentationForm, ViewerChoice, ViewerSession,
};
use rcmo::imaging::{ct_phantom, psnr, segment_image, xray_projection};
use rcmo::mediadb::{DocumentObject, ImageObject, MediaDb};
use rcmo::storage::{Column, ColumnType, Database, RowValue, Schema};

/// A layered bitstream survives storage as a BLOB and its *prefix reads*
/// decode to coarser layers — the progressive-transfer path end to end.
#[test]
fn layered_stream_progressive_through_blob_store() {
    let img = ct_phantom(96, 2, 3).unwrap();
    let stream = encode(&img, &EncoderConfig::default()).unwrap();
    let info = rcmo::codec::layered::info(&stream).unwrap();

    let db = Database::in_memory().unwrap();
    let mut tx = db.begin().unwrap();
    let blob = tx.put_blob(&stream).unwrap();
    tx.commit().unwrap();

    let mut tx = db.begin().unwrap();
    // Full read → full quality.
    let full = tx.get_blob(blob).unwrap();
    assert_eq!(full, stream);
    let full_img = decode(&full).unwrap();
    // Prefix read → base layer only.
    let l0 = info.prefix_for_layers(0);
    let prefix = tx.get_blob_prefix(blob, l0).unwrap();
    let (base_img, layers) = decode_prefix(&prefix).unwrap();
    assert_eq!(layers, 1);
    assert!(psnr(&img, &full_img) > psnr(&img, &base_img));
    // Reduced resolution from the same stored bytes.
    let half = decode_resolution(&prefix, 1).unwrap();
    assert_eq!(half.width(), 48);
}

/// An image object carrying a layered stream round-trips through the
/// Figure-7 schema, and the mediadb prefix fetch feeds the decoder.
#[test]
fn image_objects_with_layered_payloads() {
    let db = MediaDb::in_memory().unwrap();
    let img = ct_phantom(64, 1, 9).unwrap();
    let stream = encode(&img, &EncoderConfig::default()).unwrap();
    let info = rcmo::codec::layered::info(&stream).unwrap();
    let id = db
        .insert_image(
            "admin",
            &ImageObject {
                name: "layered".into(),
                quality: 2,
                texts: String::new(),
                cm: Vec::new(),
                data: stream.clone(),
            },
        )
        .unwrap();
    let prefix = db
        .get_image_prefix("admin", id, info.prefix_for_layers(1))
        .unwrap();
    let (decoded, layers) = decode_prefix(&prefix).unwrap();
    assert_eq!(layers, 2);
    assert_eq!(decoded.width(), 64);
}

/// A full document (structure + CP-net) survives the database and still
/// reconfigures; the prefetch planner runs against the reloaded copy.
#[test]
fn document_roundtrip_through_mediadb_keeps_preferences() {
    let mut doc = MultimediaDocument::new("case");
    let a = doc
        .add_primitive(
            doc.root(),
            "A",
            MediaRef::None,
            vec![
                PresentationForm::new("flat", FormKind::Flat, 10_000),
                PresentationForm::hidden(),
            ],
        )
        .unwrap();
    let b = doc
        .add_primitive(
            doc.root(),
            "B",
            MediaRef::None,
            vec![
                PresentationForm::new("flat", FormKind::Flat, 20_000),
                PresentationForm::new("icon", FormKind::Icon, 500),
                PresentationForm::hidden(),
            ],
        )
        .unwrap();
    // While A is shown, B is an icon.
    doc.author_parents(b, &[a]).unwrap();
    doc.author_preference(b, &[(a, 0)], &[1, 0, 2]).unwrap();
    doc.author_preference(b, &[(a, 1)], &[0, 1, 2]).unwrap();
    doc.validate().unwrap();

    let db = MediaDb::in_memory().unwrap();
    let id = db
        .insert_document(
            "admin",
            &DocumentObject {
                title: "case".into(),
                data: doc.to_bytes(),
            },
        )
        .unwrap();
    let reloaded =
        MultimediaDocument::from_bytes(&db.get_document("admin", id).unwrap().data).unwrap();

    let engine = PresentationEngine::new();
    let mut session = ViewerSession::new("v");
    session
        .choose(
            &reloaded,
            ViewerChoice {
                component: a,
                form: 1,
            },
        )
        .unwrap();
    let p = engine.presentation_for(&reloaded, &session).unwrap();
    assert_eq!(p.form(b), 0, "B flat once A hidden (survived storage)");

    let planner = PrefetchPlanner::default();
    let plan = planner
        .plan(&reloaded, &session.evidence_for(&reloaded), 50_000)
        .unwrap();
    assert!(plan.items.iter().any(|i| i.component == b && i.form == 0));
}

/// The CP-net binary codec composes with raw storage tables: store the
/// Figure-2 network in a custom table, reload, and query it.
#[test]
fn cpnet_in_custom_table() {
    let (net, [c1, ..]) = rcmo::core::cpnet::samples::figure2_net();
    let db = Database::in_memory().unwrap();
    let mut tx = db.begin().unwrap();
    tx.create_table(
        "PREFS",
        Schema::new(vec![
            Column::new("ID", ColumnType::U64),
            Column::new("NET", ColumnType::Bytes),
        ])
        .unwrap(),
    )
    .unwrap();
    let id = tx
        .insert(
            "PREFS",
            vec![RowValue::Null, RowValue::Bytes(net.to_bytes())],
        )
        .unwrap();
    tx.commit().unwrap();

    let mut tx = db.begin().unwrap();
    let row = tx.get("PREFS", id).unwrap().unwrap();
    let bytes = match &row[1] {
        RowValue::Bytes(b) => b.clone(),
        other => panic!("expected bytes, got {other:?}"),
    };
    let back = CpNet::from_bytes(&bytes).unwrap();
    assert_eq!(back.optimal_outcome(), net.optimal_outcome());
    assert_eq!(back.var_by_name("c1"), Some(c1));
}

/// Imaging pipeline end to end: phantom → segmentation → rendered grid →
/// codec → storage → decode, with quality preserved within the quantiser.
#[test]
fn segmentation_render_compresses_and_survives() {
    let ct = ct_phantom(96, 4, 17).unwrap();
    let mut seg = segment_image(&ct, 6);
    assert!(seg.num_segments() >= 2);
    for label in 1..seg.num_segments() as u32 {
        seg.set_fill(label, rcmo::imaging::SegmentFill::Solid(230))
            .unwrap();
    }
    let rendered = seg.render(&ct, 255).unwrap();
    let xr = xray_projection(&ct, 12).unwrap();
    assert_eq!(xr.width(), 96);

    let stream = encode(&rendered, &EncoderConfig::default()).unwrap();
    let db = Database::in_memory().unwrap();
    let mut tx = db.begin().unwrap();
    let blob = tx.put_blob(&stream).unwrap();
    tx.commit().unwrap();
    let mut tx = db.begin().unwrap();
    let out = decode(&tx.get_blob(blob).unwrap()).unwrap();
    assert!(psnr(&rendered, &out) > 28.0);
}

/// Storage pool statistics observe real caching behaviour when the same
/// document is fetched repeatedly.
#[test]
fn repeated_document_fetch_hits_buffer_pool() {
    let db = MediaDb::in_memory().unwrap();
    let doc = MultimediaDocument::new("tiny");
    let id = db
        .insert_document(
            "admin",
            &DocumentObject {
                title: "tiny".into(),
                data: doc.to_bytes(),
            },
        )
        .unwrap();
    for _ in 0..10 {
        let _ = db.get_document("admin", id).unwrap();
    }
    let stats = db.database().pool_stats();
    assert!(stats.hits > stats.misses, "{stats:?}");
}
