//! The modem-heavy clinic scenario (DESIGN.md §16): 56k viewers behind
//! faulty links fetch a layered CT image through the adaptive delivery
//! tier. The oracle's clinic sweep demands every viewer eventually render
//! at full layer depth after its link recovers, and that the warmed room
//! cache actually serves hits — and the whole scenario must stay
//! deterministic like every other.

use rcmo_sim::{SimConfig, Simulator};

#[test]
fn modem_clinic_recovers_to_full_depth_and_hits_the_cache() {
    let a = Simulator::run(&SimConfig::modem_clinic(7));
    let b = Simulator::run(&SimConfig::modem_clinic(7));

    assert_eq!(
        a.trace_text, b.trace_text,
        "same seed must replay an identical clinic trace"
    );
    assert_eq!(a.metrics_text, b.metrics_text);

    assert!(
        a.violations.is_empty(),
        "clinic oracle must be green:\n{}",
        a.violations.join("\n")
    );
    assert!(
        a.actions.get("clinic-viewer").copied().unwrap_or(0) > 0,
        "clinic viewers never stepped"
    );

    // The adaptive tier really ran: depths were chosen from real ladders
    // (no full-payload fallback on the layered image), the cache took a
    // bounded number of storage misses, and hits dominate.
    let m = &a.merged_metrics;
    let depth = m
        .histograms
        .get("server.delivery.depth.layers")
        .expect("depth histogram recorded");
    assert!(depth.count > 0, "no adaptive depth was ever chosen");
    let hits = m.counters["server.delivery.cache.hit.count"];
    let misses = m.counters["server.delivery.cache.miss.count"];
    assert!(hits > 0, "warmed cache served no hits");
    // Misses are O(objects per room), never O(deliveries): every room
    // holds at most the raw and the layered fixture image.
    assert!(
        misses <= (a.rooms as u64) * 2,
        "cache misses {misses} exceed objects-per-room bound"
    );
    assert!(
        hits > misses,
        "cache hits ({hits}) should dominate misses ({misses})"
    );
}
