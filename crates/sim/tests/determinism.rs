//! The double-run determinism gate: the same seed must reproduce the
//! whole-system chaos scenario byte-for-byte — trace and metrics — and a
//! different seed must not.

use rcmo_sim::{SimConfig, Simulator};

#[test]
fn same_seed_is_byte_identical_different_seed_is_not() {
    let a = Simulator::run(&SimConfig::small(42));
    let b = Simulator::run(&SimConfig::small(42));

    assert_eq!(
        a.trace_text, b.trace_text,
        "same seed must replay an identical event trace"
    );
    assert_eq!(
        a.metrics_text, b.metrics_text,
        "same seed must reproduce identical metrics"
    );
    assert_eq!(a.trace_fingerprint, b.trace_fingerprint);
    assert_eq!(a.events_executed, b.events_executed);

    // The scenario is only a witness if something actually happened in it.
    assert!(
        a.events_executed > 500,
        "scenario too small: {}",
        a.events_executed
    );
    assert!(a.kills >= 1, "no shard was killed");
    assert!(a.failovers >= 1, "no room failed over");
    assert!(a.migrations >= 1, "no migration ran");
    assert!(a.crash_drills >= 1, "no storage crash drill ran");
    assert!(a.resyncs >= 1, "no persona ever resynced");
    assert!(
        a.violations.is_empty(),
        "oracle must be green:\n{}",
        a.violations.join("\n")
    );
    for (kind, count) in &a.actions {
        assert!(*count > 0, "persona kind {kind} never stepped");
    }

    let c = Simulator::run(&SimConfig::small(43));
    assert_ne!(
        a.trace_text, c.trace_text,
        "a different seed must produce a different trace"
    );
}
