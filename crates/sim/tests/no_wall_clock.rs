//! Lint-style sweep: no wall-clock escape hatches in simulated paths.
//!
//! Determinism holds only if every time source the simulator can reach is
//! the injected clock. This test greps the sim-reachable crates
//! (`netsim`, `server`, `sim`) for the banned constructs:
//!
//! * `Instant::now` / `SystemTime` — wall time (the one allowed site is
//!   `rcmo_obs::WallClock`, outside the swept set);
//! * `thread::sleep` — wall-time blocking (virtual sleeps go through
//!   `Clock::sleep_us`);
//! * `start_timer` — the obs `Timer` embeds `Instant::now` internally, so
//!   simulated code must record explicit clock deltas instead.
//!
//! Test files (`tests.rs`, `tests/`) are excluded: tests may use wall
//! time for timeouts without touching determinism.

use std::fs;
use std::path::{Path, PathBuf};

const BANNED: [&str; 4] = ["Instant::now", "SystemTime", "thread::sleep", "start_timer"];

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).unwrap_or_else(|e| panic!("read {}: {e}", dir.display())) {
        let entry = entry.expect("dir entry");
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "tests" {
                rust_sources(&path, out);
            }
        } else if name.ends_with(".rs") && name != "tests.rs" {
            out.push(path);
        }
    }
}

#[test]
fn simulated_paths_use_no_wall_clock() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("crates dir")
        .parent()
        .expect("repo root")
        .to_path_buf();
    let mut files = Vec::new();
    for crate_dir in ["crates/netsim/src", "crates/server/src", "crates/sim/src"] {
        rust_sources(&root.join(crate_dir), &mut files);
    }
    assert!(files.len() > 10, "sweep found too few sources: {files:?}");
    files.sort();

    let mut offenders = Vec::new();
    for file in &files {
        let text = fs::read_to_string(file).unwrap_or_else(|e| panic!("read {file:?}: {e}"));
        for (lineno, line) in text.lines().enumerate() {
            // Doc comments and comments may *mention* the banned names
            // (e.g. to document this very rule).
            let code = line.trim_start();
            if code.starts_with("//") {
                continue;
            }
            for banned in BANNED {
                if code.contains(banned) {
                    offenders.push(format!(
                        "{}:{}: {}",
                        file.strip_prefix(&root).unwrap_or(file).display(),
                        lineno + 1,
                        code
                    ));
                }
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "wall-clock constructs in simulated paths (route them through \
         rcmo_obs::Clock):\n{}",
        offenders.join("\n")
    );
}
