//! # rcmo-sim — deterministic whole-system chaos simulation
//!
//! A seeded discrete-event simulator that drives the *entire* stack —
//! cluster frontend, shards, rooms, fan-out, presentation, codec,
//! storage — through scripted client personas and chaos actors on one
//! virtual clock. The paper's remote conference is a distributed system
//! full of partial failure (modem viewers, dying reflectors, interrupted
//! servers); this crate is the harness that holds the grown system to the
//! paper's implicit contract *under* that failure, reproducibly.
//!
//! The pieces:
//!
//! * [`rng`] — one master seed, split into independent per-actor streams
//!   by stable label.
//! * [`trace`] — the determinism witness: one line per event, virtual
//!   timestamps only, compared byte-for-byte across same-seed runs.
//! * [`world`] — the system under test plus shared state (clock, oracle,
//!   fixture ids, failover generations).
//! * [`persona`] — scripted clients: lurkers, annotators, late joiners,
//!   flappy modem viewers, presenter handoff chains, room churners.
//! * [`chaos`] — seeded faults: shard kills, live migrations, storage
//!   crash drills.
//! * [`oracle`] — the invariants: gap-free per-member sequences, zero
//!   acked-event loss across failover, bounded queues, storage integrity
//!   after every crash, no dead histograms, full persona coverage.
//! * [`sim`] — the engine: one event heap, epoch maintenance, and the
//!   [`SimReport`] the E21 experiment exports as `BENCH_sim.json`.
//!
//! The headline property: **same seed ⇒ byte-identical trace and metrics
//! text**. Everything time-like runs on [`rcmo_obs::SimClock`]; the
//! wall-clock lint test in this crate keeps `Instant::now` and friends
//! out of every simulated path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod oracle;
pub mod persona;
pub mod rng;
pub mod sim;
pub mod trace;
pub mod world;

pub use oracle::Oracle;
pub use persona::Actor;
pub use rng::SimRng;
pub use sim::{SimConfig, SimReport, Simulator};
pub use trace::EventTrace;
pub use world::World;
