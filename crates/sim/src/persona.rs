//! Scripted client personas: the population of a simulated conference.
//!
//! Each persona is an [`Actor`] the engine steps at seeded virtual times.
//! A persona owns its connection(s), its `last_seen` sequence cursor, and
//! its own RNG stream (split from the master seed by label, so editing one
//! persona never perturbs another's draws). Every step feeds what the
//! persona observed into the oracle — the personas *are* the invariant
//! probes.
//!
//! The cast:
//! * [`Lurker`] — joins as a viewer and drains the broadcast stream
//!   (doubles as the *late joiner* when scheduled deep into the run).
//! * [`Annotator`] — a moderator who opens a stored image (raw or
//!   layered-codec), annotates it, chats, and flips presentation forms.
//! * [`FlappyViewer`] — a modem viewer behind a seeded faulty link with
//!   outage windows; skips draining while dark, falls behind, gets evicted
//!   as a slow consumer, and recovers through resync.
//! * [`PresenterChain`] — two users passing the presenter seat back and
//!   forth, exercising the role handoff across migration and failover.
//! * [`RoomChurner`] — creates a room, chats it warm, closes it, repeats —
//!   the lifecycle path (create/close under chaos).

use crate::world::World;
use rand::prelude::*;
use rcmo_imaging::{LineElement, TextElement};
use rcmo_netsim::{FaultSpec, FaultyLink, Link, RetryPolicy, TransferOutcome};
use rcmo_obs::Clock;
use rcmo_server::{Action, ClientConnection, JoinRequest, Resync, RoomId};

/// One scheduled participant of the simulation — a persona or a chaos
/// agent. The engine pops the actor's next event off the heap, advances
/// the virtual clock, and calls [`Actor::step`]; the returned delay (in
/// virtual microseconds) schedules the next step, `None` retires the
/// actor.
pub trait Actor {
    /// Stable kind tag (persona-coverage accounting).
    fn kind(&self) -> &'static str;
    /// Runs one step against the world; returns the virtual-µs delay
    /// until the next step, or `None` when done.
    fn step(&mut self, w: &mut World) -> Option<u64>;
}

/// Joins if not connected. Returns `false` (after tracing) when the join
/// failed this step.
fn ensure_joined(
    w: &mut World,
    label: &str,
    room: RoomId,
    req: &JoinRequest,
    conn: &mut Option<ClientConnection>,
    gen: &mut u64,
) -> bool {
    if conn.is_some() {
        return true;
    }
    match w.cf.join(room, req) {
        Ok(c) => {
            *gen = w.gen_of(room);
            *conn = Some(c);
            w.trace(label, "join ok");
            true
        }
        Err(e) => {
            w.trace(label, &format!("join err: {e}"));
            false
        }
    }
}

/// Reconnects after a lost stream (failover or slow-consumer eviction):
/// validates the catch-up against `last_seen` through the oracle and
/// re-anchors the cursor.
fn resync(
    w: &mut World,
    label: &str,
    room: RoomId,
    user: &str,
    last_seen: &mut u64,
    conn: &mut Option<ClientConnection>,
) {
    match w.cf.resync(room, user, *last_seen) {
        Ok((c, catch_up)) => {
            w.oracle.on_resync(room, user, *last_seen, &catch_up);
            match &catch_up {
                Resync::Events(events) => {
                    if let Some(last) = events.last() {
                        *last_seen = last.seq;
                    }
                    w.trace(label, &format!("resync events n={}", events.len()));
                }
                Resync::Snapshot(snap) => {
                    *last_seen = snap.seq;
                    w.trace(label, &format!("resync snapshot seq={}", snap.seq));
                }
            }
            *conn = Some(c);
            w.resyncs += 1;
        }
        Err(e) => {
            // Stream is gone and the reconnect failed: drop the dead
            // connection so the next step re-joins from scratch.
            *conn = None;
            w.trace(label, &format!("resync err: {e}"));
        }
    }
}

/// Drains the old stream (events sent before the shard died are still
/// buffered and must feed the gap checker first), then resyncs, whenever
/// the room's failover generation moved past the persona's.
fn catch_up_failover(
    w: &mut World,
    label: &str,
    room: RoomId,
    user: &str,
    last_seen: &mut u64,
    gen: &mut u64,
    conn: &mut Option<ClientConnection>,
) {
    if w.gen_of(room) == *gen {
        return;
    }
    if let Some(c) = conn.as_ref() {
        let (_, last) = w.drain(c, *last_seen);
        *last_seen = last;
    }
    *gen = w.gen_of(room);
    resync(w, label, room, user, last_seen, conn);
}

/// Jittered next-step delay: uniform in `[period/2, period)`.
fn jittered(rng: &mut StdRng, period_us: u64) -> u64 {
    let half = (period_us / 2).max(1);
    half + rng.gen_range(0..half)
}

// ---------------------------------------------------------------------
// Lurker (and late joiner)
// ---------------------------------------------------------------------

/// A receive-only viewer: joins, drains, checks its queue bound. With a
/// deep first-step delay this is the *late joiner* — its first drained
/// event anchors mid-stream, which the oracle accepts by design.
pub struct Lurker {
    kind: &'static str,
    label: String,
    room: RoomId,
    user: String,
    rng: StdRng,
    conn: Option<ClientConnection>,
    last_seen: u64,
    gen: u64,
    period_us: u64,
    queue_bound: usize,
}

impl Lurker {
    /// A lurker (or late joiner — the `kind` tag) for `room`.
    pub fn new(kind: &'static str, room: RoomId, w: &World, period_us: u64) -> Lurker {
        let label = format!("{kind}-{room}");
        let rng = w.rng.split(&label);
        Lurker {
            kind,
            label,
            room,
            user: kind.to_string(),
            rng,
            conn: None,
            last_seen: 0,
            gen: 0,
            period_us,
            queue_bound: rcmo_server::DEFAULT_MEMBER_QUEUE_BOUND,
        }
    }
}

impl Actor for Lurker {
    fn kind(&self) -> &'static str {
        self.kind
    }

    fn step(&mut self, w: &mut World) -> Option<u64> {
        let req = JoinRequest::viewer(&self.user);
        if !ensure_joined(
            w,
            &self.label,
            self.room,
            &req,
            &mut self.conn,
            &mut self.gen,
        ) {
            return Some(jittered(&mut self.rng, self.period_us));
        }
        catch_up_failover(
            w,
            &self.label,
            self.room,
            &self.user,
            &mut self.last_seen,
            &mut self.gen,
            &mut self.conn,
        );
        if let Some(c) = self.conn.as_ref() {
            let (n, last) = w.drain(c, self.last_seen);
            self.last_seen = last;
            let depth = c.events.len();
            w.oracle.check_queue(&self.label, depth, self.queue_bound);
            w.trace(&self.label, &format!("drain n={n} last={last}"));
        }
        Some(jittered(&mut self.rng, self.period_us))
    }
}

// ---------------------------------------------------------------------
// Annotator
// ---------------------------------------------------------------------

/// A moderator doing the paper's cooperative work: opens a stored image
/// into the room (raw `GIM1` or layered `LIC1` — the latter decodes
/// through the codec), annotates it, chats, and flips presentation forms.
pub struct Annotator {
    label: String,
    room: RoomId,
    rng: StdRng,
    conn: Option<ClientConnection>,
    last_seen: u64,
    gen: u64,
    /// Stored image to open into the room, if this room is an image room.
    image: Option<u64>,
    opened: bool,
    period_us: u64,
}

impl Annotator {
    /// An annotator for `room`; `image` is the stored object it opens.
    pub fn new(room: RoomId, image: Option<u64>, w: &World, period_us: u64) -> Annotator {
        let label = format!("ann-{room}");
        let rng = w.rng.split(&label);
        Annotator {
            label,
            room,
            rng,
            conn: None,
            last_seen: 0,
            gen: 0,
            image,
            opened: false,
            period_us,
        }
    }

    fn pick_action(&mut self, w: &World) -> Action {
        match self.rng.gen_range(0..10u32) {
            5 | 6 if self.opened => {
                let object = self.image.expect("opened implies image");
                if self.rng.gen_bool(0.5) {
                    Action::AddText {
                        object,
                        element: TextElement {
                            x: self.rng.gen_range(0..48),
                            y: self.rng.gen_range(0..48),
                            text: format!("n{}", self.rng.gen_range(0..100u32)),
                            intensity: 220,
                            scale: 1,
                        },
                    }
                } else {
                    Action::AddLine {
                        object,
                        element: LineElement {
                            x0: self.rng.gen_range(0..64),
                            y0: self.rng.gen_range(0..64),
                            x1: self.rng.gen_range(0..64),
                            y1: self.rng.gen_range(0..64),
                            intensity: 180,
                        },
                    }
                }
            }
            7 => Action::Choose {
                component: w.components[self.rng.gen_range(0..w.components.len())],
                form: self.rng.gen_range(0..3),
            },
            8 => Action::Unchoose {
                component: w.components[self.rng.gen_range(0..w.components.len())],
            },
            n => Action::Chat {
                text: format!("msg-{n}"),
            },
        }
    }
}

impl Actor for Annotator {
    fn kind(&self) -> &'static str {
        "annotator"
    }

    fn step(&mut self, w: &mut World) -> Option<u64> {
        let req = JoinRequest::moderator("ann");
        if !ensure_joined(
            w,
            &self.label,
            self.room,
            &req,
            &mut self.conn,
            &mut self.gen,
        ) {
            return Some(jittered(&mut self.rng, self.period_us));
        }
        catch_up_failover(
            w,
            &self.label,
            self.room,
            "ann",
            &mut self.last_seen,
            &mut self.gen,
            &mut self.conn,
        );
        if let (Some(image), false) = (self.image, self.opened) {
            match w.cf.open_image(self.room, "ann", image) {
                Ok(()) => {
                    self.opened = true;
                    w.trace(&self.label, &format!("open image={image}"));
                }
                Err(e) => w.trace(&self.label, &format!("open err: {e}")),
            }
        } else {
            let action = self.pick_action(w);
            let what = match &action {
                Action::Chat { .. } => "chat",
                Action::AddText { .. } => "add-text",
                Action::AddLine { .. } => "add-line",
                Action::Choose { .. } => "choose",
                Action::Unchoose { .. } => "unchoose",
                _ => "act",
            };
            match w.cf.act(self.room, "ann", action) {
                Ok(()) => w.trace(&self.label, &format!("{what} ok")),
                Err(e) => w.trace(&self.label, &format!("{what} err: {e}")),
            }
        }
        if let Some(c) = self.conn.as_ref() {
            let (n, last) = w.drain(c, self.last_seen);
            self.last_seen = last;
            w.oracle.check_queue(
                &self.label,
                c.events.len(),
                rcmo_server::DEFAULT_MEMBER_QUEUE_BOUND,
            );
            w.trace(&self.label, &format!("drain n={n} last={last}"));
        }
        Some(jittered(&mut self.rng, self.period_us))
    }
}

// ---------------------------------------------------------------------
// Flappy modem viewer
// ---------------------------------------------------------------------

/// A viewer on a seeded faulty modem link with outage windows and a tiny
/// send-queue bound. While the link is dark it cannot drain, falls
/// behind, and the room evicts it as a slow consumer; it recovers through
/// resync — the oracle validates every catch-up.
pub struct FlappyViewer {
    label: String,
    room: RoomId,
    rng: StdRng,
    conn: Option<ClientConnection>,
    last_seen: u64,
    gen: u64,
    link: FaultyLink,
    policy: RetryPolicy,
    queue_bound: usize,
    period_us: u64,
}

impl FlappyViewer {
    /// A flappy viewer for `room` with outage windows seeded across
    /// `horizon_s` virtual seconds.
    pub fn new(room: RoomId, w: &World, horizon_s: f64, period_us: u64) -> FlappyViewer {
        let label = format!("flappy-{room}");
        let mut rng = w.rng.split(&label);
        let mut fault = FaultSpec::lossy(0.05, w.rng.derive_seed(&label));
        let horizon = (horizon_s as u64).max(120);
        for _ in 0..3 {
            let start = rng.gen_range(0..horizon.saturating_sub(60)) as f64;
            fault = fault.with_outage(start, start + 45.0);
        }
        FlappyViewer {
            label,
            room,
            rng,
            conn: None,
            last_seen: 0,
            gen: 0,
            link: FaultyLink::new(Link::new(56_000.0, 0.2), fault),
            policy: RetryPolicy {
                max_retries: 2,
                base_backoff_s: 0.5,
                backoff_cap_s: 2.0,
                attempt_timeout_s: 5.0,
            },
            queue_bound: 4,
            period_us,
        }
    }
}

impl Actor for FlappyViewer {
    fn kind(&self) -> &'static str {
        "flappy-viewer"
    }

    fn step(&mut self, w: &mut World) -> Option<u64> {
        let req = JoinRequest::viewer("flappy").with_queue_bound(self.queue_bound);
        if !ensure_joined(
            w,
            &self.label,
            self.room,
            &req,
            &mut self.conn,
            &mut self.gen,
        ) {
            return Some(jittered(&mut self.rng, self.period_us));
        }
        catch_up_failover(
            w,
            &self.label,
            self.room,
            "flappy",
            &mut self.last_seen,
            &mut self.gen,
            &mut self.conn,
        );
        // One downlink fetch over the modem decides whether this step can
        // drain at all.
        let now_s = w.clock.now_s();
        match self.link.transfer(1_500, now_s, &self.policy) {
            TransferOutcome::Delivered { retransmits, .. } => {
                if let Some(c) = self.conn.as_ref() {
                    let (n, last) = w.drain(c, self.last_seen);
                    self.last_seen = last;
                    w.oracle
                        .check_queue(&self.label, c.events.len(), self.queue_bound);
                    w.trace(
                        &self.label,
                        &format!("deliver rtx={retransmits} drain n={n}"),
                    );
                }
            }
            TransferOutcome::TimedOut { attempts, .. } => {
                // Dark: the queue fills behind us; the room may evict us.
                w.trace(&self.label, &format!("timeout attempts={attempts}"));
            }
        }
        // Periodic reconnect: recovers from slow-consumer eviction (the
        // stream went quiet) as well as plain lag.
        if self.rng.gen_bool(0.34) {
            resync(
                w,
                &self.label,
                self.room,
                "flappy",
                &mut self.last_seen,
                &mut self.conn,
            );
        }
        Some(jittered(&mut self.rng, self.period_us))
    }
}

// ---------------------------------------------------------------------
// Modem-clinic viewer
// ---------------------------------------------------------------------

/// The modem-heavy clinic (DESIGN.md §16): a 56k viewer behind a seeded
/// faulty link with an early outage window, repeatedly asking the server
/// for a bandwidth-adapted delivery of the layered CT image. Each
/// delivered transfer is reported back (the estimator's feedback loop) and
/// the deepest render reached feeds the oracle — after the link recovers,
/// every clinic viewer must eventually see the image at full layer depth,
/// and the room cache must be serving hits once warmed.
pub struct ClinicViewer {
    label: String,
    room: RoomId,
    rng: StdRng,
    conn: Option<ClientConnection>,
    last_seen: u64,
    gen: u64,
    link: FaultyLink,
    policy: RetryPolicy,
    /// Whether this persona already warmed the room cache through the
    /// room's moderator (retried until the moderator has joined).
    warmed: bool,
    period_us: u64,
}

impl ClinicViewer {
    /// A clinic viewer for `room`, dark for one outage window in the
    /// first half of `horizon_s`.
    pub fn new(room: RoomId, w: &World, horizon_s: f64, period_us: u64) -> ClinicViewer {
        let label = format!("clinic-{room}");
        let mut rng = w.rng.split(&label);
        let horizon = (horizon_s as u64).max(240);
        let start = rng.gen_range(0..horizon / 4) as f64;
        let fault =
            FaultSpec::lossy(0.02, w.rng.derive_seed(&label)).with_outage(start, start + 60.0);
        ClinicViewer {
            label,
            room,
            rng,
            conn: None,
            last_seen: 0,
            gen: 0,
            link: FaultyLink::new(Link::new(56_000.0, 0.2), fault),
            policy: RetryPolicy {
                max_retries: 2,
                base_backoff_s: 0.5,
                backoff_cap_s: 2.0,
                attempt_timeout_s: 5.0,
            },
            warmed: false,
            period_us,
        }
    }
}

impl Actor for ClinicViewer {
    fn kind(&self) -> &'static str {
        "clinic-viewer"
    }

    fn step(&mut self, w: &mut World) -> Option<u64> {
        let req = JoinRequest::viewer("clinic");
        if !ensure_joined(
            w,
            &self.label,
            self.room,
            &req,
            &mut self.conn,
            &mut self.gen,
        ) {
            return Some(jittered(&mut self.rng, self.period_us));
        }
        catch_up_failover(
            w,
            &self.label,
            self.room,
            "clinic",
            &mut self.last_seen,
            &mut self.gen,
            &mut self.conn,
        );
        // Warm the room cache once through the room's moderator (the
        // CP-net prefetch plan); retried until the moderator has joined.
        if !self.warmed {
            match w.cf.warm_room_cache(self.room, "ann") {
                Ok(n) => {
                    self.warmed = true;
                    w.trace(&self.label, &format!("warm n={n}"));
                }
                Err(e) => w.trace(&self.label, &format!("warm err: {e}")),
            }
        }
        // Ask for a bandwidth-adapted delivery of the layered CT image,
        // then simulate the client-side transfer over the modem.
        let lic = w.lic_image;
        match w.cf.deliver_image(self.room, "clinic", lic) {
            Ok(d) => {
                let now_s = w.clock.now_s();
                match self
                    .link
                    .transfer(d.payload.len() as u64, now_s, &self.policy)
                {
                    TransferOutcome::Delivered {
                        elapsed_s,
                        retransmits,
                    } => {
                        let bytes = d.payload.len() as u64;
                        if let Err(e) = w.cf.report_transfer(self.room, "clinic", bytes, elapsed_s)
                        {
                            w.trace(&self.label, &format!("report err: {e}"));
                        }
                        w.oracle
                            .on_clinic_render(&self.label, d.layers, d.total_layers);
                        w.trace(
                            &self.label,
                            &format!(
                                "render layers={}/{} bytes={bytes} rtx={retransmits}",
                                d.layers, d.total_layers
                            ),
                        );
                    }
                    TransferOutcome::TimedOut { attempts, .. } => {
                        w.trace(&self.label, &format!("dark attempts={attempts}"));
                    }
                }
            }
            Err(e) => w.trace(&self.label, &format!("deliver err: {e}")),
        }
        if let Some(c) = self.conn.as_ref() {
            let (n, last) = w.drain(c, self.last_seen);
            self.last_seen = last;
            w.oracle.check_queue(
                &self.label,
                c.events.len(),
                rcmo_server::DEFAULT_MEMBER_QUEUE_BOUND,
            );
            w.trace(&self.label, &format!("drain n={n} last={last}"));
        }
        Some(jittered(&mut self.rng, self.period_us))
    }
}

// ---------------------------------------------------------------------
// Presenter handoff chain
// ---------------------------------------------------------------------

/// Two users (`pA` presenter, `pB` moderator) passing the presenter seat
/// back and forth — the role-transition path, exercised across migration
/// and failover (roles ride the exported room state).
pub struct PresenterChain {
    label: String,
    room: RoomId,
    rng: StdRng,
    conn_a: Option<ClientConnection>,
    conn_b: Option<ClientConnection>,
    last_a: u64,
    last_b: u64,
    gen: u64,
    a_holds_seat: bool,
    period_us: u64,
}

impl PresenterChain {
    /// A handoff chain for `room`.
    pub fn new(room: RoomId, w: &World, period_us: u64) -> PresenterChain {
        let label = format!("chain-{room}");
        let rng = w.rng.split(&label);
        PresenterChain {
            label,
            room,
            rng,
            conn_a: None,
            conn_b: None,
            last_a: 0,
            last_b: 0,
            gen: 0,
            a_holds_seat: true,
            period_us,
        }
    }
}

impl Actor for PresenterChain {
    fn kind(&self) -> &'static str {
        "presenter-chain"
    }

    fn step(&mut self, w: &mut World) -> Option<u64> {
        let join_a = JoinRequest::presenter("pA");
        let join_b = JoinRequest::moderator("pB");
        let mut gen_b = self.gen;
        ensure_joined(
            w,
            &self.label,
            self.room,
            &join_a,
            &mut self.conn_a,
            &mut self.gen,
        );
        ensure_joined(
            w,
            &self.label,
            self.room,
            &join_b,
            &mut self.conn_b,
            &mut gen_b,
        );
        if w.gen_of(self.room) != self.gen {
            if let Some(c) = self.conn_a.as_ref() {
                let (_, last) = w.drain(c, self.last_a);
                self.last_a = last;
            }
            if let Some(c) = self.conn_b.as_ref() {
                let (_, last) = w.drain(c, self.last_b);
                self.last_b = last;
            }
            self.gen = w.gen_of(self.room);
            resync(
                w,
                &self.label,
                self.room,
                "pA",
                &mut self.last_a,
                &mut self.conn_a,
            );
            resync(
                w,
                &self.label,
                self.room,
                "pB",
                &mut self.last_b,
                &mut self.conn_b,
            );
        }
        if self.conn_a.is_some() && self.conn_b.is_some() {
            let (from, to) = if self.a_holds_seat {
                ("pA", "pB")
            } else {
                ("pB", "pA")
            };
            match w.cf.hand_off_presenter(self.room, from, to) {
                Ok(()) => {
                    self.a_holds_seat = !self.a_holds_seat;
                    w.trace(&self.label, &format!("handoff {from}->{to} ok"));
                }
                Err(e) => w.trace(&self.label, &format!("handoff {from}->{to} err: {e}")),
            }
        }
        if let Some(c) = self.conn_a.as_ref() {
            let (_, last) = w.drain(c, self.last_a);
            self.last_a = last;
        }
        if let Some(c) = self.conn_b.as_ref() {
            let (n, last) = w.drain(c, self.last_b);
            self.last_b = last;
            w.trace(&self.label, &format!("drain n={n} last={last}"));
        }
        Some(jittered(&mut self.rng, self.period_us))
    }
}

// ---------------------------------------------------------------------
// Room churner
// ---------------------------------------------------------------------

/// The room-lifecycle persona: creates a room, chats it warm, closes it,
/// and starts over — create/close running concurrently with kills,
/// migrations, and failovers.
pub struct RoomChurner {
    label: String,
    idx: usize,
    rng: StdRng,
    current: Option<Churn>,
    created: u64,
    chats_per_room: u32,
    period_us: u64,
}

struct Churn {
    room: RoomId,
    conn: Option<ClientConnection>,
    last_seen: u64,
    gen: u64,
    chats_left: u32,
}

impl RoomChurner {
    /// Churner number `idx`.
    pub fn new(idx: usize, w: &World, chats_per_room: u32, period_us: u64) -> RoomChurner {
        let label = format!("churn-{idx}");
        let rng = w.rng.split(&label);
        RoomChurner {
            label,
            idx,
            rng,
            current: None,
            created: 0,
            chats_per_room,
            period_us,
        }
    }
}

impl Actor for RoomChurner {
    fn kind(&self) -> &'static str {
        "room-churner"
    }

    fn step(&mut self, w: &mut World) -> Option<u64> {
        match self.current.as_mut() {
            None => {
                let name = format!("churn-{}-{}", self.idx, self.created);
                let doc_id = w.doc_id;
                match w.cf.create_room("churn", &name, doc_id) {
                    Ok(room) => {
                        self.created += 1;
                        w.trace(&self.label, &format!("create room={room}"));
                        let mut churn = Churn {
                            room,
                            conn: None,
                            last_seen: 0,
                            gen: 0,
                            chats_left: self.chats_per_room,
                        };
                        let req = JoinRequest::moderator("churn");
                        ensure_joined(w, &self.label, room, &req, &mut churn.conn, &mut churn.gen);
                        self.current = Some(churn);
                    }
                    Err(e) => w.trace(&self.label, &format!("create err: {e}")),
                }
            }
            Some(churn) => {
                let room = churn.room;
                catch_up_failover(
                    w,
                    &self.label,
                    room,
                    "churn",
                    &mut churn.last_seen,
                    &mut churn.gen,
                    &mut churn.conn,
                );
                if churn.chats_left > 0 {
                    churn.chats_left -= 1;
                    let text = format!("c{}", self.rng.gen_range(0..1000u32));
                    match w.cf.act(room, "churn", Action::Chat { text }) {
                        Ok(()) => w.trace(&self.label, "chat ok"),
                        Err(e) => w.trace(&self.label, &format!("chat err: {e}")),
                    }
                    if let Some(c) = churn.conn.as_ref() {
                        let (_, last) = w.drain(c, churn.last_seen);
                        churn.last_seen = last;
                    }
                } else {
                    if let Some(c) = churn.conn.as_ref() {
                        let (_, last) = w.drain(c, churn.last_seen);
                        churn.last_seen = last;
                    }
                    if let Err(e) = w.cf.leave(room, "churn") {
                        w.trace(&self.label, &format!("leave err: {e}"));
                    }
                    match w.cf.close_room(room) {
                        Ok(()) => w.trace(&self.label, &format!("close room={room}")),
                        Err(e) => w.trace(&self.label, &format!("close err: {e}")),
                    }
                    // Either way the room is done for this persona; the
                    // oracle stops holding it to the acked-loss invariant.
                    w.oracle.on_room_closed(room);
                    w.failover_gen.remove(&room);
                    self.current = None;
                }
            }
        }
        Some(jittered(&mut self.rng, self.period_us))
    }
}
