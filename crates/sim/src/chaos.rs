//! Chaos actors: seeded faults injected at virtual times, through the
//! same [`Actor`] interface the personas use.
//!
//! * [`ShardKiller`] — crashes a shard's process (it stops heartbeating;
//!   the failure detector declares it dead at the next epoch and the
//!   engine fails its rooms over).
//! * [`MigrationChaos`] — live-migrates random rooms between surviving
//!   shards while personas are mid-conversation.
//! * [`StorageCrasher`] — runs a full storage crash drill per step: a
//!   counting run sizes the workload, a seeded crash point interrupts a
//!   replay, and only the *surviving bytes* are reopened —
//!   `check_integrity` must come back green every time.

use crate::persona::Actor;
use crate::world::World;
use rand::prelude::*;
use rcmo_storage::{
    Column, ColumnType, CrashSpec, Database, FaultInjector, MemBackend, RowValue, Schema, SimStore,
};

/// Minimum shards left alive; the killer never drops below it.
const MIN_SURVIVORS: usize = 2;

/// Crashes random shards at seeded virtual times.
pub struct ShardKiller {
    rng: StdRng,
    kills_left: u64,
    period_us: u64,
}

impl ShardKiller {
    /// A killer with a budget of `kills` crashes.
    pub fn new(w: &World, kills: u64, period_us: u64) -> ShardKiller {
        ShardKiller {
            rng: w.rng.split("shard-killer"),
            kills_left: kills,
            period_us,
        }
    }
}

impl Actor for ShardKiller {
    fn kind(&self) -> &'static str {
        "shard-killer"
    }

    fn step(&mut self, w: &mut World) -> Option<u64> {
        if self.kills_left == 0 {
            return None;
        }
        let survivors = w.cf.surviving_shards();
        if survivors.len() > MIN_SURVIVORS {
            let victim = survivors[self.rng.gen_range(0..survivors.len())];
            w.cf.kill_shard(victim);
            w.kills += 1;
            self.kills_left -= 1;
            w.trace("shard-killer", &format!("kill shard={victim}"));
        } else {
            w.trace("shard-killer", "skip: at survivor floor");
        }
        if self.kills_left == 0 {
            None
        } else {
            Some(self.period_us)
        }
    }
}

/// Live-migrates random pre-created rooms to random surviving shards.
pub struct MigrationChaos {
    rng: StdRng,
    moves_left: u64,
    period_us: u64,
}

impl MigrationChaos {
    /// A migrator with a budget of `moves` migrations.
    pub fn new(w: &World, moves: u64, period_us: u64) -> MigrationChaos {
        MigrationChaos {
            rng: w.rng.split("migration-chaos"),
            moves_left: moves,
            period_us,
        }
    }
}

impl Actor for MigrationChaos {
    fn kind(&self) -> &'static str {
        "migration-chaos"
    }

    fn step(&mut self, w: &mut World) -> Option<u64> {
        if self.moves_left == 0 || w.rooms.is_empty() {
            return None;
        }
        self.moves_left -= 1;
        let room = w.rooms[self.rng.gen_range(0..w.rooms.len())];
        let survivors = w.cf.surviving_shards();
        let target = survivors[self.rng.gen_range(0..survivors.len())];
        match w.cf.migrate_room(room, target) {
            Ok(()) => {
                w.migrations += 1;
                w.trace(
                    "migration-chaos",
                    &format!("migrate room={room} to={target} ok"),
                );
            }
            Err(e) => {
                w.trace(
                    "migration-chaos",
                    &format!("migrate room={room} to={target} err: {e}"),
                );
            }
        }
        if self.moves_left == 0 {
            None
        } else {
            Some(self.period_us)
        }
    }
}

/// Runs one seeded storage crash drill per step and feeds the verdict to
/// the oracle.
pub struct StorageCrasher {
    rng: StdRng,
    drills_left: u64,
    period_us: u64,
}

impl StorageCrasher {
    /// A crasher with a budget of `drills` drills.
    pub fn new(w: &World, drills: u64, period_us: u64) -> StorageCrasher {
        StorageCrasher {
            rng: w.rng.split("storage-crasher"),
            drills_left: drills,
            period_us,
        }
    }
}

impl Actor for StorageCrasher {
    fn kind(&self) -> &'static str {
        "storage-crasher"
    }

    fn step(&mut self, w: &mut World) -> Option<u64> {
        if self.drills_left == 0 {
            return None;
        }
        self.drills_left -= 1;
        let seed = self.rng.next_u64();
        let torn = self.rng.gen_bool(0.5);
        let drop_unsynced = self.rng.gen_bool(0.5);
        let (op, total, ok) = crash_drill(seed, torn, drop_unsynced, &mut self.rng);
        let label = format!("op={op}/{total} torn={torn} drop={drop_unsynced}");
        w.oracle.on_crash_drill(&label, ok);
        w.trace(
            "storage-crasher",
            &format!("drill {label} {}", if ok { "ok" } else { "INTEGRITY-RED" }),
        );
        if self.drills_left == 0 {
            None
        } else {
            Some(self.period_us)
        }
    }
}

const FRAMES: usize = 64;
const TABLE: &str = "t";

fn drill_schema() -> Schema {
    Schema::new(vec![
        Column::new("ID", ColumnType::U64),
        Column::new("V", ColumnType::I64),
        Column::new("D", ColumnType::Bytes),
        Column::new("B", ColumnType::Blob),
    ])
    .expect("valid drill schema")
}

/// A compact seeded workload: one table, three committed transactions of
/// inserts, one update pass. Small enough to run as a chaos step, big
/// enough to cross page, WAL, and blob write paths.
fn drill_workload(db: &Database, seed: u64) -> Result<(), rcmo_storage::StorageError> {
    let mut tx = db.begin()?;
    tx.create_table(TABLE, drill_schema())?;
    tx.commit()?;
    for txn in 0..3u64 {
        let mut tx = db.begin()?;
        for i in 0..6u64 {
            let id = txn * 6 + i;
            let blob = if i % 3 == 0 {
                RowValue::Blob(tx.put_blob(&vec![(seed as u8) ^ (id as u8); 600])?)
            } else {
                RowValue::Null
            };
            tx.insert(
                TABLE,
                vec![
                    RowValue::U64(id),
                    RowValue::I64((seed ^ id) as i64),
                    RowValue::Bytes(vec![id as u8; 16]),
                    blob,
                ],
            )?;
        }
        tx.commit()?;
    }
    let mut tx = db.begin()?;
    tx.insert(
        TABLE,
        vec![
            RowValue::U64(100),
            RowValue::I64(-1),
            RowValue::Bytes(vec![0xAB; 8]),
            RowValue::Null,
        ],
    )?;
    tx.commit()?;
    Ok(())
}

/// One full crash drill: counting run → seeded crash point → crash run →
/// reopen the surviving bytes → integrity check. Returns
/// `(crash op, total ops, integrity green)`.
fn crash_drill(seed: u64, torn: bool, drop_unsynced: bool, rng: &mut StdRng) -> (u64, u64, bool) {
    // Counting run over fault-free simulated stores sizes the op space.
    let data = SimStore::new();
    let wal = SimStore::new();
    let inj = FaultInjector::new(CrashSpec::count_only(seed));
    let total = {
        let db = match Database::open_with_backends(
            Box::new(data.backend(&inj)),
            Box::new(wal.backend(&inj)),
            FRAMES,
        ) {
            Ok(db) => db,
            Err(_) => return (0, 0, false),
        };
        if drill_workload(&db, seed).is_err() {
            return (0, 0, false);
        }
        drop(db);
        inj.ops()
    };
    if total == 0 {
        return (0, 0, false);
    }
    let op = rng.gen_range(0..total) + 1;

    // Crash run: the same workload, interrupted at the chosen operation.
    let data = SimStore::new();
    let wal = SimStore::new();
    let inj = FaultInjector::new(CrashSpec {
        seed,
        crash_at_op: Some(op),
        torn_writes: torn,
        drop_unsynced,
        io_error_prob: 0.0,
    });
    match Database::open_with_backends(
        Box::new(data.backend(&inj)),
        Box::new(wal.backend(&inj)),
        FRAMES,
    ) {
        // Crash during bootstrap: nothing was committed; still verify the
        // salvage reopen below.
        Err(_) => {}
        Ok(db) => {
            let _ = drill_workload(&db, seed);
        }
    }
    if !inj.crashed() {
        // The chosen op was never reached (workload erred early): treat as
        // a failed drill so it cannot silently pass.
        return (op, total, false);
    }

    // Reopen only what survived, with no further faults.
    let ok = match Database::open_with_backends(
        Box::new(MemBackend::from_bytes(data.surviving_bytes())),
        Box::new(MemBackend::from_bytes(wal.surviving_bytes())),
        FRAMES,
    ) {
        Err(_) => false,
        Ok(db) => db.check_integrity().is_ok(),
    };
    (op, total, ok)
}
