//! Seeded, splittable randomness for the simulator.
//!
//! One master seed drives the whole run. Every actor (persona or chaos
//! agent) gets its *own* independent stream derived from the master seed
//! and the actor's stable label, so adding, removing, or reordering actors
//! never perturbs the draws any other actor sees — the property that keeps
//! scenario edits localized instead of rippling through the entire trace.

use rand::prelude::*;

/// FNV-1a over a label: a cheap stable string hash for stream derivation
/// (the same function the room directory uses for placement).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The run's root randomness: a master seed that splits into per-actor
/// streams by label.
#[derive(Debug, Clone, Copy)]
pub struct SimRng {
    seed: u64,
}

impl SimRng {
    /// A splittable source rooted at `seed`.
    pub fn new(seed: u64) -> SimRng {
        SimRng { seed }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// An independent stream for `label`. Equal `(seed, label)` pairs give
    /// equal streams; distinct labels give (for all practical purposes)
    /// uncorrelated ones.
    pub fn split(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ fnv1a(label.as_bytes()).rotate_left(17))
    }

    /// A derived 64-bit seed for subsystems that take a raw seed (fault
    /// specs, storage crash drills).
    pub fn derive_seed(&self, label: &str) -> u64 {
        self.split(label).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_are_deterministic_and_independent() {
        let root = SimRng::new(0xC0FFEE);
        let a1: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(root.split("a"), |r, _| Some(r.next_u64()))
            .collect();
        let a2: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(root.split("a"), |r, _| Some(r.next_u64()))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(root.split("b"), |r, _| Some(r.next_u64()))
            .collect();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_ne!(
            SimRng::new(1).derive_seed("x"),
            SimRng::new(2).derive_seed("x")
        );
        assert_eq!(root.derive_seed("x"), root.derive_seed("x"));
    }
}
