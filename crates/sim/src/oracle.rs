//! The invariant oracle: everything the simulated system must keep true,
//! checked continuously (as personas drain their streams) and at every
//! epoch boundary.
//!
//! Invariants:
//!
//! 1. **Gap-free sequences** — every event a surviving member drains
//!    carries exactly the next sequence number after the member's last,
//!    and a resync's replayed tail continues `last_seen` densely.
//! 2. **Zero acked-event loss** — an event any member observed can never
//!    disappear from its room's total order, failovers included: each
//!    epoch, every open room's `last_seq` must be ≥ the highest sequence
//!    any member ever drained from it.
//! 3. **Bounded queues** — no member's event stream ever holds more than
//!    its configured bound.
//! 4. **Storage integrity** — every injected storage crash must reopen
//!    with `check_integrity` green.
//! 5. **No dead instrumentation** — histograms the scenario must have
//!    exercised carry samples at the end of the run (E14's guard, applied
//!    to the simulated hour).
//! 6. **Persona coverage** — every registered actor kind executed at
//!    least one step (a scenario with silently dead personas is not the
//!    scenario it claims to be).
//!
//! Violations are collected, not panicked, so one broken invariant cannot
//! mask the others; [`Oracle::violations`] going non-empty is the red
//! gate.

use rcmo_obs::MetricsSnapshot;
use rcmo_server::{Resync, RoomId};
use std::collections::BTreeMap;

/// The run-long invariant checker.
#[derive(Debug, Default)]
pub struct Oracle {
    /// Last sequence number each member drained, per room. `None` entries
    /// never occur — a member appears here with its first drained event.
    member_seq: BTreeMap<(RoomId, String), u64>,
    /// Highest sequence number anyone observed per room: the acked
    /// horizon failover must preserve.
    room_max_seen: BTreeMap<RoomId, u64>,
    /// Steps executed per actor kind (persona coverage).
    actions: BTreeMap<&'static str, u64>,
    /// Deepest render each clinic viewer reached: `label → (max layers
    /// delivered, total layers of the stream)`.
    clinic_depth: BTreeMap<String, (usize, usize)>,
    /// Injected storage crash drills run / failed.
    crash_drills: u64,
    crash_failures: u64,
    epochs_checked: u64,
    violations: Vec<String>,
}

impl Oracle {
    /// A fresh oracle.
    pub fn new() -> Oracle {
        Oracle::default()
    }

    /// Records one executed step of an actor kind.
    pub fn note_action(&mut self, kind: &'static str) {
        *self.actions.entry(kind).or_insert(0) += 1;
    }

    /// Registers an actor kind before the run, so a kind that never steps
    /// shows up as `0` instead of being absent.
    pub fn register_kind(&mut self, kind: &'static str) {
        self.actions.entry(kind).or_insert(0);
    }

    /// Steps executed per kind.
    pub fn actions(&self) -> &BTreeMap<&'static str, u64> {
        &self.actions
    }

    /// Checks one drained event against the member's expected next
    /// sequence number. The first event a member ever drains anchors its
    /// cursor (a join lands mid-stream); every later one must follow
    /// densely.
    pub fn on_event(&mut self, room: RoomId, user: &str, seq: u64) {
        let key = (room, user.to_string());
        match self.member_seq.get(&key) {
            Some(&last) if seq != last + 1 => {
                self.violations.push(format!(
                    "gap: room {room} member {user} drained seq {seq} after {last}"
                ));
            }
            _ => {}
        }
        self.member_seq.insert(key, seq);
        let max = self.room_max_seen.entry(room).or_insert(0);
        *max = (*max).max(seq);
    }

    /// Validates a resync's catch-up against `last_seen` and re-anchors
    /// the member's cursor: a replayed tail must continue `last_seen`
    /// densely; a snapshot legitimately skips ahead (the member fell past
    /// the replay horizon) and re-anchors at the snapshot's sequence.
    pub fn on_resync(&mut self, room: RoomId, user: &str, last_seen: u64, catch_up: &Resync) {
        match catch_up {
            Resync::Events(events) => {
                let mut expect = last_seen;
                for ev in events {
                    if ev.seq != expect + 1 {
                        self.violations.push(format!(
                            "resync gap: room {room} member {user} tail seq {} after {expect}",
                            ev.seq
                        ));
                    }
                    expect = ev.seq;
                }
                self.member_seq.insert((room, user.to_string()), expect);
                let max = self.room_max_seen.entry(room).or_insert(0);
                *max = (*max).max(expect);
            }
            Resync::Snapshot(snap) => {
                self.member_seq.insert((room, user.to_string()), snap.seq);
                let max = self.room_max_seen.entry(room).or_insert(0);
                *max = (*max).max(snap.seq);
            }
        }
    }

    /// Checks a member's live queue depth against its bound.
    pub fn check_queue(&mut self, label: &str, len: usize, bound: usize) {
        if len > bound {
            self.violations
                .push(format!("queue over bound: {label} holds {len} > {bound}"));
        }
    }

    /// Records one injected storage crash drill and whether the reopened
    /// database passed `check_integrity`.
    pub fn on_crash_drill(&mut self, label: &str, integrity_ok: bool) {
        self.crash_drills += 1;
        if !integrity_ok {
            self.crash_failures += 1;
            self.violations
                .push(format!("storage integrity red after crash drill {label}"));
        }
    }

    /// Drops a room from the acked-horizon map (closed deliberately — its
    /// history is allowed to go away with it).
    pub fn on_room_closed(&mut self, room: RoomId) {
        self.room_max_seen.remove(&room);
        self.member_seq.retain(|(r, _), _| *r != room);
    }

    /// The per-epoch sweep: every open room's current `last_seq` (as a
    /// `(room, last_seq)` list the caller read through the cluster) must
    /// cover the acked horizon. A room the caller could not reach at all
    /// is itself a violation — epochs run right after failover settles.
    pub fn epoch_check(&mut self, reached: &[(RoomId, Option<u64>)]) {
        self.epochs_checked += 1;
        for &(room, last_seq) in reached {
            let acked = self.room_max_seen.get(&room).copied().unwrap_or(0);
            match last_seq {
                None => self
                    .violations
                    .push(format!("epoch: room {room} unreachable")),
                Some(seq) if seq < acked => self.violations.push(format!(
                    "acked loss: room {room} last_seq {seq} < acked horizon {acked}"
                )),
                Some(_) => {}
            }
        }
    }

    /// Records a clinic viewer's rendered delivery (layers served of
    /// total). The running maximum is what [`Oracle::clinic_check`]
    /// holds to the eventual-full-depth invariant.
    pub fn on_clinic_render(&mut self, label: &str, layers: usize, total: usize) {
        let entry = self
            .clinic_depth
            .entry(label.to_string())
            .or_insert((0, total));
        entry.0 = entry.0.max(layers);
        entry.1 = entry.1.max(total);
    }

    /// The clinic sweep (run only for scenarios with clinic viewers):
    /// every clinic viewer that rendered at all must have reached the
    /// stream's full layer depth by the end of the run (bandwidth
    /// recovered ⇒ the adaptive policy climbed back), a viewer that never
    /// rendered is itself a violation, and the warmed room cache must
    /// have served at least one hit.
    pub fn clinic_check(&mut self, snapshot: &MetricsSnapshot) {
        if self.clinic_depth.is_empty() {
            self.violations
                .push("clinic: no viewer ever rendered a delivery".to_string());
        }
        for (label, &(max, total)) in &self.clinic_depth {
            if total == 0 || max < total {
                self.violations.push(format!(
                    "clinic: {label} peaked at {max}/{total} layers, never full depth"
                ));
            }
        }
        let hits = snapshot
            .counters
            .get("server.delivery.cache.hit.count")
            .copied()
            .unwrap_or(0);
        if hits == 0 {
            self.violations
                .push("clinic: warmed object cache served zero hits".to_string());
        }
    }

    /// Rooms with an acked horizon (open, observed rooms), sorted.
    pub fn tracked_rooms(&self) -> Vec<RoomId> {
        self.room_max_seen.keys().copied().collect()
    }

    /// The final sweep: persona coverage and no-dead-histogram checks.
    /// `required_histograms` lists names (matched against the combined
    /// snapshot) the scenario must have exercised.
    pub fn final_check(&mut self, snapshot: &MetricsSnapshot, required_histograms: &[&str]) {
        for (&kind, &count) in &self.actions {
            if count == 0 {
                self.violations
                    .push(format!("dead persona: {kind} executed zero steps"));
            }
        }
        for &name in required_histograms {
            match snapshot.histograms.get(name) {
                None => self
                    .violations
                    .push(format!("dead histogram: {name} missing from snapshot")),
                Some(h) if h.count == 0 => self
                    .violations
                    .push(format!("dead histogram: {name} recorded zero samples")),
                Some(_) => {}
            }
        }
    }

    /// Invariant violations found so far (empty = green).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Storage crash drills run.
    pub fn crash_drills(&self) -> u64 {
        self.crash_drills
    }

    /// Crash drills that reopened red.
    pub fn crash_failures(&self) -> u64 {
        self.crash_failures
    }

    /// Epoch sweeps performed.
    pub fn epochs_checked(&self) -> u64 {
        self.epochs_checked
    }
}
