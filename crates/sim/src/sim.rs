//! The discrete-event engine: one event heap, one virtual clock, one
//! seeded RNG tree, driving the whole stack through personas and chaos
//! actors.
//!
//! Execution model: every actor has a next-step time on a binary heap
//! (ties broken by insertion order, so the schedule is a total order).
//! The engine pops the earliest event, advances the [`SimClock`] to it,
//! and steps the actor; the returned delay re-schedules it. At every
//! epoch boundary (a simulated minute) the engine does the cluster's
//! periodic work — pump the failure detector, fail over newly dead
//! shards, compact replica journals — and runs the oracle's acked-loss
//! sweep over every tracked room.
//!
//! Everything nondeterministic is excluded by construction: virtual time
//! only (the wall-clock lint test enforces it), seeded per-actor RNG
//! streams, sorted iteration wherever order reaches the trace. Same seed
//! ⇒ byte-identical [`SimReport::trace_text`] and
//! [`SimReport::metrics_text`].
//!
//! [`SimClock`]: rcmo_obs::SimClock

use crate::chaos::{MigrationChaos, ShardKiller, StorageCrasher};
use crate::persona::{
    Actor, Annotator, ClinicViewer, FlappyViewer, Lurker, PresenterChain, RoomChurner,
};
use crate::world::World;
use rcmo_obs::{Metrics, MetricsSnapshot};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// A scenario: population sizes, chaos budgets, and the virtual horizon.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed: the one knob that decides everything.
    pub seed: u64,
    /// Cluster shards.
    pub shards: usize,
    /// Pre-created rooms.
    pub rooms: usize,
    /// Hard cap on actor steps executed.
    pub max_events: u64,
    /// Virtual horizon in seconds (the "simulated hour").
    pub horizon_s: f64,
    /// Epoch length in virtual seconds (cluster maintenance + oracle sweep).
    pub epoch_s: f64,
    /// Replica journal tail cap (satellite: bounded replica memory).
    pub journal_tail_cap: usize,
    /// Every `image_room_stride`-th room gets a stored image opened into
    /// it (alternating raw `GIM1` / layered `LIC1`).
    pub image_room_stride: usize,
    /// Every `late_stride`-th room gets a late joiner.
    pub late_stride: usize,
    /// Every `flappy_stride`-th room gets a flappy modem viewer.
    pub flappy_stride: usize,
    /// Every `clinic_stride`-th room gets a modem-clinic viewer asking
    /// for bandwidth-adapted layered deliveries (`0` = none).
    pub clinic_stride: usize,
    /// Every `presenter_stride`-th room gets a presenter handoff chain.
    pub presenter_stride: usize,
    /// Room-churner personas (create/chat/close loops).
    pub churners: usize,
    /// Chats a churner sends before closing its room.
    pub chats_per_churn_room: u32,
    /// Shard crashes to inject.
    pub shard_kills: u64,
    /// Live migrations to inject.
    pub migrations: u64,
    /// Storage crash drills to run.
    pub storage_drills: u64,
}

impl SimConfig {
    /// The double-run determinism scenario: 50 rooms, ten virtual
    /// minutes, every persona kind and every chaos kind present.
    pub fn small(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            shards: 4,
            rooms: 50,
            max_events: 2_500,
            horizon_s: 600.0,
            epoch_s: 30.0,
            journal_tail_cap: 64,
            image_room_stride: 5,
            late_stride: 7,
            flappy_stride: 11,
            clinic_stride: 0,
            presenter_stride: 13,
            churners: 2,
            chats_per_churn_room: 4,
            shard_kills: 1,
            migrations: 6,
            storage_drills: 2,
        }
    }

    /// The E21 scenario: 10 000 rooms, 100 000 events, one simulated hour.
    pub fn full(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            shards: 8,
            rooms: 10_000,
            max_events: 100_000,
            horizon_s: 3_600.0,
            epoch_s: 60.0,
            journal_tail_cap: 4_096,
            image_room_stride: 5,
            late_stride: 7,
            flappy_stride: 11,
            clinic_stride: 0,
            presenter_stride: 13,
            churners: 20,
            chats_per_churn_room: 6,
            shard_kills: 3,
            migrations: 40,
            storage_drills: 6,
        }
    }

    /// The modem-heavy clinic scenario (DESIGN.md §16): every room has a
    /// 56k clinic viewer behind a faulty link with an early outage,
    /// repeatedly fetching the layered CT image through the adaptive
    /// delivery tier. Chaos is off — the scenario isolates the
    /// estimator → policy → cache loop, and the oracle's clinic sweep
    /// demands every viewer reach full depth once its link recovers.
    pub fn modem_clinic(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            shards: 2,
            rooms: 12,
            max_events: 2_000,
            horizon_s: 600.0,
            epoch_s: 30.0,
            journal_tail_cap: 64,
            image_room_stride: 2,
            late_stride: 0,
            flappy_stride: 0,
            clinic_stride: 1,
            presenter_stride: 0,
            churners: 0,
            chats_per_churn_room: 0,
            shard_kills: 0,
            migrations: 0,
            storage_drills: 0,
        }
    }
}

/// What one run produced: the determinism witnesses (trace and metrics
/// text), the oracle's verdict, and the headline tallies.
#[derive(Debug)]
pub struct SimReport {
    /// The seed that produced everything below.
    pub seed: u64,
    /// Rooms pre-created.
    pub rooms: usize,
    /// Actors scheduled.
    pub actors: usize,
    /// Actor steps executed.
    pub events_executed: u64,
    /// The virtual horizon in seconds.
    pub horizon_s: f64,
    /// Oracle epoch sweeps run.
    pub epochs: u64,
    /// Full trace text (byte-identical across same-seed runs).
    pub trace_text: String,
    /// FNV fingerprint of the trace (the compact witness for export).
    pub trace_fingerprint: u64,
    /// Trace lines.
    pub trace_len: usize,
    /// Frontend + per-shard metrics rendered as text, in shard order
    /// (byte-identical across same-seed runs).
    pub metrics_text: String,
    /// Frontend and shard snapshots merged (counters and histogram counts
    /// summed) — the machine-readable export.
    pub merged_metrics: MetricsSnapshot,
    /// Steps executed per actor kind (the persona-coverage gate reads
    /// this: every kind must be > 0).
    pub actions: BTreeMap<&'static str, u64>,
    /// Invariant violations (empty = green).
    pub violations: Vec<String>,
    /// Storage crash drills run / failed.
    pub crash_drills: u64,
    /// Drills whose reopened database failed `check_integrity`.
    pub crash_failures: u64,
    /// Shards crashed.
    pub kills: u64,
    /// Rooms failed over.
    pub failovers: u64,
    /// Live migrations completed.
    pub migrations: u64,
    /// Persona resyncs performed.
    pub resyncs: u64,
}

/// The engine. Stateless — [`Simulator::run`] builds a fresh [`World`]
/// per call.
pub struct Simulator;

impl Simulator {
    /// Runs one scenario to completion and returns its report.
    pub fn run(config: &SimConfig) -> SimReport {
        let mut w = World::new(
            config.seed,
            config.shards,
            config.journal_tail_cap,
            config.rooms,
        );
        let horizon_us = (config.horizon_s * 1e6) as u64;
        let epoch_us = ((config.epoch_s * 1e6) as u64).max(1);

        // Persona periods: size them so the schedule offers ~1.4× the step
        // budget inside the horizon — the engine's max_events cap trims
        // the excess, so the cap (not scheduling famine) ends the run.
        let est_actors = (2 * config.rooms
            + config.rooms / config.late_stride.max(1)
            + config.rooms / config.flappy_stride.max(1)
            + config.rooms.checked_div(config.clinic_stride).unwrap_or(0)
            + config.rooms / config.presenter_stride.max(1)
            + config.churners)
            .max(1) as u64;
        let steps_per_actor = (config.max_events * 14 / 10 / est_actors).max(2);
        let period_us = (horizon_us / steps_per_actor).max(1_000);
        let spread_us = (horizon_us / 4).max(1);

        let mut actors: Vec<Box<dyn Actor>> = Vec::new();
        let mut first_at: Vec<u64> = Vec::new();
        // Knuth multiplicative hash of the build index: a deterministic
        // low-discrepancy stagger for first steps.
        let stagger = |k: usize| (k as u64).wrapping_mul(2_654_435_761) % spread_us;

        for i in 0..config.rooms {
            let room = w.rooms[i];
            let image = if config.image_room_stride > 0 && i % config.image_room_stride == 0 {
                Some(if (i / config.image_room_stride).is_multiple_of(2) {
                    w.gim_image
                } else {
                    w.lic_image
                })
            } else {
                None
            };
            first_at.push(stagger(actors.len()));
            actors.push(Box::new(Annotator::new(room, image, &w, period_us)));
            first_at.push(stagger(actors.len()));
            actors.push(Box::new(Lurker::new("lurker", room, &w, period_us)));
            if config.late_stride > 0 && i % config.late_stride == 0 {
                // Late joiners enter in the second half of the run.
                first_at.push(horizon_us / 2 + stagger(actors.len()));
                actors.push(Box::new(Lurker::new("late-joiner", room, &w, period_us)));
            }
            if config.flappy_stride > 0 && i % config.flappy_stride == 0 {
                first_at.push(stagger(actors.len()));
                actors.push(Box::new(FlappyViewer::new(
                    room,
                    &w,
                    config.horizon_s,
                    period_us,
                )));
            }
            if config.clinic_stride > 0 && i % config.clinic_stride == 0 {
                first_at.push(stagger(actors.len()));
                actors.push(Box::new(ClinicViewer::new(
                    room,
                    &w,
                    config.horizon_s,
                    period_us,
                )));
            }
            if config.presenter_stride > 0 && i % config.presenter_stride == 0 {
                first_at.push(stagger(actors.len()));
                actors.push(Box::new(PresenterChain::new(room, &w, period_us)));
            }
        }
        for c in 0..config.churners {
            first_at.push(stagger(actors.len()));
            actors.push(Box::new(RoomChurner::new(
                c,
                &w,
                config.chats_per_churn_room,
                period_us,
            )));
        }
        if config.shard_kills > 0 {
            first_at.push(horizon_us / 6);
            actors.push(Box::new(ShardKiller::new(
                &w,
                config.shard_kills,
                horizon_us / (config.shard_kills + 1),
            )));
        }
        if config.migrations > 0 {
            first_at.push(horizon_us / 8);
            actors.push(Box::new(MigrationChaos::new(
                &w,
                config.migrations,
                horizon_us / (config.migrations + 2),
            )));
        }
        if config.storage_drills > 0 {
            first_at.push(horizon_us / 7);
            actors.push(Box::new(StorageCrasher::new(
                &w,
                config.storage_drills,
                horizon_us / (config.storage_drills + 2),
            )));
        }
        for a in &actors {
            w.oracle.register_kind(a.kind());
        }
        let actor_count = actors.len();
        w.trace(
            "engine",
            &format!(
                "start rooms={} actors={} horizon_s={} seed={}",
                config.rooms, actor_count, config.horizon_s as u64, config.seed
            ),
        );

        // The heap: (virtual µs, insertion seq, actor index). The seq
        // makes simultaneous events a total order.
        let mut heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
        let mut seq: u64 = 0;
        for (idx, &t) in first_at.iter().enumerate() {
            heap.push(Reverse((t, seq, idx)));
            seq += 1;
        }

        let mut executed: u64 = 0;
        let mut next_epoch = epoch_us;
        let mut last_epoch_at: u64 = 0;
        while let Some(Reverse((t, _, idx))) = heap.pop() {
            if t > horizon_us || executed >= config.max_events {
                break;
            }
            while next_epoch <= t {
                run_epoch(&mut w, next_epoch);
                last_epoch_at = next_epoch;
                next_epoch += epoch_us;
            }
            w.clock.advance_to_us(t);
            let next = actors[idx].step(&mut w);
            w.oracle.note_action(actors[idx].kind());
            executed += 1;
            if let Some(delay) = next {
                let at = t.saturating_add(delay.max(1));
                if at <= horizon_us {
                    heap.push(Reverse((at, seq, idx)));
                    seq += 1;
                }
            }
        }
        // Close out the hour: remaining epochs, then a final sweep at the
        // horizon itself (failover anything killed near the end).
        while next_epoch <= horizon_us {
            run_epoch(&mut w, next_epoch);
            last_epoch_at = next_epoch;
            next_epoch += epoch_us;
        }
        if last_epoch_at < horizon_us {
            run_epoch(&mut w, horizon_us);
        }

        // Metrics: frontend first, then every shard in index order.
        let front = w.cf.metrics();
        let mut merged = front.clone();
        let mut metrics_text = format!("## frontend\n{}", front.to_text());
        for s in 0..w.cf.shard_count() {
            let snap = w.cf.shard_server(s).obs().snapshot();
            merge_into(&mut merged, &snap);
            metrics_text.push_str(&format!("## shard {s}\n{}", snap.to_text()));
        }

        let mut required: Vec<&str> = vec![
            "cluster.shard.ingress.wait.us",
            "server.room.broadcast.us",
            "server.room.lock.wait.us",
            "server.room.lock.hold.us",
        ];
        if w.migrations > 0 {
            required.push("cluster.migration.us");
        }
        if w.failovers > 0 {
            required.push("cluster.failover.room.us");
        }
        if w.resyncs > 0 {
            required.push("server.room.resync.us");
        }
        if config.clinic_stride > 0 {
            // The adaptive tier must have chosen depths (the histogram is
            // created lazily with the first DeliveryState, so a clinic
            // scenario that never delivered shows up as a dead histogram).
            required.push("server.delivery.depth.layers");
        }
        w.oracle.final_check(&merged, &required);
        if config.clinic_stride > 0 {
            w.oracle.clinic_check(&merged);
        }

        w.trace(
            "engine",
            &format!(
                "done executed={executed} failovers={} migrations={} kills={} violations={}",
                w.failovers,
                w.migrations,
                w.kills,
                w.oracle.violations().len()
            ),
        );

        SimReport {
            seed: config.seed,
            rooms: config.rooms,
            actors: actor_count,
            events_executed: executed,
            horizon_s: config.horizon_s,
            epochs: w.oracle.epochs_checked(),
            trace_fingerprint: w.trace.fingerprint(),
            trace_len: w.trace.len(),
            trace_text: w.trace.to_text(),
            metrics_text,
            merged_metrics: merged,
            actions: w.oracle.actions().clone(),
            violations: w.oracle.violations().to_vec(),
            crash_drills: w.oracle.crash_drills(),
            crash_failures: w.oracle.crash_failures(),
            kills: w.kills,
            failovers: w.failovers,
            migrations: w.migrations,
            resyncs: w.resyncs,
        }
    }
}

/// One epoch boundary: advance the failure detector to the boundary time,
/// fail over newly dead shards, compact replica journals, and run the
/// oracle's acked-loss sweep over every tracked room.
fn run_epoch(w: &mut World, t_us: u64) {
    w.clock.advance_to_us(t_us);
    let now_s = t_us as f64 / 1e6;
    let newly_dead = w.cf.advance_to(now_s);
    for dead in newly_dead {
        match w.cf.fail_over_shard(dead) {
            Ok(moved) => {
                for &(room, _) in &moved {
                    w.bump_failover(room);
                }
                let summary: Vec<String> = moved.iter().map(|(r, s)| format!("{r}->{s}")).collect();
                w.trace(
                    "engine",
                    &format!("failover shard={dead} rooms=[{}]", summary.join(",")),
                );
            }
            Err(e) => w.trace("engine", &format!("failover shard={dead} err: {e}")),
        }
    }
    match w.cf.maintain_replicas() {
        Ok(n) if n > 0 => w.trace("engine", &format!("maintain compacted={n}")),
        Ok(_) => {}
        Err(e) => w.trace("engine", &format!("maintain err: {e}")),
    }
    let rooms = w.oracle.tracked_rooms();
    let mut reached = Vec::with_capacity(rooms.len());
    for room in rooms {
        reached.push((room, w.cf.last_seq(room).ok()));
    }
    w.oracle.epoch_check(&reached);
    w.trace(
        "engine",
        &format!(
            "epoch t_s={} rooms_checked={}",
            t_us / 1_000_000,
            reached.len()
        ),
    );
}

/// Folds `add` into `acc`: counters and gauges sum, histograms with equal
/// bounds sum bucket-wise. Used to combine the frontend and per-shard
/// registries into one machine-readable snapshot.
fn merge_into(acc: &mut MetricsSnapshot, add: &MetricsSnapshot) {
    for (k, v) in &add.counters {
        *acc.counters.entry(k.clone()).or_insert(0) += v;
    }
    for (k, v) in &add.gauges {
        *acc.gauges.entry(k.clone()).or_insert(0) += v;
    }
    for (k, h) in &add.histograms {
        match acc.histograms.get_mut(k) {
            None => {
                acc.histograms.insert(k.clone(), h.clone());
            }
            Some(a) if a.bounds == h.bounds => {
                for (x, y) in a.counts.iter_mut().zip(&h.counts) {
                    *x += y;
                }
                a.count += h.count;
                a.sum += h.sum;
                a.max = a.max.max(h.max);
                a.min = a.min.min(h.min);
            }
            // Mismatched bounds: keep the first; counts stay meaningful
            // through `count`, which is all the oracle reads.
            Some(_) => {}
        }
    }
}
