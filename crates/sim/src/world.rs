//! The simulated world: the system under test plus everything the actors
//! and the engine share — the virtual clock, the root randomness, the
//! trace, the oracle, and the fixture ids (document, stored images,
//! pre-created rooms).

use crate::oracle::Oracle;
use crate::rng::SimRng;
use crate::trace::EventTrace;
use rcmo_core::{ComponentId, FormKind, MediaRef, MultimediaDocument, PresentationForm};
use rcmo_mediadb::{AccessLevel, DocumentObject, ImageObject, MediaDb};
use rcmo_obs::{Clock, SimClock};
use rcmo_server::{ClientConnection, ClusterConfig, ClusterFrontend, RoomId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything one simulated run shares. Actors receive `&mut World` per
/// step; the engine owns it for the run.
pub struct World {
    /// The system under test: the full sharded cluster over one store.
    pub cf: ClusterFrontend,
    /// The run's single virtual timeline (also injected into `cf`).
    pub clock: Arc<SimClock>,
    /// The root randomness every actor splits its stream from.
    pub rng: SimRng,
    /// The determinism witness.
    pub trace: EventTrace,
    /// The invariant checker.
    pub oracle: Oracle,
    /// The stored shared document every room opens.
    pub doc_id: u64,
    /// A stored raw (`GIM1`) CT image.
    pub gim_image: u64,
    /// The same phantom stored layered-codec (`LIC1`) encoded — opening it
    /// exercises the codec decode path inside the server.
    pub lic_image: u64,
    /// Primitive component ids of the shared document (for `Choose`).
    pub components: Vec<ComponentId>,
    /// The pre-created room population, index-addressable by personas.
    pub rooms: Vec<RoomId>,
    /// Failover generation per room: bumped when a room is rebuilt on a
    /// new shard. A persona whose remembered generation is stale lost its
    /// event stream with the dead shard and must resync.
    pub failover_gen: BTreeMap<RoomId, u64>,
    /// Chaos tallies (exported in the report; also gate which histograms
    /// the final no-dead-instrumentation check requires).
    pub kills: u64,
    /// Rooms failed over.
    pub failovers: u64,
    /// Live migrations completed.
    pub migrations: u64,
    /// Resyncs personas performed.
    pub resyncs: u64,
}

impl World {
    /// Builds the fixture (users, document, both image encodings), the
    /// cluster, and `rooms` pre-created rooms, all on one virtual clock.
    pub fn new(seed: u64, shards: usize, journal_tail_cap: usize, rooms: usize) -> World {
        let clock = SimClock::new();
        let db = MediaDb::in_memory().expect("in-memory media db");
        for user in ["ann", "pA", "pB", "churn"] {
            db.put_user("admin", user, AccessLevel::Write)
                .expect("fixture user");
        }
        // The modem-clinic viewer: read-only in the database, a plain
        // viewer in its room (adaptive deliveries need nothing more).
        db.put_user("admin", "clinic", AccessLevel::Read)
            .expect("fixture user");
        let (doc, components) = conference_document();
        let doc_id = db
            .insert_document(
                "admin",
                &DocumentObject {
                    title: doc.title().into(),
                    data: doc.to_bytes(),
                },
            )
            .expect("document stored");
        let phantom = rcmo_imaging::ct_phantom(64, 2, 1).expect("phantom");
        let gim_image = db
            .insert_image(
                "admin",
                &ImageObject {
                    name: "ct-raw".into(),
                    quality: 0,
                    texts: String::new(),
                    cm: Vec::new(),
                    data: phantom.to_bytes(),
                },
            )
            .expect("raw image stored");
        let layered = rcmo_codec::encode(&phantom, &rcmo_codec::EncoderConfig::default())
            .expect("layered encode");
        let lic_image = db
            .insert_image(
                "admin",
                &ImageObject {
                    name: "ct-layered".into(),
                    quality: 0,
                    texts: String::new(),
                    cm: Vec::new(),
                    data: layered,
                },
            )
            .expect("layered image stored");

        let mut config = ClusterConfig::new(shards);
        config.journal_tail_cap = journal_tail_cap;
        // The simulator sleeps in virtual time, so retries are free in wall
        // time — but a tight budget keeps exhausted-retry errors readable.
        config.route_retries = 16;
        let cf = ClusterFrontend::new_with_clock(db, config, clock.clone());

        let mut world = World {
            cf,
            clock,
            rng: SimRng::new(seed),
            trace: EventTrace::new(),
            oracle: Oracle::new(),
            doc_id,
            gim_image,
            lic_image,
            components,
            rooms: Vec::new(),
            failover_gen: BTreeMap::new(),
            kills: 0,
            failovers: 0,
            migrations: 0,
            resyncs: 0,
        };
        for i in 0..rooms {
            let id = world
                .cf
                .create_room("admin", &format!("room-{i}"), doc_id)
                .expect("room created");
            world.rooms.push(id);
            world.failover_gen.insert(id, 0);
        }
        world
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// Appends a trace line at the current virtual time.
    pub fn trace(&mut self, actor: &str, what: &str) {
        let t = self.clock.now_us();
        self.trace.push(t, actor, what);
    }

    /// The room's failover generation (0 if never failed over or unknown —
    /// churner-created rooms enter the map lazily).
    pub fn gen_of(&self, room: RoomId) -> u64 {
        self.failover_gen.get(&room).copied().unwrap_or(0)
    }

    /// Records that `room` was rebuilt on a new shard: every member's
    /// stream died with the old one.
    pub fn bump_failover(&mut self, room: RoomId) {
        *self.failover_gen.entry(room).or_insert(0) += 1;
        self.failovers += 1;
    }

    /// Drains a connection's stream into the oracle's gap checker.
    /// Returns `(events drained, highest sequence seen)` — the caller
    /// advances its `last_seen` cursor with the latter.
    pub fn drain(&mut self, conn: &ClientConnection, last_seen: u64) -> (usize, u64) {
        let mut n = 0;
        let mut last = last_seen;
        for ev in conn.events.try_iter() {
            self.oracle.on_event(conn.room, &conn.user, ev.seq);
            last = ev.seq;
            n += 1;
        }
        (n, last)
    }
}

/// A small shared conference document: two folders of three primitives
/// each (flat/icon/hidden forms), the shape of the bench fixture scaled
/// for a 10k-room population. Returns the document and its primitive
/// component ids.
fn conference_document() -> (MultimediaDocument, Vec<ComponentId>) {
    let mut doc = MultimediaDocument::new("Conference agenda");
    let mut primitives = Vec::new();
    for f in 0..2 {
        let folder = doc
            .add_composite(doc.root(), &format!("topic-{f}"))
            .expect("root is composite");
        for l in 0..3 {
            let c = doc
                .add_primitive(
                    folder,
                    &format!("slide-{f}-{l}"),
                    MediaRef::None,
                    vec![
                        PresentationForm::new("flat", FormKind::Flat, 20_000),
                        PresentationForm::new("icon", FormKind::Icon, 2_000),
                        PresentationForm::hidden(),
                    ],
                )
                .expect("valid primitive");
            primitives.push(c);
        }
    }
    doc.validate().expect("valid document");
    (doc, primitives)
}
