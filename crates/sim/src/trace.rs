//! The run's event trace: one line per simulator event, in execution
//! order, with virtual timestamps.
//!
//! The trace is the determinism witness. Every line is
//! `t=<virtual µs> <actor> <what>` — no wall-clock value, no pointer, no
//! hash-map iteration order ever reaches it — so two runs from the same
//! seed must produce byte-identical traces, and the double-run test
//! compares them whole. For large runs the FNV fingerprint summarizes the
//! trace in the exported report.

/// An append-only, deterministic event log.
#[derive(Debug, Default)]
pub struct EventTrace {
    lines: Vec<String>,
}

impl EventTrace {
    /// An empty trace.
    pub fn new() -> EventTrace {
        EventTrace::default()
    }

    /// Appends one event at virtual time `t_us`, attributed to `actor`.
    pub fn push(&mut self, t_us: u64, actor: &str, what: &str) {
        self.lines.push(format!("t={t_us} {actor} {what}"));
    }

    /// Number of trace lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// `true` if nothing was traced.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The whole trace as one newline-joined text (the byte-comparison
    /// form).
    pub fn to_text(&self) -> String {
        self.lines.join("\n")
    }

    /// FNV-1a fingerprint of the trace text: the compact determinism
    /// witness exported in `BENCH_sim.json`.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for line in &self.lines {
            for &b in line.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= b'\n' as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_traces_fingerprint_equal() {
        let mut a = EventTrace::new();
        let mut b = EventTrace::new();
        for t in [(5, "x", "join ok"), (9, "y", "chat")] {
            a.push(t.0, t.1, t.2);
            b.push(t.0, t.1, t.2);
        }
        assert_eq!(a.to_text(), b.to_text());
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.push(10, "y", "chat");
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.len(), 2);
    }
}
