//! Prefetch policies: what to pull into the client buffer during idle time.

use crate::buffer::{ClientBuffer, Rendition};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rcmo_core::{
    ComponentId, FormKind, MultimediaDocument, PartialAssignment, PrefetchConfig, PrefetchPlanner,
};

/// Which policy a simulation runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// No prefetching: every request pays the full transfer.
    None,
    /// Random renditions (a naive prefetcher).
    Random,
    /// Smallest renditions first (cheap but preference-blind).
    SmallestFirst,
    /// The paper's preference-based planner (CP-net likelihoods).
    PreferenceBased,
}

impl PolicyKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::None => "none",
            PolicyKind::Random => "random",
            PolicyKind::SmallestFirst => "smallest-first",
            PolicyKind::PreferenceBased => "preference",
        }
    }

    /// All policies, for sweeps.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::None,
        PolicyKind::Random,
        PolicyKind::SmallestFirst,
        PolicyKind::PreferenceBased,
    ];
}

/// A prefetch policy instance.
#[derive(Debug, Clone)]
pub struct PrefetchPolicy {
    kind: PolicyKind,
    planner: PrefetchPlanner,
    rng: StdRng,
}

impl PrefetchPolicy {
    /// Creates a policy. `seed` drives the random policy only.
    pub fn new(kind: PolicyKind, seed: u64) -> PrefetchPolicy {
        PrefetchPolicy {
            kind,
            planner: PrefetchPlanner::new(PrefetchConfig {
                top_k: 256,
                decay: 0.97,
            }),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The policy kind.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// Returns the next renditions to prefetch, best first, skipping what
    /// is already resident. The caller transfers as many as the idle
    /// window's byte budget allows.
    pub fn candidates(
        &mut self,
        doc: &MultimediaDocument,
        evidence: &PartialAssignment,
        buffer: &ClientBuffer,
    ) -> Vec<(Rendition, u64)> {
        let all: Vec<(Rendition, u64)> = match self.kind {
            PolicyKind::None => Vec::new(),
            PolicyKind::Random => {
                let mut v = all_renditions(doc);
                v.shuffle(&mut self.rng);
                v
            }
            PolicyKind::SmallestFirst => {
                let mut v = all_renditions(doc);
                v.sort_by_key(|&(_, size)| size);
                v
            }
            PolicyKind::PreferenceBased => self
                .planner
                .plan(doc, evidence, buffer.capacity())
                .map(|plan| {
                    plan.items
                        .into_iter()
                        .map(|i| ((i.component, i.form), i.cost_bytes))
                        .collect()
                })
                .unwrap_or_default(),
        };
        all.into_iter()
            .filter(|(r, _)| !buffer.contains(*r))
            .collect()
    }
}

/// Every non-hidden rendition of a document with its transfer cost.
fn all_renditions(doc: &MultimediaDocument) -> Vec<(Rendition, u64)> {
    let mut out = Vec::new();
    for i in 0..doc.num_components() {
        let c = ComponentId(i as u32);
        if let Ok(forms) = doc.forms(c) {
            for (f, form) in forms.iter().enumerate() {
                if form.kind != FormKind::Hidden {
                    out.push(((c, f), form.cost_bytes));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcmo_core::{MediaRef, PresentationForm};

    fn doc() -> MultimediaDocument {
        let mut doc = MultimediaDocument::new("d");
        for (name, cost) in [("a", 10_000u64), ("b", 5_000), ("c", 20_000)] {
            doc.add_primitive(
                doc.root(),
                name,
                MediaRef::None,
                vec![
                    PresentationForm::new("flat", FormKind::Flat, cost),
                    PresentationForm::hidden(),
                ],
            )
            .unwrap();
        }
        doc.validate().unwrap();
        doc
    }

    #[test]
    fn none_policy_prefetches_nothing() {
        let doc = doc();
        let mut p = PrefetchPolicy::new(PolicyKind::None, 0);
        let buf = ClientBuffer::new(100_000);
        let ev = PartialAssignment::empty(doc.net().len());
        assert!(p.candidates(&doc, &ev, &buf).is_empty());
    }

    #[test]
    fn smallest_first_orders_by_size() {
        let doc = doc();
        let mut p = PrefetchPolicy::new(PolicyKind::SmallestFirst, 0);
        let buf = ClientBuffer::new(100_000);
        let ev = PartialAssignment::empty(doc.net().len());
        let c = p.candidates(&doc, &ev, &buf);
        let sizes: Vec<u64> = c.iter().map(|&(_, s)| s).collect();
        assert_eq!(sizes, vec![0, 5_000, 10_000, 20_000]); // root is free
    }

    #[test]
    fn resident_renditions_are_skipped() {
        let doc = doc();
        let mut p = PrefetchPolicy::new(PolicyKind::PreferenceBased, 0);
        let mut buf = ClientBuffer::new(100_000);
        let ev = PartialAssignment::empty(doc.net().len());
        let first = p.candidates(&doc, &ev, &buf);
        assert!(!first.is_empty());
        for &(r, s) in &first {
            buf.insert(r, s);
        }
        assert!(p.candidates(&doc, &ev, &buf).is_empty());
    }

    #[test]
    fn random_policy_is_seed_deterministic() {
        let doc = doc();
        let buf = ClientBuffer::new(100_000);
        let ev = PartialAssignment::empty(doc.net().len());
        let a = PrefetchPolicy::new(PolicyKind::Random, 7).candidates(&doc, &ev, &buf);
        let b = PrefetchPolicy::new(PolicyKind::Random, 7).candidates(&doc, &ev, &buf);
        assert_eq!(a, b);
    }

    #[test]
    fn hidden_forms_never_offered() {
        let doc = doc();
        for kind in PolicyKind::ALL {
            let mut p = PrefetchPolicy::new(kind, 1);
            let buf = ClientBuffer::new(100_000);
            let ev = PartialAssignment::empty(doc.net().len());
            for ((c, f), _) in p.candidates(&doc, &ev, &buf) {
                assert_ne!(doc.forms(c).unwrap()[f].kind, FormKind::Hidden);
            }
        }
    }
}
