//! Heartbeat streams over a faulty shard link, in virtual time.
//!
//! The cluster layer detects shard failure from *missed heartbeats*: each
//! shard periodically beats over its control link, and the frontend's
//! health tracker counts consecutive silence. This module supplies the
//! link half deterministically — a [`HeartbeatLink`] wraps a
//! [`FaultyLink`] and answers, for the beat due at virtual time `t`,
//! whether it arrives and when. A [`FaultSpec`] outage window models a
//! stalled or partitioned shard (every beat inside the window is lost);
//! per-beat loss models a flaky control path; a crashed shard simply stops
//! beating (the caller stops asking).
//!
//! Heartbeats are fire-and-forget: a lost beat is *not* retried — the next
//! interval carries the next one, and it is precisely the run of missing
//! arrivals that the failure detector is built to observe.

use crate::fault::{FaultSpec, FaultyLink, RetryPolicy, TransferOutcome};
use crate::link::Link;

/// Wire size of one heartbeat message (id + term + a few gauges).
pub const HEARTBEAT_BYTES: u64 = 64;

/// A shard's control link emitting heartbeats every `interval_s` virtual
/// seconds. Deterministic: equal seeds produce equal arrival patterns.
#[derive(Debug, Clone)]
pub struct HeartbeatLink {
    link: FaultyLink,
    interval_s: f64,
    /// Beats emitted so far (the next beat is due at `sent * interval_s`).
    sent: u64,
}

impl HeartbeatLink {
    /// A heartbeat stream over `link` under the fault model `fault`,
    /// beating every `interval_s` virtual seconds.
    pub fn new(link: Link, fault: FaultSpec, interval_s: f64) -> HeartbeatLink {
        assert!(interval_s > 0.0, "heartbeat interval must be positive");
        HeartbeatLink {
            link: FaultyLink::new(link, fault),
            interval_s,
            sent: 0,
        }
    }

    /// The heartbeat interval in virtual seconds.
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }

    /// Virtual time the next beat is due.
    pub fn next_due(&self) -> f64 {
        self.sent as f64 * self.interval_s
    }

    /// Emits the next due beat; returns its arrival time at the frontend,
    /// or `None` if the fault model ate it (loss or an outage window — a
    /// stalled/partitioned shard). One beat, one attempt: heartbeats are
    /// never retried.
    pub fn beat(&mut self) -> Option<f64> {
        let now = self.next_due();
        self.sent += 1;
        let policy = RetryPolicy {
            max_retries: 0,
            base_backoff_s: 0.0,
            backoff_cap_s: 0.0,
            // A beat slower than its own interval is as good as lost.
            attempt_timeout_s: self.interval_s,
        };
        match self.link.transfer(HEARTBEAT_BYTES, now, &policy) {
            TransferOutcome::Delivered { elapsed_s, .. } => Some(now + elapsed_s),
            TransferOutcome::TimedOut { .. } => None,
        }
    }

    /// Advances the stream up to virtual time `until`, returning the
    /// arrival times of every beat that survived the link. The caller
    /// (the failure detector) infers shard health from the gaps.
    pub fn beats_until(&mut self, until: f64) -> Vec<f64> {
        let mut arrivals = Vec::new();
        while self.next_due() <= until {
            if let Some(at) = self.beat() {
                arrivals.push(at);
            }
        }
        arrivals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lan() -> Link {
        Link::new(10_000_000.0, 0.005)
    }

    #[test]
    fn clean_link_delivers_every_beat() {
        let mut hb = HeartbeatLink::new(lan(), FaultSpec::none(), 1.0);
        let arrivals = hb.beats_until(10.0);
        assert_eq!(arrivals.len(), 11); // beats at 0,1,..,10
        for (i, &at) in arrivals.iter().enumerate() {
            assert!((at - (i as f64 + 0.005 + 64.0 * 8.0 / 10_000_000.0)).abs() < 1e-9 + 1.0);
            assert!(at >= i as f64);
        }
    }

    #[test]
    fn outage_window_silences_the_shard() {
        // A stalled shard: no beat lands inside [3, 7).
        let spec = FaultSpec::none().with_outage(3.0, 7.0);
        let mut hb = HeartbeatLink::new(lan(), spec, 1.0);
        let arrivals = hb.beats_until(10.0);
        // Beats sent at 3..=6 are eaten; the one sent at 7.0 arrives just
        // after 7.0 (latency), so silence covers exactly [3, 7).
        assert!(arrivals.iter().all(|&t| !(3.0..7.0).contains(&t)));
        // Beats resume after the window: the detector sees recovery.
        assert!(arrivals.iter().any(|&t| t >= 7.0));
    }

    #[test]
    fn beats_are_seed_deterministic() {
        let run = |seed| {
            let mut hb = HeartbeatLink::new(lan(), FaultSpec::lossy(0.3, seed), 0.5);
            hb.beats_until(50.0)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn beats_are_never_retried() {
        // Total loss: every beat vanishes, none is retried into arrival.
        let mut hb = HeartbeatLink::new(lan(), FaultSpec::lossy(1.0, 5), 1.0);
        assert!(hb.beats_until(20.0).is_empty());
        assert_eq!(hb.next_due(), 21.0);
    }
}
