//! The client buffer: an LRU cache of `(component, form)` renditions.

use rcmo_core::ComponentId;
use rcmo_obs::{Counter, Gauge, Metrics, Registry};
use std::collections::HashMap;

/// A cache key: one rendition of one component.
pub type Rendition = (ComponentId, usize);

/// Cache statistics: a typed view over the buffer's metrics registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferStats {
    /// Lookups that found the rendition resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Renditions evicted to make room.
    pub evictions: u64,
}

impl BufferStats {
    /// Reads the buffer counters out of a metrics registry.
    pub fn from_registry(obs: &Registry) -> Self {
        BufferStats {
            hits: obs.read_counter("netsim.buffer.hit.count"),
            misses: obs.read_counter("netsim.buffer.miss.count"),
            evictions: obs.read_counter("netsim.buffer.eviction.count"),
        }
    }
}

/// A byte-budgeted LRU buffer ("using the user's buffer as a cache").
///
/// Cloning shares the metric cells: a clone keeps counting into the same
/// registry as the original.
#[derive(Debug, Clone)]
pub struct ClientBuffer {
    capacity: u64,
    used: u64,
    resident: HashMap<Rendition, (u64, u64)>, // size, last-touch tick
    tick: u64,
    obs: Registry,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    used_bytes: Gauge,
}

impl ClientBuffer {
    /// A buffer of `capacity` bytes, reporting into the global registry.
    pub fn new(capacity: u64) -> ClientBuffer {
        ClientBuffer::with_registry(capacity, Registry::new())
    }

    /// A buffer of `capacity` bytes reporting into `obs` (typically a
    /// per-session registry).
    pub fn with_registry(capacity: u64, obs: Registry) -> ClientBuffer {
        let hits = obs.counter("netsim.buffer.hit.count");
        let misses = obs.counter("netsim.buffer.miss.count");
        let evictions = obs.counter("netsim.buffer.eviction.count");
        let used_bytes = obs.gauge("netsim.buffer.used.bytes");
        ClientBuffer {
            capacity,
            used: 0,
            resident: HashMap::new(),
            tick: 0,
            obs,
            hits,
            misses,
            evictions,
            used_bytes,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Free bytes.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Statistics so far.
    pub fn stats(&self) -> BufferStats {
        self.metrics()
    }

    /// Looks a rendition up, recording a hit or miss and refreshing LRU
    /// order on hit.
    pub fn lookup(&mut self, r: Rendition) -> bool {
        self.tick += 1;
        match self.resident.get_mut(&r) {
            Some(entry) => {
                entry.1 = self.tick;
                self.hits.inc();
                true
            }
            None => {
                self.misses.inc();
                false
            }
        }
    }

    /// Checks residency without touching statistics or LRU order (used by
    /// prefetch planners).
    pub fn contains(&self, r: Rendition) -> bool {
        self.resident.contains_key(&r)
    }

    /// Inserts a rendition, evicting least-recently-used entries as needed.
    /// Renditions larger than the whole buffer are not cached (returns
    /// `false`). Zero-sized renditions are always resident conceptually and
    /// stored with size 0.
    pub fn insert(&mut self, r: Rendition, size: u64) -> bool {
        if size > self.capacity {
            return false;
        }
        if let Some(old) = self.resident.remove(&r) {
            self.used -= old.0;
        }
        while self.used + size > self.capacity {
            let victim = self
                .resident
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(&k, _)| k)
                .expect("used > 0 implies a resident entry");
            let (vsize, _) = self.resident.remove(&victim).expect("victim resident");
            self.used -= vsize;
            self.evictions.inc();
        }
        self.tick += 1;
        self.resident.insert(r, (size, self.tick));
        self.used += size;
        self.used_bytes.set(self.used as i64);
        true
    }

    /// Number of resident renditions.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// `true` if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Clears the buffer (keeps statistics).
    pub fn clear(&mut self) {
        self.resident.clear();
        self.used = 0;
        self.used_bytes.set(0);
    }
}

impl Metrics for ClientBuffer {
    type View = BufferStats;

    fn obs(&self) -> &Registry {
        &self.obs
    }

    fn metrics(&self) -> BufferStats {
        BufferStats::from_registry(&self.obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(c: u32, f: usize) -> Rendition {
        (ComponentId(c), f)
    }

    #[test]
    fn insert_lookup_hit_miss() {
        let mut buf = ClientBuffer::new(1000);
        assert!(!buf.lookup(r(1, 0)));
        assert!(buf.insert(r(1, 0), 400));
        assert!(buf.lookup(r(1, 0)));
        let s = buf.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(buf.used(), 400);
        assert_eq!(buf.free(), 600);
    }

    #[test]
    fn lru_eviction_order() {
        let mut buf = ClientBuffer::new(1000);
        buf.insert(r(1, 0), 400);
        buf.insert(r(2, 0), 400);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(buf.lookup(r(1, 0)));
        buf.insert(r(3, 0), 400);
        assert!(buf.contains(r(1, 0)));
        assert!(!buf.contains(r(2, 0)));
        assert!(buf.contains(r(3, 0)));
        assert_eq!(buf.stats().evictions, 1);
    }

    #[test]
    fn oversized_rendition_rejected() {
        let mut buf = ClientBuffer::new(100);
        assert!(!buf.insert(r(1, 0), 101));
        assert!(buf.insert(r(1, 0), 100));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn reinsert_replaces_size() {
        let mut buf = ClientBuffer::new(1000);
        buf.insert(r(1, 0), 800);
        buf.insert(r(1, 0), 100);
        assert_eq!(buf.used(), 100);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn zero_size_and_clear() {
        let mut buf = ClientBuffer::new(10);
        assert!(buf.insert(r(1, 0), 0));
        assert!(buf.contains(r(1, 0)));
        assert_eq!(buf.used(), 0);
        buf.clear();
        assert!(buf.is_empty());
    }
}
