//! # rcmo-netsim — virtual-time network and client-buffer simulation
//!
//! The paper's Section 4.4 names the two resources that throttle dynamic
//! multimedia presentation — "(i) communication bandwidth limitations, and
//! (ii) limited client buffer size" — and proposes preference-based
//! pre-fetching ("we download components most likely to be requested by the
//! user, using the user's buffer as a cache"). This crate provides the
//! deterministic test bench for that claim:
//!
//! * [`link`] — a bandwidth/latency link in virtual time;
//! * [`buffer`] — an LRU client buffer keyed by `(component, form)`;
//! * [`policy`] — prefetch policies: none, random, smallest-first, and the
//!   CP-net preference-based planner from `rcmo-core`;
//! * [`session`] — a simulated viewing session: a viewer whose clicks are
//!   drawn from the document's own preference structure (plus noise)
//!   browses the document over a constrained link; the harness measures
//!   hit rates, response times, and wasted prefetch bytes per policy;
//! * [`fault`] — deterministic fault injection (packet loss, latency
//!   jitter, outage windows) with bounded retry/backoff and graceful
//!   degradation to the coarse `LIC1` layer (the object's *real* header
//!   ladder when plumbed through, a documented fixed-fraction fallback
//!   otherwise);
//! * [`estimator`] — per-client EWMA bandwidth estimation over observed
//!   transfer times, virtual-clock driven so the chaos simulator can
//!   exercise it deterministically — the signal the server's adaptive
//!   [`DeliveryPolicy`](../rcmo_server) chooses layer depths from;
//! * [`heartbeat`] — fire-and-forget heartbeat streams over a faulty
//!   shard control link, the raw signal the cluster's failure detector
//!   consumes (a [`FaultSpec`] outage models a stalled or partitioned
//!   shard).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod estimator;
pub mod fault;
pub mod heartbeat;
pub mod link;
pub mod policy;
pub mod session;

pub use buffer::ClientBuffer;
pub use estimator::BandwidthEstimator;
pub use fault::{
    degraded_bytes, degraded_bytes_with_ladder, FaultSpec, FaultyLink, RetryPolicy, TransferOutcome,
};
pub use heartbeat::HeartbeatLink;
pub use link::{Link, LinkError, MIN_BANDWIDTH_BPS};
pub use policy::{PolicyKind, PrefetchPolicy};
pub use session::{simulate_session, SessionConfig, SessionStats};
