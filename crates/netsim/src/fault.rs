//! Fault injection and recovery for links in virtual time.
//!
//! The paper's interaction server assumes a perfect network; this module
//! supplies the failure model the reproduction needs before any scaling
//! work is trustworthy. A [`FaultSpec`] deterministically injects packet
//! loss, latency jitter, and timed outage windows into a [`Link`]; a
//! [`RetryPolicy`] bounds how hard a transfer tries (exponential backoff
//! with a cap, per-attempt timeout), all charged in *virtual* seconds; and
//! [`FaultyLink::transfer`] reports exactly what happened so sessions can
//! degrade gracefully (fall back to a coarser `LIC1` layer) instead of
//! failing the request.

use crate::link::Link;
use rand::prelude::*;

/// Deterministic fault model for a link. All randomness is drawn from the
/// seeded stream owned by [`FaultyLink`], so two runs with equal seeds see
/// identical loss/jitter patterns.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Probability, per attempt, that the transfer is lost in flight and
    /// the sender waits out its per-attempt timeout. `0.0` = perfect pipe.
    pub loss: f64,
    /// Latency jitter amplitude as a fraction of the link latency: each
    /// attempt's latency is scaled by a uniform draw from
    /// `[1 − jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Hard outage windows `[start, end)` in virtual seconds. Attempts
    /// started inside a window always fail.
    pub outages: Vec<(f64, f64)>,
    /// Seed for the fault stream (independent of the session seed).
    pub seed: u64,
}

impl FaultSpec {
    /// A perfect network: no loss, no jitter, no outages.
    pub fn none() -> FaultSpec {
        FaultSpec {
            loss: 0.0,
            jitter: 0.0,
            outages: Vec::new(),
            seed: 0,
        }
    }

    /// Uniform packet loss with the given per-attempt probability.
    pub fn lossy(loss: f64, seed: u64) -> FaultSpec {
        FaultSpec {
            loss: loss.clamp(0.0, 1.0),
            jitter: 0.0,
            outages: Vec::new(),
            seed,
        }
    }

    /// Adds an outage window `[start, end)` in virtual seconds.
    pub fn with_outage(mut self, start: f64, end: f64) -> FaultSpec {
        assert!(start < end, "outage window must be non-empty");
        self.outages.push((start, end));
        self
    }

    /// Adds latency jitter of amplitude `jitter` (fraction of latency).
    pub fn with_jitter(mut self, jitter: f64) -> FaultSpec {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// `true` if virtual time `t` falls inside an outage window.
    pub fn in_outage(&self, t: f64) -> bool {
        self.outages.iter().any(|&(s, e)| t >= s && t < e)
    }
}

impl Default for FaultSpec {
    fn default() -> FaultSpec {
        FaultSpec::none()
    }
}

/// Bounded-retry policy, charged in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (total attempts = `1 + max_retries`).
    pub max_retries: u32,
    /// Backoff before retry `i` is `base_backoff_s · 2^i`, capped below.
    pub base_backoff_s: f64,
    /// Upper bound on any single backoff interval.
    pub backoff_cap_s: f64,
    /// Virtual seconds a sender waits on a lost attempt before declaring it
    /// dead. Must cover the slowest honest transfer the caller issues.
    pub attempt_timeout_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            base_backoff_s: 0.25,
            backoff_cap_s: 4.0,
            attempt_timeout_s: 20.0,
        }
    }
}

impl RetryPolicy {
    /// The backoff charged before retry number `retry` (0-based).
    pub fn backoff_secs(&self, retry: u32) -> f64 {
        let exp = self.base_backoff_s * 2f64.powi(retry.min(20) as i32);
        exp.min(self.backoff_cap_s)
    }

    /// Worst-case virtual seconds one transfer can burn before giving up.
    pub fn worst_case_secs(&self) -> f64 {
        let timeouts = (1 + self.max_retries) as f64 * self.attempt_timeout_s;
        let backoffs: f64 = (0..self.max_retries).map(|i| self.backoff_secs(i)).sum();
        timeouts + backoffs
    }
}

/// What one bounded-retry transfer did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransferOutcome {
    /// The payload arrived after `retransmits` failed attempts.
    Delivered {
        /// Total virtual seconds consumed, retries and backoff included.
        elapsed_s: f64,
        /// Attempts that were lost before the one that succeeded.
        retransmits: u32,
    },
    /// Every attempt failed; the transfer gave up.
    TimedOut {
        /// Total virtual seconds consumed by all attempts and backoffs.
        elapsed_s: f64,
        /// Attempts made (= `1 + max_retries`).
        attempts: u32,
    },
}

impl TransferOutcome {
    /// Virtual seconds the transfer consumed, delivered or not.
    pub fn elapsed_s(&self) -> f64 {
        match *self {
            TransferOutcome::Delivered { elapsed_s, .. } => elapsed_s,
            TransferOutcome::TimedOut { elapsed_s, .. } => elapsed_s,
        }
    }

    /// `true` if the payload arrived.
    pub fn delivered(&self) -> bool {
        matches!(self, TransferOutcome::Delivered { .. })
    }
}

/// A [`Link`] with an attached fault model and its own deterministic
/// randomness stream.
#[derive(Debug, Clone)]
pub struct FaultyLink {
    link: Link,
    fault: FaultSpec,
    rng: StdRng,
}

impl FaultyLink {
    /// Wraps `link` with the fault model `fault`.
    pub fn new(link: Link, fault: FaultSpec) -> FaultyLink {
        let rng = StdRng::seed_from_u64(fault.seed ^ 0xFA_17);
        FaultyLink { link, fault, rng }
    }

    /// The underlying perfect link.
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// The fault model.
    pub fn fault(&self) -> &FaultSpec {
        &self.fault
    }

    /// Transfers `bytes` starting at virtual time `now` under `policy`.
    /// Attempts lost to the fault model cost the per-attempt timeout, then
    /// exponential backoff; the outcome carries the total virtual time so
    /// the caller can advance its clock.
    pub fn transfer(&mut self, bytes: u64, now: f64, policy: &RetryPolicy) -> TransferOutcome {
        let attempts = 1 + policy.max_retries;
        let mut elapsed = 0.0f64;
        for attempt in 0..attempts {
            let start = now + elapsed;
            let lost = self.fault.in_outage(start)
                || (self.fault.loss > 0.0 && self.rng.gen_bool(self.fault.loss));
            if lost {
                elapsed += policy.attempt_timeout_s;
                if attempt + 1 < attempts {
                    elapsed += policy.backoff_secs(attempt);
                }
                continue;
            }
            let jitter = if self.fault.jitter > 0.0 {
                self.rng
                    .gen_range(1.0 - self.fault.jitter..1.0 + self.fault.jitter)
            } else {
                1.0
            };
            let wire =
                self.link.latency_s * jitter + (bytes as f64 * 8.0) / self.link.bandwidth_bps;
            // An honest transfer slower than the attempt timeout is
            // indistinguishable from loss to the sender.
            if wire > policy.attempt_timeout_s {
                elapsed += policy.attempt_timeout_s;
                if attempt + 1 < attempts {
                    elapsed += policy.backoff_secs(attempt);
                }
                continue;
            }
            elapsed += wire;
            return TransferOutcome::Delivered {
                elapsed_s: elapsed,
                retransmits: attempt,
            };
        }
        TransferOutcome::TimedOut {
            elapsed_s: elapsed,
            attempts,
        }
    }
}

/// **Fallback only**: the fraction of a rendition's bytes assumed for the
/// coarse `LIC1` base layer *when no codec header is available* — a
/// rendition with no layered stream behind it (inline payloads, the netsim
/// doc fixtures) still degrades to something. The real degradation path
/// uses the object's actual header ladder via
/// [`degraded_bytes_with_ladder`]; every bandwidth number derived from
/// this constant on an object that *has* a decodable header is fiction,
/// which is exactly the bug the adaptive-delivery tier fixed.
pub const DEGRADED_FRACTION: f64 = 0.2;

/// The **fallback** byte cost of the degraded (base-layer) rendition of a
/// `bytes`-sized transfer — at least one byte so the transfer is still
/// exercised. Used only when the object's layered header is unknown;
/// prefer [`degraded_bytes_with_ladder`] whenever the `LIC1` header (its
/// `layer_prefixes` ladder) has been plumbed through.
pub fn degraded_bytes(bytes: u64) -> u64 {
    ((bytes as f64 * DEGRADED_FRACTION) as u64).max(1)
}

/// The byte cost of the degraded (base-layer) rendition, from the object's
/// **real** codec header when one is available.
///
/// `ladder` is the `LIC1` byte ladder
/// (`rcmo_codec::LayeredHeader::layer_prefixes`): element `i` is the
/// prefix length decoding `i + 1` layers. The degraded transfer is the
/// first rung — the stream header plus the base layer — clamped to
/// `[1, bytes]` (a ladder can never make degradation *larger* than the
/// full rendition it degrades). With no ladder (`None` or empty: no
/// decodable header) this falls back to the documented
/// [`DEGRADED_FRACTION`] guess.
pub fn degraded_bytes_with_ladder(bytes: u64, ladder: Option<&[u64]>) -> u64 {
    match ladder.and_then(|l| l.first()) {
        Some(&base) => base.clamp(1, bytes.max(1)),
        None => degraded_bytes(bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dsl() -> Link {
        Link::new(1_000_000.0, 0.04)
    }

    #[test]
    fn perfect_fault_matches_plain_link() {
        let mut fl = FaultyLink::new(dsl(), FaultSpec::none());
        let policy = RetryPolicy::default();
        let out = fl.transfer(125_000, 0.0, &policy);
        match out {
            TransferOutcome::Delivered {
                elapsed_s,
                retransmits,
            } => {
                assert_eq!(retransmits, 0);
                assert!((elapsed_s - dsl().transfer_secs(125_000)).abs() < 1e-12);
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn transfers_are_seed_deterministic() {
        let spec = FaultSpec::lossy(0.3, 99).with_jitter(0.2);
        let run = || {
            let mut fl = FaultyLink::new(dsl(), spec.clone());
            let policy = RetryPolicy::default();
            (0..50)
                .map(|i| fl.transfer(10_000 + i * 100, i as f64, &policy))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn outage_window_fails_attempts_inside_it() {
        // Outage covers the first attempt and every retry the backoff can
        // reach, so the transfer must time out.
        let policy = RetryPolicy::default();
        let spec = FaultSpec::none().with_outage(0.0, policy.worst_case_secs() + 1.0);
        let mut fl = FaultyLink::new(dsl(), spec.clone());
        let out = fl.transfer(1_000, 0.0, &policy);
        assert!(!out.delivered());
        assert!(out.elapsed_s() <= policy.worst_case_secs() + 1e-9);
        // Starting after the window, the same link delivers instantly.
        let mut fl = FaultyLink::new(dsl(), spec);
        let after = policy.worst_case_secs() + 2.0;
        assert!(fl.transfer(1_000, after, &policy).delivered());
    }

    #[test]
    fn retries_recover_from_loss() {
        // 50% loss: over many transfers, most deliver (p(fail all 5) ≈ 3%)
        // and some record retransmits.
        let mut fl = FaultyLink::new(dsl(), FaultSpec::lossy(0.5, 7));
        let policy = RetryPolicy::default();
        let outcomes: Vec<_> = (0..200)
            .map(|i| fl.transfer(5_000, i as f64 * 60.0, &policy))
            .collect();
        let delivered = outcomes.iter().filter(|o| o.delivered()).count();
        assert!(delivered > 150, "only {delivered}/200 delivered");
        let retransmits: u32 = outcomes
            .iter()
            .map(|o| match o {
                TransferOutcome::Delivered { retransmits, .. } => *retransmits,
                _ => 0,
            })
            .sum();
        assert!(retransmits > 50, "retransmits {retransmits}");
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let policy = RetryPolicy {
            max_retries: 8,
            base_backoff_s: 0.5,
            backoff_cap_s: 3.0,
            attempt_timeout_s: 10.0,
        };
        assert_eq!(policy.backoff_secs(0), 0.5);
        assert_eq!(policy.backoff_secs(1), 1.0);
        assert_eq!(policy.backoff_secs(2), 2.0);
        assert_eq!(policy.backoff_secs(3), 3.0); // capped
        assert_eq!(policy.backoff_secs(7), 3.0);
    }

    #[test]
    fn total_loss_times_out_with_bounded_cost() {
        let mut fl = FaultyLink::new(dsl(), FaultSpec::lossy(1.0, 3));
        let policy = RetryPolicy::default();
        let out = fl.transfer(1_000, 0.0, &policy);
        match out {
            TransferOutcome::TimedOut {
                elapsed_s,
                attempts,
            } => {
                assert_eq!(attempts, 1 + policy.max_retries);
                assert!((elapsed_s - policy.worst_case_secs()).abs() < 1e-9);
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn jitter_stays_within_band() {
        let spec = FaultSpec {
            loss: 0.0,
            jitter: 0.5,
            outages: vec![],
            seed: 11,
        };
        let mut fl = FaultyLink::new(dsl(), spec);
        let policy = RetryPolicy::default();
        let base = dsl();
        for i in 0..200 {
            let out = fl.transfer(0, i as f64, &policy);
            let e = out.elapsed_s();
            assert!(out.delivered());
            assert!(e >= base.latency_s * 0.5 - 1e-12 && e <= base.latency_s * 1.5 + 1e-12);
        }
    }

    #[test]
    fn degraded_bytes_are_a_small_fraction_only_as_fallback() {
        assert_eq!(degraded_bytes(100_000), 20_000);
        assert_eq!(degraded_bytes(1), 1);
        assert!(degraded_bytes(0) >= 1);
        // With no ladder the ladder-aware form is the same fallback.
        assert_eq!(degraded_bytes_with_ladder(100_000, None), 20_000);
        assert_eq!(degraded_bytes_with_ladder(100_000, Some(&[])), 20_000);
    }

    #[test]
    fn degraded_bytes_use_the_real_base_layer_when_plumbed() {
        // A real LIC1 ladder: base layer is whatever the header says it
        // is, not a fifth of the stream.
        let ladder = [1_741u64, 9_004, 100_000];
        assert_eq!(degraded_bytes_with_ladder(100_000, Some(&ladder)), 1_741);
        // The base layer can never exceed the rendition it degrades.
        assert_eq!(degraded_bytes_with_ladder(500, Some(&ladder)), 500);
        // …and is at least one byte so the transfer is still exercised.
        assert_eq!(degraded_bytes_with_ladder(0, Some(&[0])), 1);
    }
}
