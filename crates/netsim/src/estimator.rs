//! Per-client bandwidth estimation from observed transfers.
//!
//! The adaptive-delivery tier (server `DeliveryPolicy`) needs to know how
//! fast each client's link currently is. Nothing measures that directly —
//! the server only sees *transfers*: `bytes` delivered in `elapsed`
//! seconds of virtual (or wall) time. The estimator folds those samples
//! into an exponentially weighted moving average of goodput:
//!
//! ```text
//! sample_bps = bytes * 8 / elapsed
//! estimate  ← alpha * sample_bps + (1 - alpha) * estimate
//! ```
//!
//! Everything is driven by caller-provided timestamps — there is no
//! `Instant::now()` in here — so rcmo-sim can exercise the estimator on
//! its virtual clock and a seeded run reproduces the same estimates
//! bit-for-bit.
//!
//! The estimator is deliberately pessimistic on staleness: if no sample
//! has arrived for [`BandwidthEstimator::STALE_AFTER_S`], the estimate
//! *decays* toward zero with the silence (half the estimate per stale
//! interval) — a link that went quiet after an outage should not keep its
//! pre-outage reputation forever, but a recovering client also should not
//! need many samples to climb back (EWMA with a healthy `alpha` recovers
//! in a handful of observations).

/// EWMA bandwidth estimator over observed transfer times. One instance
/// per (room, client); see the server's delivery module for the wiring.
#[derive(Debug, Clone)]
pub struct BandwidthEstimator {
    alpha: f64,
    estimate_bps: Option<f64>,
    samples: u64,
    last_sample_s: f64,
}

impl Default for BandwidthEstimator {
    fn default() -> Self {
        BandwidthEstimator::new(Self::DEFAULT_ALPHA)
    }
}

impl BandwidthEstimator {
    /// Default smoothing factor: heavy enough that a few samples move the
    /// estimate decisively (a modem viewer recovering onto a LAN should
    /// reach full depth within a handful of transfers), light enough that
    /// one jittery sample does not whipsaw the chosen layer depth.
    pub const DEFAULT_ALPHA: f64 = 0.4;

    /// Seconds of silence after which the estimate starts decaying: per
    /// elapsed multiple of this interval the estimate halves.
    pub const STALE_AFTER_S: f64 = 60.0;

    /// Creates an estimator with smoothing factor `alpha` (clamped into
    /// `(0, 1]`).
    pub fn new(alpha: f64) -> BandwidthEstimator {
        BandwidthEstimator {
            alpha: if alpha > 0.0 {
                alpha.min(1.0)
            } else {
                Self::DEFAULT_ALPHA
            },
            estimate_bps: None,
            samples: 0,
            last_sample_s: 0.0,
        }
    }

    /// Folds one observed transfer into the estimate: `bytes` delivered in
    /// `elapsed_s` seconds, observed at `now_s` on the caller's clock
    /// (virtual seconds in the simulator). Zero-byte or non-positive
    /// duration samples are ignored — they carry no goodput information
    /// (a zero-byte transfer's time is pure latency).
    pub fn observe(&mut self, bytes: u64, elapsed_s: f64, now_s: f64) {
        if bytes == 0 || elapsed_s.is_nan() || elapsed_s <= 0.0 {
            return;
        }
        let sample = (bytes as f64 * 8.0) / elapsed_s;
        let decayed = self.estimate_at(now_s);
        self.estimate_bps = Some(match decayed {
            None => sample,
            Some(prev) => self.alpha * sample + (1.0 - self.alpha) * prev,
        });
        self.samples += 1;
        self.last_sample_s = now_s;
    }

    /// The current estimate in bits/s as of `now_s`, staleness-decayed:
    /// every [`Self::STALE_AFTER_S`] of silence past the last sample
    /// halves it. `None` until the first sample.
    pub fn estimate_at(&self, now_s: f64) -> Option<f64> {
        let est = self.estimate_bps?;
        let silence = (now_s - self.last_sample_s).max(0.0);
        if silence <= Self::STALE_AFTER_S {
            return Some(est);
        }
        let halvings = silence / Self::STALE_AFTER_S;
        Some(est * 0.5f64.powf(halvings))
    }

    /// The raw (undecayed) estimate in bits/s; `None` until the first
    /// sample.
    pub fn estimate_bps(&self) -> Option<f64> {
        self.estimate_bps
    }

    /// Number of samples folded in so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;

    #[test]
    fn first_sample_seeds_the_estimate() {
        let mut est = BandwidthEstimator::default();
        assert_eq!(est.estimate_bps(), None);
        // 125 000 bytes in 1 s = 1 Mbit/s.
        est.observe(125_000, 1.0, 0.0);
        assert!((est.estimate_bps().unwrap() - 1_000_000.0).abs() < 1e-6);
        assert_eq!(est.samples(), 1);
    }

    #[test]
    fn ewma_converges_toward_the_true_rate() {
        let mut est = BandwidthEstimator::new(0.4);
        // Start on a modem…
        est.observe(7_000, 1.0, 0.0); // 56 kbit/s
                                      // …then recover onto a LAN: a handful of samples must carry the
                                      // estimate most of the way (this is what lets a clinic viewer
                                      // reach full depth soon after their outage clears).
        for i in 1..=8 {
            est.observe(1_250_000, 1.0, i as f64);
        }
        let e = est.estimate_at(8.0).unwrap();
        assert!(e > 9_000_000.0, "estimate {e} still stuck near the modem");
    }

    #[test]
    fn stale_estimates_decay_instead_of_lingering() {
        let mut est = BandwidthEstimator::default();
        est.observe(1_250_000, 1.0, 0.0); // 10 Mbit/s
        let fresh = est.estimate_at(10.0).unwrap();
        assert!((fresh - 10_000_000.0).abs() < 1.0);
        // Two stale intervals of silence → quartered.
        let stale = est
            .estimate_at(2.0 * BandwidthEstimator::STALE_AFTER_S)
            .unwrap();
        assert!((stale - 2_500_000.0).abs() < 1.0);
        // A fresh sample re-anchors from the decayed value, not the stale
        // pre-silence one.
        est.observe(1_250_000, 1.0, 2.0 * BandwidthEstimator::STALE_AFTER_S);
        assert!(est.estimate_bps().unwrap() < 10_000_000.0);
    }

    #[test]
    fn uninformative_samples_are_ignored() {
        let mut est = BandwidthEstimator::default();
        est.observe(0, 1.0, 0.0);
        est.observe(100, 0.0, 0.0);
        est.observe(100, -1.0, 0.0);
        assert_eq!(est.estimate_bps(), None);
        assert_eq!(est.samples(), 0);
    }

    #[test]
    fn estimates_track_link_transfers_deterministically() {
        // Feeding the estimator the exact transfer times a Link computes
        // converges on that link's goodput (below nominal bandwidth — the
        // latency term is part of what the client actually experiences).
        let link = Link::new(56_000.0, 0.15);
        let mut est = BandwidthEstimator::default();
        let mut now = 0.0;
        for _ in 0..20 {
            let t = link.transfer_secs(1_500);
            est.observe(1_500, t, now);
            now += t;
        }
        let e = est.estimate_at(now).unwrap();
        assert!(e < 56_000.0, "goodput {e} cannot beat the wire");
        assert!(e > 25_000.0, "goodput {e} implausibly low for 56k");
        // Same feed, same numbers: determinism the simulator depends on.
        let mut est2 = BandwidthEstimator::default();
        let mut now2 = 0.0;
        for _ in 0..20 {
            let t = link.transfer_secs(1_500);
            est2.observe(1_500, t, now2);
            now2 += t;
        }
        assert_eq!(est.estimate_bps(), est2.estimate_bps());
    }
}
