//! The simulated viewing session: the experiment harness behind the
//! paper's Section 4.4 performance discussion.
//!
//! A synthetic viewer browses a document over a constrained [`Link`]: at
//! each step she dwells for a while (idle time the prefetcher exploits),
//! then requests one `(component, form)` rendition. Requests are drawn from
//! the document's own preference structure — the premise of preference-based
//! prefetching is precisely that the author's CP-net predicts viewer
//! interest — mixed with uniform noise (an `epsilon`-fraction of clicks
//! ignores the preferences entirely). Each request that misses the buffer
//! pays the link transfer; hits are instant. The harness reports hit rate,
//! mean/max response time, and byte accounting including *wasted* prefetch.

use crate::buffer::{ClientBuffer, Rendition};
use crate::link::Link;
use crate::policy::{PolicyKind, PrefetchPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcmo_core::{
    ComponentId, FormKind, MultimediaDocument, PartialAssignment, PrefetchConfig,
    PrefetchPlanner, PreferenceNet, Value,
};
use std::collections::HashSet;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Number of viewer requests.
    pub steps: usize,
    /// Client buffer capacity in bytes.
    pub buffer_bytes: u64,
    /// The network link.
    pub link: Link,
    /// The prefetch policy.
    pub policy: PolicyKind,
    /// Mean dwell (idle) time between requests, seconds.
    pub dwell_secs: f64,
    /// Fraction of requests drawn uniformly instead of preference-guided.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
    /// Optional §4.4 tuning variable: when set, the session pins it to the
    /// band the link falls into (`Link::band` with `bandwidth_thresholds`),
    /// so a bandwidth-conditioned CP-net serves cheaper renditions on slow
    /// links.
    pub bandwidth_tuning: Option<rcmo_core::VarId>,
    /// Descending bits/s thresholds for `bandwidth_tuning`.
    pub bandwidth_thresholds: Vec<f64>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            steps: 60,
            buffer_bytes: 512 * 1024,
            link: Link::new(1_000_000.0, 0.04),
            policy: PolicyKind::PreferenceBased,
            dwell_secs: 2.0,
            epsilon: 0.2,
            seed: 0x5e55,
            bandwidth_tuning: None,
            bandwidth_thresholds: vec![],
        }
    }
}

/// The measured outcome of one session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStats {
    /// The policy measured.
    pub policy: PolicyKind,
    /// Requests issued.
    pub requests: usize,
    /// Requests served from the buffer.
    pub hits: usize,
    /// Mean response time per request in seconds.
    pub mean_response_secs: f64,
    /// Worst response time in seconds.
    pub max_response_secs: f64,
    /// Bytes transferred on demand (misses).
    pub demand_bytes: u64,
    /// Bytes transferred by the prefetcher.
    pub prefetch_bytes: u64,
    /// Prefetched bytes never requested before session end.
    pub wasted_prefetch_bytes: u64,
}

impl SessionStats {
    /// Buffer hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

/// Samples the viewer's next request: with probability `1 − ε` a rendition
/// weighted by the preference scores under the current evidence, otherwise
/// uniform over all non-hidden renditions.
fn sample_request(
    doc: &MultimediaDocument,
    evidence: &PartialAssignment,
    planner: &PrefetchPlanner,
    seen: &HashSet<Rendition>,
    epsilon: f64,
    rng: &mut StdRng,
) -> Option<(Rendition, u64)> {
    let uniform: Vec<(Rendition, u64)> = {
        let mut v = Vec::new();
        for i in 0..doc.num_components() {
            let c = ComponentId(i as u32);
            let forms = doc.forms(c).ok()?;
            for (f, form) in forms.iter().enumerate() {
                if form.kind != FormKind::Hidden && form.cost_bytes > 0 {
                    v.push(((c, f), form.cost_bytes));
                }
            }
        }
        v
    };
    if uniform.is_empty() {
        return None;
    }
    if rng.gen_bool(epsilon.clamp(0.0, 1.0)) {
        return Some(uniform[rng.gen_range(0..uniform.len())]);
    }
    let scores = planner.scores(doc, evidence).ok()?;
    let scored: Vec<(Rendition, u64, f64)> = scores
        .iter()
        .filter(|s| s.cost_bytes > 0)
        .map(|s| ((s.component, s.form), s.cost_bytes, s.score))
        .collect();
    if scored.is_empty() {
        return Some(uniform[rng.gen_range(0..uniform.len())]);
    }
    // A browsing viewer dwells on *new* content: preference-guided clicks
    // go to renditions not yet examined; re-examination happens only
    // through the epsilon-uniform branch (or once everything was seen).
    let unseen: Vec<(Rendition, u64, f64)> = scored
        .iter()
        .filter(|(r, _, _)| !seen.contains(r))
        .cloned()
        .collect();
    let scored = if unseen.is_empty() { scored } else { unseen };
    let total: f64 = scored.iter().map(|(_, _, s)| s).sum();
    let mut pick = rng.gen_range(0.0..total.max(1e-12));
    for (r, size, s) in &scored {
        pick -= s;
        if pick <= 0.0 {
            return Some((*r, *size));
        }
    }
    let last = scored.last().expect("nonempty");
    Some((last.0, last.1))
}

/// Runs one simulated session and returns its statistics.
pub fn simulate_session(doc: &MultimediaDocument, cfg: &SessionConfig) -> SessionStats {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut buffer = ClientBuffer::new(cfg.buffer_bytes);
    let mut policy = PrefetchPolicy::new(cfg.policy, cfg.seed ^ 0xF00D);
    let planner = PrefetchPlanner::new(PrefetchConfig::default());
    let mut evidence = PartialAssignment::empty(doc.net().len());
    if let Some(tuning) = cfg.bandwidth_tuning {
        let band = cfg.link.band(&cfg.bandwidth_thresholds);
        let band = band.min(doc.net().domain_size(tuning) - 1);
        evidence.set(tuning, Value(band as u16));
    }
    let mut prefetched: HashSet<Rendition> = HashSet::new();
    let mut requested: HashSet<Rendition> = HashSet::new();

    let mut stats = SessionStats {
        policy: cfg.policy,
        requests: 0,
        hits: 0,
        mean_response_secs: 0.0,
        max_response_secs: 0.0,
        demand_bytes: 0,
        prefetch_bytes: 0,
        wasted_prefetch_bytes: 0,
    };
    let mut total_response = 0.0f64;

    for _ in 0..cfg.steps {
        // Idle dwell: the prefetcher may move bytes in the background.
        let dwell = cfg.dwell_secs * rng.gen_range(0.5..1.5);
        let mut budget = cfg.link.bytes_within(dwell);
        for (r, size) in policy.candidates(doc, &evidence, &buffer) {
            if size > budget {
                break;
            }
            if buffer.insert(r, size) {
                budget -= size;
                stats.prefetch_bytes += size;
                prefetched.insert(r);
            }
        }
        // The viewer clicks.
        let Some((rendition, size)) =
            sample_request(doc, &evidence, &planner, &requested, cfg.epsilon, &mut rng)
        else {
            break;
        };
        stats.requests += 1;
        requested.insert(rendition);
        let response = if buffer.lookup(rendition) {
            0.0
        } else {
            stats.demand_bytes += size;
            buffer.insert(rendition, size);
            cfg.link.transfer_secs(size)
        };
        if response == 0.0 {
            stats.hits += 1;
        }
        total_response += response;
        stats.max_response_secs = stats.max_response_secs.max(response);
        // The click is evidence for the presentation engine (and thus for
        // subsequent prefetch planning).
        evidence.set(rendition.0.var(), Value(rendition.1 as u16));
    }
    stats.mean_response_secs = if stats.requests == 0 {
        0.0
    } else {
        total_response / stats.requests as f64
    };
    stats.wasted_prefetch_bytes = prefetched
        .difference(&requested)
        .map(|r| doc.forms(r.0).map(|f| f[r.1].cost_bytes).unwrap_or(0))
        .sum();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcmo_core::{MediaRef, PresentationForm};

    /// A record with enough structure for preferences to matter: several
    /// images with flat/icon forms, author prefers a specific subset shown.
    fn study_doc() -> MultimediaDocument {
        let mut doc = MultimediaDocument::new("record");
        let images = doc.add_composite(doc.root(), "Images").unwrap();
        for i in 0..16 {
            let cost = 60_000 + 20_000 * (i as u64 % 4);
            doc.add_primitive(
                images,
                &format!("img{i}"),
                MediaRef::None,
                vec![
                    PresentationForm::new("flat", FormKind::Flat, cost),
                    PresentationForm::new("icon", FormKind::Icon, 3_000),
                    PresentationForm::hidden(),
                ],
            )
            .unwrap();
        }
        doc.validate().unwrap();
        doc
    }

    #[test]
    fn preference_beats_no_prefetch() {
        let doc = study_doc();
        let base = SessionConfig {
            steps: 30,
            buffer_bytes: 300_000,
            ..SessionConfig::default()
        };
        let none = simulate_session(
            &doc,
            &SessionConfig { policy: PolicyKind::None, ..base.clone() },
        );
        let pref = simulate_session(
            &doc,
            &SessionConfig { policy: PolicyKind::PreferenceBased, ..base },
        );
        assert!(
            pref.hit_rate() > none.hit_rate() + 0.2,
            "preference {:.2} vs none {:.2}",
            pref.hit_rate(),
            none.hit_rate()
        );
        assert!(pref.mean_response_secs < none.mean_response_secs);
    }

    #[test]
    fn no_prefetch_still_caches_repeats() {
        let doc = study_doc();
        let stats = simulate_session(
            &doc,
            &SessionConfig {
                policy: PolicyKind::None,
                steps: 100,
                buffer_bytes: 4_000_000, // everything fits after first touch
                ..SessionConfig::default()
            },
        );
        assert!(stats.prefetch_bytes == 0);
        assert!(stats.hit_rate() > 0.4, "repeat clicks hit: {:.2}", stats.hit_rate());
    }

    #[test]
    fn bigger_buffers_do_not_hurt() {
        let doc = study_doc();
        let run = |buffer_bytes: u64| {
            simulate_session(
                &doc,
                &SessionConfig {
                    buffer_bytes,
                    policy: PolicyKind::PreferenceBased,
                    ..SessionConfig::default()
                },
            )
            .hit_rate()
        };
        let small = run(80_000);
        let large = run(2_000_000);
        assert!(large >= small, "small {small:.2} large {large:.2}");
    }

    #[test]
    fn faster_links_reduce_response_times() {
        let doc = study_doc();
        let run = |link: Link| {
            simulate_session(
                &doc,
                &SessionConfig {
                    link,
                    policy: PolicyKind::None,
                    ..SessionConfig::default()
                },
            )
            .mean_response_secs
        };
        let slow = run(Link::new(56_000.0, 0.15));
        let fast = run(Link::new(10_000_000.0, 0.005));
        assert!(slow > fast * 5.0, "slow {slow:.3}s fast {fast:.3}s");
    }

    #[test]
    fn sessions_are_deterministic() {
        let doc = study_doc();
        let cfg = SessionConfig::default();
        assert_eq!(simulate_session(&doc, &cfg), simulate_session(&doc, &cfg));
        let other = SessionConfig { seed: 1, ..cfg };
        // Different seed, same machinery (not necessarily different stats,
        // but the run must complete).
        let _ = simulate_session(&doc, &other);
    }

    #[test]
    fn bandwidth_tuning_reduces_transfer_on_slow_links() {
        // A document whose expensive components are auto-conditioned on a
        // bandwidth tuning variable serves cheaper renditions on a modem.
        let mut doc = study_doc();
        let bw = doc
            .add_tuning_variable("bandwidth", &["high", "low"])
            .unwrap();
        let touched = doc.auto_condition_on_tuning(bw, 10_000).unwrap();
        assert!(!touched.is_empty());
        doc.validate().unwrap();
        let run = |link: Link| {
            simulate_session(
                &doc,
                &SessionConfig {
                    // Short session: with 16 icons available, every
                    // low-band click stays cheap.
                    steps: 12,
                    policy: PolicyKind::None,
                    link,
                    epsilon: 0.0, // fully preference-driven clicks
                    bandwidth_tuning: Some(bw),
                    bandwidth_thresholds: vec![500_000.0],
                    ..SessionConfig::default()
                },
            )
        };
        let slow = run(Link::new(56_000.0, 0.15));
        let fast = run(Link::new(10_000_000.0, 0.005));
        // Under the low band the preferred (and thus requested) renditions
        // are the cheap ones, so far fewer demand bytes move.
        assert!(
            slow.demand_bytes * 3 < fast.demand_bytes,
            "slow {} vs fast {}",
            slow.demand_bytes,
            fast.demand_bytes
        );
    }

    #[test]
    fn byte_accounting_is_consistent() {
        let doc = study_doc();
        for kind in PolicyKind::ALL {
            let stats = simulate_session(
                &doc,
                &SessionConfig { policy: kind, ..SessionConfig::default() },
            );
            assert_eq!(stats.requests, 60);
            assert!(stats.hits <= stats.requests);
            assert!(stats.wasted_prefetch_bytes <= stats.prefetch_bytes);
            if kind == PolicyKind::None {
                assert_eq!(stats.prefetch_bytes, 0);
            }
            assert!(stats.mean_response_secs <= stats.max_response_secs + 1e-12);
        }
    }
}
