//! The simulated viewing session: the experiment harness behind the
//! paper's Section 4.4 performance discussion.
//!
//! A synthetic viewer browses a document over a constrained [`Link`]: at
//! each step she dwells for a while (idle time the prefetcher exploits),
//! then requests one `(component, form)` rendition. Requests are drawn from
//! the document's own preference structure — the premise of preference-based
//! prefetching is precisely that the author's CP-net predicts viewer
//! interest — mixed with uniform noise (an `epsilon`-fraction of clicks
//! ignores the preferences entirely). Each request that misses the buffer
//! pays the link transfer; hits are instant. The harness reports hit rate,
//! mean/max response time, and byte accounting including *wasted* prefetch.

use crate::buffer::{ClientBuffer, Rendition};
use crate::fault::{
    degraded_bytes_with_ladder, FaultSpec, FaultyLink, RetryPolicy, TransferOutcome,
};
use crate::link::Link;
use crate::policy::{PolicyKind, PrefetchPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcmo_core::{
    ComponentId, FormKind, MultimediaDocument, PartialAssignment, PreferenceNet, PrefetchConfig,
    PrefetchPlanner, Value,
};
use rcmo_obs::{bounds, Registry};
use std::collections::{HashMap, HashSet};

/// Name of the per-session response-time histogram. The unit is *virtual*
/// microseconds (`.vus`): the simulated clock, not wall time.
pub const RESPONSE_HIST: &str = "netsim.session.response.vus";

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Number of viewer requests.
    pub steps: usize,
    /// Client buffer capacity in bytes.
    pub buffer_bytes: u64,
    /// The network link.
    pub link: Link,
    /// The prefetch policy.
    pub policy: PolicyKind,
    /// Mean dwell (idle) time between requests, seconds.
    pub dwell_secs: f64,
    /// Fraction of requests drawn uniformly instead of preference-guided.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
    /// Optional §4.4 tuning variable: when set, the session pins it to the
    /// band the link falls into (`Link::band` with `bandwidth_thresholds`),
    /// so a bandwidth-conditioned CP-net serves cheaper renditions on slow
    /// links.
    pub bandwidth_tuning: Option<rcmo_core::VarId>,
    /// Descending bits/s thresholds for `bandwidth_tuning`.
    pub bandwidth_thresholds: Vec<f64>,
    /// Fault model injected into the link (loss, jitter, outage windows).
    pub fault: FaultSpec,
    /// Bounded-retry policy for demand transfers under faults.
    pub retry: RetryPolicy,
    /// Per-rendition `LIC1` byte ladders
    /// (`rcmo_codec::LayeredHeader::layer_prefixes`): when a rendition
    /// keeps timing out, its degraded fallback transfer is the ladder's
    /// *real* base-layer prefix instead of the
    /// [`crate::fault::DEGRADED_FRACTION`] guess. Renditions without an
    /// entry (no decodable header) keep the documented fallback.
    pub layer_ladders: HashMap<Rendition, Vec<u64>>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            steps: 60,
            buffer_bytes: 512 * 1024,
            link: Link::new(1_000_000.0, 0.04),
            policy: PolicyKind::PreferenceBased,
            dwell_secs: 2.0,
            epsilon: 0.2,
            seed: 0x5e55,
            bandwidth_tuning: None,
            bandwidth_thresholds: vec![],
            fault: FaultSpec::none(),
            retry: RetryPolicy::default(),
            layer_ladders: HashMap::new(),
        }
    }
}

/// The measured outcome of one session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStats {
    /// The policy measured.
    pub policy: PolicyKind,
    /// Requests issued.
    pub requests: usize,
    /// Requests served from the buffer.
    pub hits: usize,
    /// Mean response time per request in seconds.
    pub mean_response_secs: f64,
    /// Worst response time in seconds.
    pub max_response_secs: f64,
    /// Bytes transferred on demand (misses).
    pub demand_bytes: u64,
    /// Bytes transferred by the prefetcher.
    pub prefetch_bytes: u64,
    /// Prefetched bytes never requested before session end.
    pub wasted_prefetch_bytes: u64,
    /// Lost attempts recovered by retransmission.
    pub retransmits: u64,
    /// Transfers that exhausted every retry.
    pub timeouts: u64,
    /// Requests served by falling back to the coarse `LIC1` base layer
    /// after the full rendition kept timing out.
    pub degraded_requests: u64,
}

impl SessionStats {
    /// Buffer hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// Builds the view from a per-session metrics registry. Response times
    /// come out of the [`RESPONSE_HIST`] histogram, whose virtual-µs
    /// resolution keeps `mean <= max` and session determinism intact.
    pub fn from_registry(policy: PolicyKind, obs: &Registry) -> Self {
        let (sum_us, max_us, count) = match obs.read_histogram(RESPONSE_HIST) {
            Some(h) => (h.sum, h.max, h.count),
            None => (0, 0, 0),
        };
        SessionStats {
            policy,
            requests: obs.read_counter("netsim.session.request.count") as usize,
            hits: obs.read_counter("netsim.session.hit.count") as usize,
            mean_response_secs: if count == 0 {
                0.0
            } else {
                sum_us as f64 / 1e6 / count as f64
            },
            max_response_secs: max_us as f64 / 1e6,
            demand_bytes: obs.read_counter("netsim.session.demand.bytes"),
            prefetch_bytes: obs.read_counter("netsim.session.prefetch.bytes"),
            wasted_prefetch_bytes: obs.read_counter("netsim.session.wasted.bytes"),
            retransmits: obs.read_counter("netsim.link.retransmit.count"),
            timeouts: obs.read_counter("netsim.link.timeout.count"),
            degraded_requests: obs.read_counter("netsim.session.degraded.count"),
        }
    }
}

/// Samples the viewer's next request: with probability `1 − ε` a rendition
/// weighted by the preference scores under the current evidence, otherwise
/// uniform over all non-hidden renditions.
fn sample_request(
    doc: &MultimediaDocument,
    evidence: &PartialAssignment,
    planner: &PrefetchPlanner,
    seen: &HashSet<Rendition>,
    epsilon: f64,
    rng: &mut StdRng,
) -> Option<(Rendition, u64)> {
    let uniform: Vec<(Rendition, u64)> = {
        let mut v = Vec::new();
        for i in 0..doc.num_components() {
            let c = ComponentId(i as u32);
            let forms = doc.forms(c).ok()?;
            for (f, form) in forms.iter().enumerate() {
                if form.kind != FormKind::Hidden && form.cost_bytes > 0 {
                    v.push(((c, f), form.cost_bytes));
                }
            }
        }
        v
    };
    if uniform.is_empty() {
        return None;
    }
    if rng.gen_bool(epsilon.clamp(0.0, 1.0)) {
        return Some(uniform[rng.gen_range(0..uniform.len())]);
    }
    let scores = planner.scores(doc, evidence).ok()?;
    let scored: Vec<(Rendition, u64, f64)> = scores
        .iter()
        .filter(|s| s.cost_bytes > 0)
        .map(|s| ((s.component, s.form), s.cost_bytes, s.score))
        .collect();
    if scored.is_empty() {
        return Some(uniform[rng.gen_range(0..uniform.len())]);
    }
    // A browsing viewer dwells on *new* content: preference-guided clicks
    // go to renditions not yet examined; re-examination happens only
    // through the epsilon-uniform branch (or once everything was seen).
    let unseen: Vec<(Rendition, u64, f64)> = scored
        .iter()
        .filter(|(r, _, _)| !seen.contains(r))
        .cloned()
        .collect();
    let scored = if unseen.is_empty() { scored } else { unseen };
    let total: f64 = scored.iter().map(|(_, _, s)| s).sum();
    let mut pick = rng.gen_range(0.0..total.max(1e-12));
    for (r, size, s) in &scored {
        pick -= s;
        if pick <= 0.0 {
            return Some((*r, *size));
        }
    }
    let last = scored.last().expect("nonempty");
    Some((last.0, last.1))
}

/// Runs one simulated session and returns its statistics.
pub fn simulate_session(doc: &MultimediaDocument, cfg: &SessionConfig) -> SessionStats {
    let obs = Registry::new();
    let requests = obs.counter("netsim.session.request.count");
    let hits = obs.counter("netsim.session.hit.count");
    let demand_bytes = obs.counter("netsim.session.demand.bytes");
    let prefetch_bytes = obs.counter("netsim.session.prefetch.bytes");
    let wasted_bytes = obs.counter("netsim.session.wasted.bytes");
    let retransmits = obs.counter("netsim.link.retransmit.count");
    let timeouts = obs.counter("netsim.link.timeout.count");
    let degraded = obs.counter("netsim.session.degraded.count");
    let response_hist = obs.histogram(RESPONSE_HIST, bounds::LATENCY_US);

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut buffer = ClientBuffer::with_registry(cfg.buffer_bytes, obs.clone());
    let mut faulty = FaultyLink::new(cfg.link, cfg.fault.clone());
    let mut now = 0.0f64; // virtual clock, seconds since session start
    let mut policy = PrefetchPolicy::new(cfg.policy, cfg.seed ^ 0xF00D);
    let planner = PrefetchPlanner::new(PrefetchConfig::default());
    let mut evidence = PartialAssignment::empty(doc.net().len());
    if let Some(tuning) = cfg.bandwidth_tuning {
        let band = cfg.link.band(&cfg.bandwidth_thresholds);
        let band = band.min(doc.net().domain_size(tuning) - 1);
        evidence.set(tuning, Value(band as u16));
    }
    let mut prefetched: HashSet<Rendition> = HashSet::new();
    let mut requested: HashSet<Rendition> = HashSet::new();

    for _ in 0..cfg.steps {
        // Idle dwell: the prefetcher may move bytes in the background. A
        // dead link (outage window) idles the prefetcher too.
        let dwell = cfg.dwell_secs * rng.gen_range(0.5..1.5);
        if !cfg.fault.in_outage(now) {
            let mut budget = cfg.link.bytes_within(dwell);
            for (r, size) in policy.candidates(doc, &evidence, &buffer) {
                if size > budget {
                    break;
                }
                if buffer.insert(r, size) {
                    budget -= size;
                    prefetch_bytes.add(size);
                    prefetched.insert(r);
                }
            }
        }
        now += dwell;
        // The viewer clicks.
        let Some((rendition, size)) =
            sample_request(doc, &evidence, &planner, &requested, cfg.epsilon, &mut rng)
        else {
            break;
        };
        requests.inc();
        requested.insert(rendition);
        let response = if buffer.lookup(rendition) {
            0.0
        } else {
            demand_bytes.add(size);
            let mut elapsed;
            match faulty.transfer(size, now, &cfg.retry) {
                TransferOutcome::Delivered {
                    elapsed_s,
                    retransmits: n,
                } => {
                    retransmits.add(n as u64);
                    buffer.insert(rendition, size);
                    elapsed = elapsed_s;
                }
                TransferOutcome::TimedOut { elapsed_s, .. } => {
                    // Graceful degradation: rather than failing the click,
                    // fall back to the coarse LIC1 base layer — sized from
                    // the rendition's real header ladder when one was
                    // plumbed through, the documented fixed-fraction guess
                    // only otherwise.
                    timeouts.inc();
                    elapsed = elapsed_s;
                    let ladder = cfg.layer_ladders.get(&rendition).map(Vec::as_slice);
                    let coarse = degraded_bytes_with_ladder(size, ladder);
                    match faulty.transfer(coarse, now + elapsed, &cfg.retry) {
                        TransferOutcome::Delivered {
                            elapsed_s,
                            retransmits: n,
                        } => {
                            retransmits.add(n as u64);
                            degraded.inc();
                            buffer.insert(rendition, coarse);
                            elapsed += elapsed_s;
                        }
                        TransferOutcome::TimedOut { elapsed_s, .. } => {
                            // Even the base layer failed; the click is just
                            // slow — the session carries on.
                            timeouts.inc();
                            elapsed += elapsed_s;
                        }
                    }
                }
            }
            elapsed
        };
        if response == 0.0 {
            hits.inc();
        }
        now += response;
        // Virtual clock, so the duration is recorded directly rather than
        // through a wall-clock Timer.
        response_hist.record((response * 1e6).round() as u64);
        // The click is evidence for the presentation engine (and thus for
        // subsequent prefetch planning).
        evidence.set(rendition.0.var(), Value(rendition.1 as u16));
    }
    wasted_bytes.add(
        prefetched
            .difference(&requested)
            .map(|r| doc.forms(r.0).map(|f| f[r.1].cost_bytes).unwrap_or(0))
            .sum(),
    );
    SessionStats::from_registry(cfg.policy, &obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcmo_core::{MediaRef, PresentationForm};

    /// A record with enough structure for preferences to matter: several
    /// images with flat/icon forms, author prefers a specific subset shown.
    fn study_doc() -> MultimediaDocument {
        let mut doc = MultimediaDocument::new("record");
        let images = doc.add_composite(doc.root(), "Images").unwrap();
        for i in 0..16 {
            let cost = 60_000 + 20_000 * (i as u64 % 4);
            doc.add_primitive(
                images,
                &format!("img{i}"),
                MediaRef::None,
                vec![
                    PresentationForm::new("flat", FormKind::Flat, cost),
                    PresentationForm::new("icon", FormKind::Icon, 3_000),
                    PresentationForm::hidden(),
                ],
            )
            .unwrap();
        }
        doc.validate().unwrap();
        doc
    }

    #[test]
    fn preference_beats_no_prefetch() {
        // Averaged over several seeds: any single 30-click session is noisy
        // enough for the margin to wobble, the mean is not.
        let doc = study_doc();
        let mean = |policy: PolicyKind| -> (f64, f64) {
            let mut hit = 0.0;
            let mut resp = 0.0;
            for seed in 0..5u64 {
                let s = simulate_session(
                    &doc,
                    &SessionConfig {
                        steps: 30,
                        buffer_bytes: 300_000,
                        policy,
                        seed: 0x5e55 + seed,
                        ..SessionConfig::default()
                    },
                );
                hit += s.hit_rate();
                resp += s.mean_response_secs;
            }
            (hit / 5.0, resp / 5.0)
        };
        let (none_hit, none_resp) = mean(PolicyKind::None);
        let (pref_hit, pref_resp) = mean(PolicyKind::PreferenceBased);
        assert!(
            pref_hit > none_hit + 0.2,
            "preference {pref_hit:.2} vs none {none_hit:.2}"
        );
        assert!(pref_resp < none_resp);
    }

    #[test]
    fn no_prefetch_still_caches_repeats() {
        let doc = study_doc();
        let stats = simulate_session(
            &doc,
            &SessionConfig {
                policy: PolicyKind::None,
                steps: 100,
                buffer_bytes: 4_000_000, // everything fits after first touch
                ..SessionConfig::default()
            },
        );
        assert!(stats.prefetch_bytes == 0);
        assert!(
            stats.hit_rate() > 0.4,
            "repeat clicks hit: {:.2}",
            stats.hit_rate()
        );
    }

    #[test]
    fn bigger_buffers_do_not_hurt() {
        let doc = study_doc();
        let run = |buffer_bytes: u64| {
            simulate_session(
                &doc,
                &SessionConfig {
                    buffer_bytes,
                    policy: PolicyKind::PreferenceBased,
                    ..SessionConfig::default()
                },
            )
            .hit_rate()
        };
        let small = run(80_000);
        let large = run(2_000_000);
        assert!(large >= small, "small {small:.2} large {large:.2}");
    }

    #[test]
    fn faster_links_reduce_response_times() {
        let doc = study_doc();
        let run = |link: Link| {
            simulate_session(
                &doc,
                &SessionConfig {
                    link,
                    policy: PolicyKind::None,
                    ..SessionConfig::default()
                },
            )
            .mean_response_secs
        };
        let slow = run(Link::new(56_000.0, 0.15));
        let fast = run(Link::new(10_000_000.0, 0.005));
        assert!(slow > fast * 5.0, "slow {slow:.3}s fast {fast:.3}s");
    }

    #[test]
    fn sessions_are_deterministic() {
        let doc = study_doc();
        let cfg = SessionConfig::default();
        assert_eq!(simulate_session(&doc, &cfg), simulate_session(&doc, &cfg));
        let other = SessionConfig { seed: 1, ..cfg };
        // Different seed, same machinery (not necessarily different stats,
        // but the run must complete).
        let _ = simulate_session(&doc, &other);
    }

    #[test]
    fn bandwidth_tuning_reduces_transfer_on_slow_links() {
        // A document whose expensive components are auto-conditioned on a
        // bandwidth tuning variable serves cheaper renditions on a modem.
        let mut doc = study_doc();
        let bw = doc
            .add_tuning_variable("bandwidth", &["high", "low"])
            .unwrap();
        let touched = doc.auto_condition_on_tuning(bw, 10_000).unwrap();
        assert!(!touched.is_empty());
        doc.validate().unwrap();
        let run = |link: Link| {
            simulate_session(
                &doc,
                &SessionConfig {
                    // Short session: with 16 icons available, every
                    // low-band click stays cheap.
                    steps: 12,
                    policy: PolicyKind::None,
                    link,
                    epsilon: 0.0, // fully preference-driven clicks
                    bandwidth_tuning: Some(bw),
                    bandwidth_thresholds: vec![500_000.0],
                    ..SessionConfig::default()
                },
            )
        };
        let slow = run(Link::new(56_000.0, 0.15));
        let fast = run(Link::new(10_000_000.0, 0.005));
        // Under the low band the preferred (and thus requested) renditions
        // are the cheap ones, so far fewer demand bytes move.
        assert!(
            slow.demand_bytes * 3 < fast.demand_bytes,
            "slow {} vs fast {}",
            slow.demand_bytes,
            fast.demand_bytes
        );
    }

    #[test]
    fn byte_accounting_is_consistent() {
        let doc = study_doc();
        for kind in PolicyKind::ALL {
            let stats = simulate_session(
                &doc,
                &SessionConfig {
                    policy: kind,
                    ..SessionConfig::default()
                },
            );
            assert_eq!(stats.requests, 60);
            assert!(stats.hits <= stats.requests);
            assert!(stats.wasted_prefetch_bytes <= stats.prefetch_bytes);
            if kind == PolicyKind::None {
                assert_eq!(stats.prefetch_bytes, 0);
            }
            assert!(stats.mean_response_secs <= stats.max_response_secs + 1e-12);
        }
    }

    #[test]
    fn clean_link_records_no_faults() {
        let doc = study_doc();
        let stats = simulate_session(&doc, &SessionConfig::default());
        assert_eq!(stats.retransmits, 0);
        assert_eq!(stats.timeouts, 0);
        assert_eq!(stats.degraded_requests, 0);
    }

    #[test]
    fn lossy_session_completes_with_bounded_retries() {
        // Acceptance scenario: 5% loss on the modem-56k profile. Every
        // click must still be answered, retransmissions must be recorded,
        // and total retries stay within the policy's per-transfer bound.
        let doc = study_doc();
        let cfg = SessionConfig {
            link: Link::new(56_000.0, 0.15),
            fault: FaultSpec::lossy(0.05, 0xBAD1),
            steps: 40,
            ..SessionConfig::default()
        };
        let stats = simulate_session(&doc, &cfg);
        assert_eq!(stats.requests, 40);
        assert!(
            stats.retransmits > 0,
            "5% loss over 40 clicks should retransmit"
        );
        let misses = (stats.requests - stats.hits) as u64;
        // Each miss makes at most 2 transfers (full + degraded fallback),
        // each bounded by max_retries.
        let bound = misses * 2 * cfg.retry.max_retries as u64;
        assert!(
            stats.retransmits <= bound,
            "retransmits {} exceed bound {bound}",
            stats.retransmits
        );
    }

    #[test]
    fn outage_degrades_instead_of_failing() {
        // A long mid-session outage: requests during the window exhaust
        // retries, degrade to the base layer, and the session still
        // finishes all its clicks.
        let doc = study_doc();
        let cfg = SessionConfig {
            link: Link::new(56_000.0, 0.15),
            fault: FaultSpec::none().with_outage(20.0, 400.0),
            steps: 30,
            ..SessionConfig::default()
        };
        let stats = simulate_session(&doc, &cfg);
        assert_eq!(stats.requests, 30);
        assert!(stats.timeouts > 0, "outage should exhaust some retries");
        assert!(
            stats.mean_response_secs > 0.0,
            "outage sessions pay for the retries they burn"
        );
    }

    #[test]
    fn real_ladder_replaces_the_fixed_fraction_fallback() {
        // Same seed, same clicks, same outage — the only difference is
        // that the second run plumbs a real LIC1 ladder whose base layer
        // is far smaller than the 20% guess. The degraded fallback
        // transfers then shrink, so the laddered session's responses are
        // strictly cheaper. This is the E8-derived regression for the
        // degraded_bytes bugfix: the fixed fraction is fallback only.
        let doc = study_doc();
        // Outage sized so an in-outage click exhausts its full-rendition
        // retries inside the window and the degraded fallback transfer
        // starts after recovery — degradation must actually fire.
        let base_cfg = SessionConfig {
            link: Link::new(56_000.0, 0.15),
            fault: FaultSpec::none().with_outage(20.0, 120.0),
            steps: 30,
            ..SessionConfig::default()
        };
        let guessed = simulate_session(&doc, &base_cfg);

        let mut ladders = HashMap::new();
        for i in 0..doc.num_components() {
            let c = ComponentId(i as u32);
            if let Ok(forms) = doc.forms(c) {
                for (f, form) in forms.iter().enumerate() {
                    if form.cost_bytes > 0 {
                        // A plausible header ladder: tiny base layer,
                        // mid-rung, full stream.
                        ladders.insert(
                            (c, f),
                            vec![form.cost_bytes / 50, form.cost_bytes / 5, form.cost_bytes],
                        );
                    }
                }
            }
        }
        let laddered_cfg = SessionConfig {
            layer_ladders: ladders,
            ..base_cfg
        };
        let laddered = simulate_session(&doc, &laddered_cfg);

        // Identical deterministic click count either way…
        assert_eq!(laddered.requests, guessed.requests);
        assert!(guessed.degraded_requests > 0, "outage must degrade clicks");
        // …but the real (smaller) base-layer prefix makes degraded
        // fallbacks cheaper on the wire.
        assert!(
            laddered.mean_response_secs < guessed.mean_response_secs,
            "ladder {:.3}s should beat fixed-fraction {:.3}s",
            laddered.mean_response_secs,
            guessed.mean_response_secs
        );
    }
}
