//! A point-to-point link in virtual time.

use std::fmt;

/// A [`Link`] configuration that cannot describe a physical link.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum LinkError {
    /// Bandwidth was zero, negative, or not a number.
    NonPositiveBandwidth(f64),
    /// Latency was negative or not a number.
    NegativeLatency(f64),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::NonPositiveBandwidth(b) => {
                write!(f, "link bandwidth must be positive, got {b} bps")
            }
            LinkError::NegativeLatency(l) => {
                write!(f, "link latency must be non-negative, got {l} s")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// The floor [`Link::new`] clamps a non-positive bandwidth to: 1 bit/s, a
/// link that is effectively dead but still yields finite (huge) transfer
/// times instead of dividing by zero.
pub const MIN_BANDWIDTH_BPS: f64 = 1.0;

/// A network link with fixed bandwidth and propagation latency. Transfers
/// are serialised (one outstanding transfer at a time), matching a single
/// client connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Usable bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// One-way latency in seconds (charged once per transfer).
    pub latency_s: f64,
}

impl Link {
    /// A link. Out-of-range parameters are **clamped**, not panicked on:
    /// a non-positive (or NaN) bandwidth becomes [`MIN_BANDWIDTH_BPS`] and
    /// a negative (or NaN) latency becomes `0` — a simulator-driven config
    /// can describe an arbitrarily bad link but can never abort the
    /// process. (The old `assert!` here turned a bad scenario file into a
    /// panic.) Use [`Link::try_new`] to surface the error instead.
    pub fn new(bandwidth_bps: f64, latency_s: f64) -> Link {
        match Link::try_new(bandwidth_bps, latency_s) {
            Ok(link) => link,
            Err(_) => Link {
                bandwidth_bps: if bandwidth_bps > 0.0 {
                    bandwidth_bps
                } else {
                    MIN_BANDWIDTH_BPS
                },
                latency_s: if latency_s >= 0.0 { latency_s } else { 0.0 },
            },
        }
    }

    /// A link, rejecting impossible configurations with a structured
    /// [`LinkError`] instead of clamping.
    pub fn try_new(bandwidth_bps: f64, latency_s: f64) -> Result<Link, LinkError> {
        if bandwidth_bps.is_nan() || bandwidth_bps <= 0.0 {
            return Err(LinkError::NonPositiveBandwidth(bandwidth_bps));
        }
        if latency_s.is_nan() || latency_s < 0.0 {
            return Err(LinkError::NegativeLatency(latency_s));
        }
        Ok(Link {
            bandwidth_bps,
            latency_s,
        })
    }

    /// Common profiles used by the experiments: (name, link).
    pub fn profiles() -> Vec<(&'static str, Link)> {
        vec![
            ("modem-56k", Link::new(56_000.0, 0.15)),
            ("isdn-128k", Link::new(128_000.0, 0.08)),
            ("dsl-1m", Link::new(1_000_000.0, 0.04)),
            ("lan-10m", Link::new(10_000_000.0, 0.005)),
        ]
    }

    /// Maps the link onto a tuning-variable band: level 0 when the
    /// bandwidth meets the first threshold, otherwise one level per missed
    /// threshold (thresholds in descending bits/s). Feeds the §4.4 tuning
    /// variables of `rcmo-core`.
    pub fn band(&self, thresholds_bps: &[f64]) -> usize {
        thresholds_bps
            .iter()
            .filter(|&&t| self.bandwidth_bps < t)
            .count()
    }

    /// Seconds to deliver `bytes` over this link. A zero-byte transfer
    /// costs exactly the propagation latency (no serialisation term) — a
    /// control message still pays the round onto the wire.
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        self.latency_s + (bytes as f64 * 8.0) / self.bandwidth_bps
    }

    /// Bytes deliverable within `secs` of pure transmission time (the idle
    /// window a prefetcher may exploit); latency is charged per transfer by
    /// the caller.
    pub fn bytes_within(&self, secs: f64) -> u64 {
        if secs <= 0.0 {
            0
        } else {
            (secs * self.bandwidth_bps / 8.0) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_size() {
        let link = Link::new(1_000_000.0, 0.01);
        let t1 = link.transfer_secs(125_000); // 1 Mbit
        assert!((t1 - 1.01).abs() < 1e-9);
        let t2 = link.transfer_secs(250_000);
        assert!(t2 > t1);
        assert!((link.transfer_secs(0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn zero_byte_transfer_is_bare_latency() {
        // The audit the Link bugfix asked for, pinned: zero bytes cost
        // exactly the latency on every profile, including zero-latency
        // links where the cost is exactly zero.
        for (_, link) in Link::profiles() {
            assert!((link.transfer_secs(0) - link.latency_s).abs() < 1e-12);
        }
        assert_eq!(Link::new(56_000.0, 0.0).transfer_secs(0), 0.0);
    }

    #[test]
    fn bytes_within_inverts_transfer() {
        let link = Link::new(800_000.0, 0.0);
        assert_eq!(link.bytes_within(1.0), 100_000);
        assert_eq!(link.bytes_within(0.0), 0);
        assert_eq!(link.bytes_within(-5.0), 0);
    }

    #[test]
    fn profiles_are_ordered_by_speed() {
        let profiles = Link::profiles();
        for w in profiles.windows(2) {
            assert!(w[0].1.bandwidth_bps < w[1].1.bandwidth_bps);
        }
    }

    #[test]
    fn bands_from_thresholds() {
        let thresholds = [1_000_000.0, 100_000.0];
        assert_eq!(Link::new(10_000_000.0, 0.0).band(&thresholds), 0);
        assert_eq!(Link::new(500_000.0, 0.0).band(&thresholds), 1);
        assert_eq!(Link::new(56_000.0, 0.0).band(&thresholds), 2);
        assert_eq!(Link::new(56_000.0, 0.0).band(&[]), 0);
    }

    #[test]
    fn zero_bandwidth_rejected_structurally_and_clamped_infallibly() {
        // try_new reports the structured error…
        assert_eq!(
            Link::try_new(0.0, 0.1),
            Err(LinkError::NonPositiveBandwidth(0.0))
        );
        assert!(matches!(
            Link::try_new(-3.0, 0.1),
            Err(LinkError::NonPositiveBandwidth(_))
        ));
        assert_eq!(
            Link::try_new(56_000.0, -1.0),
            Err(LinkError::NegativeLatency(-1.0))
        );
        assert!(Link::try_new(f64::NAN, 0.0).is_err());
        // …while the infallible constructor clamps instead of panicking,
        // so a simulator scenario with a bad link keeps running.
        let dead = Link::new(0.0, 0.1);
        assert_eq!(dead.bandwidth_bps, MIN_BANDWIDTH_BPS);
        assert!(dead.transfer_secs(1).is_finite());
        let negative_latency = Link::new(56_000.0, -0.5);
        assert_eq!(negative_latency.latency_s, 0.0);
        let nan = Link::new(f64::NAN, f64::NAN);
        assert_eq!(nan.bandwidth_bps, MIN_BANDWIDTH_BPS);
        assert_eq!(nan.latency_s, 0.0);
    }
}
