//! A point-to-point link in virtual time.

/// A network link with fixed bandwidth and propagation latency. Transfers
/// are serialised (one outstanding transfer at a time), matching a single
/// client connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Usable bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// One-way latency in seconds (charged once per transfer).
    pub latency_s: f64,
}

impl Link {
    /// A link; bandwidth must be positive.
    pub fn new(bandwidth_bps: f64, latency_s: f64) -> Link {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        assert!(latency_s >= 0.0, "latency must be non-negative");
        Link {
            bandwidth_bps,
            latency_s,
        }
    }

    /// Common profiles used by the experiments: (name, link).
    pub fn profiles() -> Vec<(&'static str, Link)> {
        vec![
            ("modem-56k", Link::new(56_000.0, 0.15)),
            ("isdn-128k", Link::new(128_000.0, 0.08)),
            ("dsl-1m", Link::new(1_000_000.0, 0.04)),
            ("lan-10m", Link::new(10_000_000.0, 0.005)),
        ]
    }

    /// Maps the link onto a tuning-variable band: level 0 when the
    /// bandwidth meets the first threshold, otherwise one level per missed
    /// threshold (thresholds in descending bits/s). Feeds the §4.4 tuning
    /// variables of `rcmo-core`.
    pub fn band(&self, thresholds_bps: &[f64]) -> usize {
        thresholds_bps
            .iter()
            .filter(|&&t| self.bandwidth_bps < t)
            .count()
    }

    /// Seconds to deliver `bytes` over this link.
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        self.latency_s + (bytes as f64 * 8.0) / self.bandwidth_bps
    }

    /// Bytes deliverable within `secs` of pure transmission time (the idle
    /// window a prefetcher may exploit); latency is charged per transfer by
    /// the caller.
    pub fn bytes_within(&self, secs: f64) -> u64 {
        if secs <= 0.0 {
            0
        } else {
            (secs * self.bandwidth_bps / 8.0) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_size() {
        let link = Link::new(1_000_000.0, 0.01);
        let t1 = link.transfer_secs(125_000); // 1 Mbit
        assert!((t1 - 1.01).abs() < 1e-9);
        let t2 = link.transfer_secs(250_000);
        assert!(t2 > t1);
        assert!((link.transfer_secs(0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn bytes_within_inverts_transfer() {
        let link = Link::new(800_000.0, 0.0);
        assert_eq!(link.bytes_within(1.0), 100_000);
        assert_eq!(link.bytes_within(0.0), 0);
        assert_eq!(link.bytes_within(-5.0), 0);
    }

    #[test]
    fn profiles_are_ordered_by_speed() {
        let profiles = Link::profiles();
        for w in profiles.windows(2) {
            assert!(w[0].1.bandwidth_bps < w[1].1.bandwidth_bps);
        }
    }

    #[test]
    fn bands_from_thresholds() {
        let thresholds = [1_000_000.0, 100_000.0];
        assert_eq!(Link::new(10_000_000.0, 0.0).band(&thresholds), 0);
        assert_eq!(Link::new(500_000.0, 0.0).band(&thresholds), 1);
        assert_eq!(Link::new(56_000.0, 0.0).band(&thresholds), 2);
        assert_eq!(Link::new(56_000.0, 0.0).band(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        Link::new(0.0, 0.1);
    }
}
