//! # rcmo-audio — the voice-processing module
//!
//! Reimplementation of the paper's audio browsing stack (Cohen \[8\]): the
//! tele-consulting system must answer "how many speakers participate? who
//! are they? what is the subject?" over stored audio. The tool chain:
//!
//! * [`synth`] — synthetic speech/music/noise generators with ground-truth
//!   labels (the substitute for clinical recordings);
//! * [`fft`] — radix-2 FFT;
//! * [`features`] — framing, windowing, log filterbank + cepstral features;
//! * [`gmm`] — diagonal-covariance Gaussian mixtures with EM training;
//! * [`hmm`] — continuous-density HMMs (GMM emissions, forward/backward in
//!   log space, Viterbi, Baum–Welch) — "the main tool by means of which the
//!   above algorithms was implemented is the Continuous Density HMM";
//! * [`segment`] — automatic audio segmentation (signal vs. background
//!   noise; speech vs. music vs. artifacts);
//! * [`speechkind`] — pitch tracking and male/female/child speech typing;
//! * [`wordspot`] — keyword spotting with keyword models + a garbage model;
//! * [`speaker`] — text-independent speaker spotting and speaker-turn
//!   segmentation (the paper's Fig. 10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod features;
pub mod fft;
pub mod gmm;
pub mod hmm;
pub mod segment;
pub mod speaker;
pub mod speechkind;
pub mod synth;
pub mod wordspot;

pub use features::{extract_features, FeatureConfig};
pub use gmm::DiagGmm;
pub use hmm::Hmm;
pub use segment::{segment_audio, AudioClass, Segment, SegmenterModel};
pub use speaker::{SpeakerModel, SpeakerSpotter};
pub use speechkind::{pitch_track, segment_speech_kinds, SpeechKind};
pub use synth::{SynthConfig, VoiceProfile};
pub use wordspot::{WordSpotter, WordSpotterConfig};

/// Sample rate used throughout the synthetic experiments (Hz).
pub const SAMPLE_RATE: usize = 8_000;
