//! Text-independent speaker spotting and speaker-turn segmentation.
//!
//! "Speaker spotting is dual to word spotting. Here the algorithm is given
//! a list of key speakers and is requested to raise a flag when one of them
//! is speaking. ... the algorithm has to 'spot' the speaker independently
//! of what she is saying" (paper §3, after Cohen & Lapidus \[8\]).
//!
//! Each enrolled speaker gets a GMM trained on enrollment speech (content
//! disjoint from the test content — text independence). Test audio is
//! scored per frame and labelled over sliding windows; consecutive windows
//! with the same winner merge into speaker turns (the coloured regions of
//! the paper's Figure 10).

use crate::features::{extract_features, FeatureConfig};
use crate::gmm::DiagGmm;
use crate::synth::{self, SynthConfig, VoiceProfile};
use std::ops::Range;

/// An enrolled speaker.
#[derive(Debug, Clone)]
pub struct SpeakerModel {
    /// Speaker name.
    pub name: String,
    gmm: DiagGmm,
}

impl SpeakerModel {
    /// Enrolls a speaker from audio samples.
    pub fn enroll(
        name: &str,
        samples: &[f64],
        features: &FeatureConfig,
        components: usize,
        seed: u64,
    ) -> SpeakerModel {
        let frames = extract_features(samples, features);
        assert!(!frames.is_empty(), "enrollment audio too short");
        SpeakerModel {
            name: name.to_string(),
            gmm: DiagGmm::train(&frames, components, 12, seed),
        }
    }

    /// Enrolls from synthetic babble of a [`VoiceProfile`] (content seeded
    /// independently of any test material).
    pub fn enroll_synthetic(
        voice: &VoiceProfile,
        secs: f64,
        features: &FeatureConfig,
        seed: u64,
    ) -> SpeakerModel {
        let sc = SynthConfig {
            seed: seed ^ 0xE14_0011,
            ..SynthConfig::default()
        };
        let audio = synth::babble(voice, secs, &sc);
        SpeakerModel::enroll(&voice.name, &audio, features, 4, seed)
    }

    /// Mean log likelihood of a frame span.
    pub fn score(&self, frames: &[Vec<f64>]) -> f64 {
        self.gmm.avg_log_likelihood(frames)
    }
}

/// One detected speaker turn.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeakerTurn {
    /// Frame range of the turn.
    pub frames: Range<usize>,
    /// Index of the winning speaker model (`None` = no enrolled speaker
    /// scored above the rejection threshold).
    pub speaker: Option<usize>,
    /// Mean margin of the winner over the runner-up.
    pub confidence: f64,
}

/// The speaker-spotting engine.
#[derive(Debug, Clone)]
pub struct SpeakerSpotter {
    models: Vec<SpeakerModel>,
    features: FeatureConfig,
    /// Sliding window length in frames.
    pub window: usize,
    /// Absolute per-frame log-likelihood below which a window is rejected
    /// as "none of the enrolled speakers".
    pub reject_below: f64,
}

impl SpeakerSpotter {
    /// Creates a spotter over enrolled models.
    pub fn new(models: Vec<SpeakerModel>, features: FeatureConfig) -> SpeakerSpotter {
        assert!(!models.is_empty());
        SpeakerSpotter {
            models,
            features,
            window: 20,
            reject_below: f64::NEG_INFINITY,
        }
    }

    /// Names of the enrolled speakers, in index order.
    pub fn speaker_names(&self) -> Vec<&str> {
        self.models.iter().map(|m| m.name.as_str()).collect()
    }

    /// Labels each analysis window: `(start_frame, winner, margin)`.
    pub fn window_labels(&self, samples: &[f64]) -> Vec<(usize, Option<usize>, f64)> {
        let frames = extract_features(samples, &self.features);
        let hop = (self.window / 2).max(1);
        let mut out = Vec::new();
        let mut start = 0usize;
        while start + self.window <= frames.len() {
            let span = &frames[start..start + self.window];
            let mut scores: Vec<(usize, f64)> = self
                .models
                .iter()
                .enumerate()
                .map(|(i, m)| (i, m.score(span)))
                .collect();
            scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            let (winner, best) = scores[0];
            let runner_up = scores.get(1).map(|s| s.1).unwrap_or(f64::NEG_INFINITY);
            let margin = best - runner_up;
            let label = if best < self.reject_below {
                None
            } else {
                Some(winner)
            };
            out.push((start, label, margin));
            start += hop;
        }
        out
    }

    /// Full speaker-turn segmentation: windows are labelled, consecutive
    /// windows with the same winner merge, and each turn reports its mean
    /// winner margin as a confidence.
    pub fn turns(&self, samples: &[f64]) -> Vec<SpeakerTurn> {
        let labels = self.window_labels(samples);
        let hop = (self.window / 2).max(1);
        let mut out: Vec<SpeakerTurn> = Vec::new();
        for (start, label, margin) in labels {
            match out.last_mut() {
                Some(turn) if turn.speaker == label => {
                    let old_windows =
                        ((turn.frames.end - turn.frames.start - self.window) / hop + 1) as f64;
                    turn.frames.end = start + self.window;
                    turn.confidence =
                        (turn.confidence * old_windows + margin) / (old_windows + 1.0);
                }
                _ => out.push(SpeakerTurn {
                    frames: start..start + self.window,
                    speaker: label,
                    confidence: margin,
                }),
            }
        }
        out
    }

    /// Per-window accuracy against a ground-truth labelling of sample
    /// positions (window centre decides).
    pub fn window_accuracy(&self, samples: &[f64], truth: impl Fn(usize) -> Option<usize>) -> f64 {
        let labels = self.window_labels(samples);
        if labels.is_empty() {
            return 0.0;
        }
        let correct = labels
            .iter()
            .filter(|(start, label, _)| {
                let centre = self.features.frame_center(start + self.window / 2);
                truth(centre) == *label
            })
            .count();
        correct as f64 / labels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::conversation;

    fn voices() -> [VoiceProfile; 2] {
        [VoiceProfile::male("alice"), VoiceProfile::female("bob")]
    }

    fn spotter(seed: u64) -> SpeakerSpotter {
        let features = FeatureConfig::default();
        let models = voices()
            .iter()
            .map(|v| SpeakerModel::enroll_synthetic(v, 2.0, &features, seed))
            .collect();
        SpeakerSpotter::new(models, features)
    }

    #[test]
    fn two_speaker_conversation_is_segmented() {
        let sp = spotter(11);
        let track = conversation(
            &voices(),
            &[(0, 1.0), (1, 1.0), (0, 0.8)],
            &SynthConfig {
                seed: 900_001, // content unseen during enrollment
                ..SynthConfig::default()
            },
        );
        let turns = sp.turns(&track.samples);
        let speakers: Vec<Option<usize>> = turns.iter().map(|t| t.speaker).collect();
        // The dominant pattern must be alice, bob, alice (allowing brief
        // boundary turns).
        let long_turns: Vec<Option<usize>> = turns
            .iter()
            .filter(|t| t.frames.len() > 20)
            .map(|t| t.speaker)
            .collect();
        assert_eq!(
            long_turns,
            vec![Some(0), Some(1), Some(0)],
            "turns {speakers:?}"
        );
    }

    #[test]
    fn window_accuracy_is_high_and_text_independent() {
        let sp = spotter(12);
        let track = conversation(
            &voices(),
            &[(0, 1.2), (1, 1.2)],
            &SynthConfig {
                seed: 123_456,
                ..SynthConfig::default()
            },
        );
        let acc = sp.window_accuracy(&track.samples, |sample| {
            match track.label_at(sample.min(track.len() - 1)) {
                Some("alice") => Some(0),
                Some("bob") => Some(1),
                _ => None,
            }
        });
        assert!(acc > 0.85, "window accuracy {acc:.3}");
    }

    #[test]
    fn unknown_speaker_rejected_with_threshold() {
        let mut sp = spotter(13);
        // Calibrate the rejection threshold on enrolled speech.
        let sc = SynthConfig {
            seed: 31_337,
            ..SynthConfig::default()
        };
        let own = synth::babble(&voices()[0], 1.0, &sc);
        let own_scores = sp.window_labels(&own);
        let mean_margin: f64 =
            own_scores.iter().map(|(_, _, m)| *m).sum::<f64>() / own_scores.len() as f64;
        assert!(mean_margin > 0.0);
        // A wildly different "speaker": pure noise. With a rejection
        // threshold set, the spotter must refuse to name it.
        sp.reject_below = -30.0;
        let noise = synth::noise(1.0, 0.1, &sc);
        let labels = sp.window_labels(&noise);
        let rejected = labels.iter().filter(|(_, l, _)| l.is_none()).count();
        assert!(
            rejected * 2 > labels.len(),
            "only {rejected}/{} windows rejected",
            labels.len()
        );
    }

    #[test]
    fn turns_merge_consecutive_windows() {
        let sp = spotter(14);
        let sc = SynthConfig {
            seed: 88,
            ..SynthConfig::default()
        };
        let audio = synth::babble(&voices()[1], 1.5, &sc);
        let turns = sp.turns(&audio);
        // One dominant turn for bob.
        let bob: Vec<&SpeakerTurn> = turns
            .iter()
            .filter(|t| t.speaker == Some(1) && t.frames.len() > 20)
            .collect();
        assert_eq!(bob.len(), 1, "turns: {turns:?}");
    }

    #[test]
    fn short_audio_yields_no_windows() {
        let sp = spotter(15);
        assert!(sp.window_labels(&[0.0; 100]).is_empty());
        assert!(sp.turns(&[0.0; 100]).is_empty());
        assert_eq!(sp.window_accuracy(&[0.0; 100], |_| None), 0.0);
    }

    #[test]
    fn speaker_names_order() {
        let sp = spotter(16);
        assert_eq!(sp.speaker_names(), vec!["alice", "bob"]);
    }
}
