//! Diagonal-covariance Gaussian mixture models with EM training.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Floor applied to variances to keep likelihoods finite.
pub const VAR_FLOOR: f64 = 1e-4;

/// A diagonal-covariance Gaussian mixture.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagGmm {
    weights: Vec<f64>,
    means: Vec<Vec<f64>>,
    vars: Vec<Vec<f64>>,
}

fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

fn log_gauss(x: &[f64], mean: &[f64], var: &[f64]) -> f64 {
    let mut lp = 0.0;
    for ((xi, mi), vi) in x.iter().zip(mean).zip(var) {
        let d = xi - mi;
        lp += -0.5 * ((2.0 * std::f64::consts::PI * vi).ln() + d * d / vi);
    }
    lp
}

impl DiagGmm {
    /// Number of mixture components.
    pub fn num_components(&self) -> usize {
        self.weights.len()
    }

    /// Feature dimensionality.
    pub fn dims(&self) -> usize {
        self.means.first().map(|m| m.len()).unwrap_or(0)
    }

    /// Builds a GMM from explicit parameters (weights are normalised).
    pub fn from_parameters(weights: Vec<f64>, means: Vec<Vec<f64>>, vars: Vec<Vec<f64>>) -> Self {
        assert_eq!(weights.len(), means.len());
        assert_eq!(weights.len(), vars.len());
        let z: f64 = weights.iter().sum();
        let weights = weights.iter().map(|w| w / z).collect();
        let vars = vars
            .into_iter()
            .map(|v| v.into_iter().map(|x| x.max(VAR_FLOOR)).collect())
            .collect();
        DiagGmm {
            weights,
            means,
            vars,
        }
    }

    /// Per-component log densities `ln(w_k) + ln N(x; μ_k, Σ_k)`.
    fn component_log_densities(&self, x: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .zip(&self.means)
            .zip(&self.vars)
            .map(|((w, m), v)| w.max(1e-300).ln() + log_gauss(x, m, v))
            .collect()
    }

    /// Log likelihood of one observation.
    pub fn log_likelihood(&self, x: &[f64]) -> f64 {
        log_sum_exp(&self.component_log_densities(x))
    }

    /// Mean log likelihood over a dataset.
    pub fn avg_log_likelihood(&self, data: &[Vec<f64>]) -> f64 {
        data.iter().map(|x| self.log_likelihood(x)).sum::<f64>() / data.len().max(1) as f64
    }

    /// Component posteriors `p(k | x)`.
    pub fn posteriors(&self, x: &[f64]) -> Vec<f64> {
        let lps = self.component_log_densities(x);
        let z = log_sum_exp(&lps);
        lps.iter().map(|lp| (lp - z).exp()).collect()
    }

    /// One weighted EM step: each frame `x_t` contributes with an external
    /// occupancy weight `frame_weights[t]` (the state posterior γ when this
    /// mixture is an HMM state's emission density). Frames with (near-)zero
    /// weight are ignored; if the total weight is negligible the mixture is
    /// left unchanged.
    pub fn weighted_em_step(&mut self, data: &[Vec<f64>], frame_weights: &[f64]) {
        assert_eq!(data.len(), frame_weights.len());
        let k = self.num_components();
        let dims = self.dims();
        let mut w_acc = vec![0.0f64; k];
        let mut m_acc = vec![vec![0.0f64; dims]; k];
        let mut v_acc = vec![vec![0.0f64; dims]; k];
        let mut total = 0.0;
        for (x, &fw) in data.iter().zip(frame_weights) {
            if fw <= 1e-12 {
                continue;
            }
            total += fw;
            let post = self.posteriors(x);
            for (c, &p) in post.iter().enumerate() {
                let w = p * fw;
                w_acc[c] += w;
                for d in 0..dims {
                    m_acc[c][d] += w * x[d];
                    v_acc[c][d] += w * x[d] * x[d];
                }
            }
        }
        if total < 1e-8 {
            return;
        }
        for c in 0..k {
            if w_acc[c] < 1e-8 {
                continue; // starved component: keep previous parameters
            }
            for d in 0..dims {
                let mean = m_acc[c][d] / w_acc[c];
                let var = (v_acc[c][d] / w_acc[c] - mean * mean).max(VAR_FLOOR);
                self.means[c][d] = mean;
                self.vars[c][d] = var;
            }
            self.weights[c] = w_acc[c] / total;
        }
        let z: f64 = self.weights.iter().sum();
        for w in self.weights.iter_mut() {
            *w /= z;
        }
    }

    /// Trains a `k`-component mixture with EM (`iters` iterations), with
    /// deterministic initialisation from `seed` (random distinct points as
    /// means, global variance as the initial spread).
    ///
    /// # Panics
    /// Panics on an empty dataset or `k == 0`.
    pub fn train(data: &[Vec<f64>], k: usize, iters: usize, seed: u64) -> DiagGmm {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        assert!(k > 0, "k must be positive");
        let dims = data[0].len();
        let n = data.len();
        // Global mean/variance for initialisation and flooring.
        let mut gmean = vec![0.0; dims];
        for x in data {
            for (g, v) in gmean.iter_mut().zip(x) {
                *g += v;
            }
        }
        for g in gmean.iter_mut() {
            *g /= n as f64;
        }
        let mut gvar = vec![0.0; dims];
        for x in data {
            for ((g, v), m) in gvar.iter_mut().zip(x).zip(&gmean) {
                *g += (v - m) * (v - m);
            }
        }
        for g in gvar.iter_mut() {
            *g = (*g / n as f64).max(VAR_FLOOR);
        }
        // Pick k distinct starting means.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut rng);
        let means: Vec<Vec<f64>> = idx.iter().take(k).map(|&i| data[i].clone()).collect();
        let means = if means.len() < k {
            // Fewer points than components: replicate with jitter.
            (0..k).map(|i| data[i % n].clone()).collect()
        } else {
            means
        };
        let mut gmm = DiagGmm {
            weights: vec![1.0 / k as f64; k],
            means,
            vars: vec![gvar.clone(); k],
        };
        for _ in 0..iters {
            // E step: accumulate posteriors.
            let mut w_acc = vec![0.0f64; k];
            let mut m_acc = vec![vec![0.0f64; dims]; k];
            let mut v_acc = vec![vec![0.0f64; dims]; k];
            for x in data {
                let post = gmm.posteriors(x);
                for (c, &p) in post.iter().enumerate() {
                    w_acc[c] += p;
                    for d in 0..dims {
                        m_acc[c][d] += p * x[d];
                        v_acc[c][d] += p * x[d] * x[d];
                    }
                }
            }
            // M step.
            for c in 0..k {
                if w_acc[c] < 1e-8 {
                    // Dead component: re-seed it at a random point.
                    let i = idx[(c * 7 + 3) % n];
                    gmm.means[c] = data[i].clone();
                    gmm.vars[c] = gvar.clone();
                    gmm.weights[c] = 1.0 / k as f64;
                    continue;
                }
                for d in 0..dims {
                    let mean = m_acc[c][d] / w_acc[c];
                    let var = (v_acc[c][d] / w_acc[c] - mean * mean).max(VAR_FLOOR);
                    gmm.means[c][d] = mean;
                    gmm.vars[c][d] = var;
                }
                gmm.weights[c] = w_acc[c] / n as f64;
            }
            let z: f64 = gmm.weights.iter().sum();
            for w in gmm.weights.iter_mut() {
                *w /= z;
            }
        }
        gmm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn two_cluster_data(seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        for _ in 0..200 {
            data.push(vec![
                rng.gen_range(-0.5..0.5),
                5.0 + rng.gen_range(-0.5..0.5),
            ]);
            data.push(vec![
                8.0 + rng.gen_range(-0.5..0.5),
                -3.0 + rng.gen_range(-0.5..0.5),
            ]);
        }
        data
    }

    #[test]
    fn single_gaussian_matches_moments() {
        let data = vec![vec![1.0], vec![3.0], vec![5.0], vec![7.0]];
        let g = DiagGmm::train(&data, 1, 10, 0);
        assert!((g.means[0][0] - 4.0).abs() < 1e-9);
        assert!((g.vars[0][0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn em_finds_two_clusters() {
        let data = two_cluster_data(1);
        let g = DiagGmm::train(&data, 2, 25, 42);
        let mut means: Vec<Vec<f64>> = g.means.clone();
        means.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
        assert!((means[0][0] - 0.0).abs() < 0.3, "{:?}", means);
        assert!((means[0][1] - 5.0).abs() < 0.3);
        assert!((means[1][0] - 8.0).abs() < 0.3);
        assert!((means[1][1] + 3.0).abs() < 0.3);
        assert!((g.weights[0] - 0.5).abs() < 0.1);
    }

    #[test]
    fn likelihood_improves_with_training() {
        let data = two_cluster_data(2);
        let g1 = DiagGmm::train(&data, 2, 1, 7);
        let g20 = DiagGmm::train(&data, 2, 20, 7);
        assert!(g20.avg_log_likelihood(&data) >= g1.avg_log_likelihood(&data) - 1e-9);
    }

    #[test]
    fn posteriors_sum_to_one() {
        let data = two_cluster_data(3);
        let g = DiagGmm::train(&data, 3, 10, 9);
        for x in data.iter().take(10) {
            let p = g.posteriors(x);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn likelihood_is_higher_on_own_data() {
        let a = two_cluster_data(4);
        let b: Vec<Vec<f64>> = a.iter().map(|x| vec![x[0] + 30.0, x[1] - 40.0]).collect();
        let ga = DiagGmm::train(&a, 2, 15, 1);
        assert!(ga.avg_log_likelihood(&a) > ga.avg_log_likelihood(&b) + 10.0);
    }

    #[test]
    fn from_parameters_normalises() {
        let g = DiagGmm::from_parameters(
            vec![2.0, 2.0],
            vec![vec![0.0], vec![1.0]],
            vec![vec![1.0], vec![0.0]],
        );
        assert!((g.weights[0] - 0.5).abs() < 1e-12);
        assert!(g.vars[1][0] >= VAR_FLOOR);
        assert!(g.log_likelihood(&[0.5]).is_finite());
    }

    #[test]
    fn more_components_than_points_is_handled() {
        let data = vec![vec![0.0], vec![1.0]];
        let g = DiagGmm::train(&data, 4, 5, 0);
        assert_eq!(g.num_components(), 4);
        assert!(g.log_likelihood(&[0.5]).is_finite());
    }
}
