//! Keyword ("word") spotting: keyword HMMs plus a garbage model.
//!
//! Per the paper (after Rose \[22\]): "word spotting algorithms accept a list
//! of keywords, and raise a flag when one of these words is present in the
//! continuous speech data. Word spotting systems are usually based on
//! keyword models and a 'garbage' model that models all speech that is not
//! a keyword. ... This algorithm works well when the keywords list is a
//! priori known and keyword models may be trained in advance."
//!
//! Keywords here are phoneme sequences (see [`crate::synth::PHONEMES`]); a
//! left-right CD-HMM per keyword is trained on synthetic utterances from
//! several voices, the garbage model is an ergodic CD-HMM over free speech,
//! and spotting slides a window over the test audio scoring
//! `keyword − garbage` per frame (a length-normalised log-likelihood ratio)
//! with local-maximum suppression.

use crate::features::{extract_features, FeatureConfig};
use crate::hmm::Hmm;
use crate::synth::{self, SynthConfig, VoiceProfile, PHONEME_SECS};

/// Spotting configuration.
#[derive(Debug, Clone)]
pub struct WordSpotterConfig {
    /// Feature extraction used for training and spotting.
    pub features: FeatureConfig,
    /// HMM states per keyword phoneme.
    pub states_per_phoneme: usize,
    /// Mixture components per HMM state.
    pub mixtures: usize,
    /// Training voices.
    pub voices: Vec<VoiceProfile>,
    /// Baum–Welch iterations per keyword model.
    pub train_iters: usize,
    /// Score threshold for raising a flag.
    pub threshold: f64,
}

impl Default for WordSpotterConfig {
    fn default() -> Self {
        WordSpotterConfig {
            features: FeatureConfig::default(),
            states_per_phoneme: 2,
            mixtures: 2,
            voices: vec![
                VoiceProfile::male("train-m"),
                VoiceProfile::female("train-f"),
            ],
            train_iters: 4,
            threshold: -50.0,
        }
    }
}

/// One detection.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// The detected keyword's index in the spotter's list.
    pub word: usize,
    /// Frame where the window started.
    pub frame: usize,
    /// Log-likelihood-ratio score per frame.
    pub score: f64,
}

/// A trained keyword spotter.
#[derive(Debug, Clone)]
pub struct WordSpotter {
    cfg: WordSpotterConfig,
    keywords: Vec<(String, Vec<usize>, Hmm)>,
    garbage: Hmm,
}

impl WordSpotter {
    /// Trains keyword models and the garbage model. Each keyword is a
    /// `(name, phoneme sequence)` pair.
    pub fn train(keywords: &[(&str, Vec<usize>)], cfg: WordSpotterConfig, seed: u64) -> Self {
        // Garbage: free speech from all training voices.
        let mut garbage_frames: Vec<Vec<Vec<f64>>> = Vec::new();
        for (i, voice) in cfg.voices.iter().enumerate() {
            let sc = SynthConfig {
                seed: seed ^ (0xBAD * (i as u64 + 1)),
                ..SynthConfig::default()
            };
            let audio = synth::babble(voice, 2.5, &sc);
            garbage_frames.push(extract_features(&audio, &cfg.features));
        }
        let garbage_refs: Vec<&[Vec<f64>]> = garbage_frames.iter().map(|s| s.as_slice()).collect();
        let all_garbage: Vec<Vec<f64>> = garbage_frames.iter().flatten().cloned().collect();
        let garbage_gmms: Vec<crate::gmm::DiagGmm> = (0..3)
            .map(|i| crate::gmm::DiagGmm::train(&all_garbage, cfg.mixtures, 8, seed + i))
            .collect();
        let mut garbage = Hmm::ergodic(garbage_gmms, 0.7);
        garbage.train(&garbage_refs, 2);

        let mut models = Vec::new();
        for (w, (name, phonemes)) in keywords.iter().enumerate() {
            let mut utterances: Vec<Vec<Vec<f64>>> = Vec::new();
            for (i, voice) in cfg.voices.iter().enumerate() {
                for rep in 0..3u64 {
                    let sc = SynthConfig {
                        seed: seed
                            .wrapping_add(w as u64 * 7907)
                            .wrapping_add(i as u64 * 131)
                            .wrapping_add(rep * 17),
                        ..SynthConfig::default()
                    };
                    let audio = synth::speech(voice, phonemes, &sc);
                    // Train at several sample offsets: in continuous speech
                    // the utterance never lands on the frame grid, and the
                    // state Gaussians must tolerate shifted boundary frames.
                    for offset in [0usize, 43, 96] {
                        if offset < audio.len() {
                            utterances.push(extract_features(&audio[offset..], &cfg.features));
                        }
                    }
                }
            }
            let refs: Vec<&[Vec<f64>]> = utterances.iter().map(|s| s.as_slice()).collect();
            let n_states = (cfg.states_per_phoneme * phonemes.len()).max(2);
            let mut hmm =
                Hmm::flat_start_left_right(&refs, n_states, cfg.mixtures, 0.6, seed + w as u64);
            hmm.train(&refs, cfg.train_iters);
            models.push((name.to_string(), phonemes.clone(), hmm));
        }
        WordSpotter {
            cfg,
            keywords: models,
            garbage,
        }
    }

    /// Per-frame log likelihood of keyword `word` on a frame span.
    pub fn keyword_score(&self, word: usize, frames: &[Vec<f64>]) -> f64 {
        self.keywords[word].2.score(frames)
    }

    /// Per-frame log likelihood of the garbage model on a frame span.
    pub fn garbage_score(&self, frames: &[Vec<f64>]) -> f64 {
        self.garbage.score(frames)
    }

    /// Keyword names in index order.
    pub fn keyword_names(&self) -> Vec<&str> {
        self.keywords.iter().map(|(n, _, _)| n.as_str()).collect()
    }

    /// Frames one keyword utterance spans.
    fn word_frames(&self, word: usize) -> usize {
        let secs = self.keywords[word].1.len() as f64 * PHONEME_SECS;
        let samples = (secs * self.cfg.features.sample_rate as f64) as usize;
        self.cfg.features.num_frames(samples).max(2)
    }

    /// Raw score trace for one keyword: for each window start frame, the
    /// per-frame log-likelihood ratio of keyword vs. garbage.
    pub fn score_trace(&self, frames: &[Vec<f64>], word: usize) -> Vec<f64> {
        let win = self.word_frames(word);
        if frames.len() < win {
            return Vec::new();
        }
        let hop = self.hop_frames(word);
        let mut out = Vec::new();
        let mut start = 0;
        while start + win <= frames.len() {
            // Trim one frame on each side: the utterance never falls exactly
            // on the frame grid, and a left-right model is punishing about a
            // boundary frame that mixes in neighbouring audio.
            let window = if win > 4 {
                &frames[start + 1..start + win - 1]
            } else {
                &frames[start..start + win]
            };
            let s = self.keywords[word].2.score(window) - self.garbage.score(window);
            out.push(s);
            start += hop;
        }
        out
    }

    /// Window hop in frames for a keyword (matches [`Self::score_trace`]).
    /// Dense (hop 1 for short words) so a left-right keyword model aligns
    /// with the true utterance start.
    pub fn hop_frames(&self, word: usize) -> usize {
        (self.word_frames(word) / 8).max(1)
    }

    /// Spots keywords in audio samples; hits are local maxima of the score
    /// trace above the configured threshold.
    pub fn spot(&self, samples: &[f64]) -> Vec<Hit> {
        let frames = extract_features(samples, &self.cfg.features);
        let mut hits = Vec::new();
        for word in 0..self.keywords.len() {
            let trace = self.score_trace(&frames, word);
            let hop = self.hop_frames(word);
            for (i, &s) in trace.iter().enumerate() {
                if s <= self.cfg.threshold {
                    continue;
                }
                let prev = if i > 0 {
                    trace[i - 1]
                } else {
                    f64::NEG_INFINITY
                };
                let next = *trace.get(i + 1).unwrap_or(&f64::NEG_INFINITY);
                if s >= prev && s >= next {
                    hits.push(Hit {
                        word,
                        frame: i * hop,
                        score: s,
                    });
                }
            }
        }
        hits.sort_by_key(|h| h.frame);
        hits
    }
}

/// One operating point of a detection trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Threshold the point was computed at.
    pub threshold: f64,
    /// True positive rate.
    pub tpr: f64,
    /// False alarms accepted at this threshold.
    pub false_alarms: usize,
}

/// Sweeps thresholds over positive/negative score populations to produce a
/// detection curve (the standard word-spotting evaluation).
pub fn roc(positives: &[f64], negatives: &[f64], steps: usize) -> Vec<RocPoint> {
    if positives.is_empty() {
        return Vec::new();
    }
    let lo = positives
        .iter()
        .chain(negatives)
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let hi = positives
        .iter()
        .chain(negatives)
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    (0..steps)
        .map(|i| {
            let t = lo + (hi - lo) * i as f64 / (steps - 1).max(1) as f64;
            let tp = positives.iter().filter(|&&s| s > t).count();
            let fa = negatives.iter().filter(|&&s| s > t).count();
            RocPoint {
                threshold: t,
                tpr: tp as f64 / positives.len() as f64,
                false_alarms: fa,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two clearly distinct keywords.
    fn keywords() -> Vec<(&'static str, Vec<usize>)> {
        vec![("lesion", vec![0, 1, 4]), ("biopsy", vec![2, 5, 3])]
    }

    fn spotter() -> WordSpotter {
        WordSpotter::train(&keywords(), WordSpotterConfig::default(), 31)
    }

    #[test]
    fn keyword_scores_higher_on_its_own_word() {
        let sp = spotter();
        // A held-out voice utters each keyword.
        let voice = VoiceProfile {
            name: "held-out".to_string(),
            pitch_hz: 135.0,
            formant_scale: 1.05,
        };
        let sc = SynthConfig {
            seed: 777,
            ..SynthConfig::default()
        };
        let cfg = FeatureConfig::default();
        let a = extract_features(&synth::speech(&voice, &[0, 1, 4], &sc), &cfg);
        let b = extract_features(&synth::speech(&voice, &[2, 5, 3], &sc), &cfg);
        let s_aa = sp.keyword_score(0, &a);
        let s_ab = sp.keyword_score(0, &b);
        assert!(
            s_aa > s_ab,
            "keyword 0 on own word {s_aa:.2} vs other {s_ab:.2}"
        );
        let s_bb = sp.keyword_score(1, &b);
        let s_ba = sp.keyword_score(1, &a);
        assert!(s_bb > s_ba);
    }

    #[test]
    fn spotting_finds_embedded_keyword() {
        let sp = spotter();
        let voice = VoiceProfile::male("held-out");
        let sc = SynthConfig {
            seed: 4242,
            ..SynthConfig::default()
        };
        // carrier speech + keyword 0 + carrier speech
        let mut audio = synth::babble(&voice, 0.6, &sc);
        let kw_start_frame = {
            let f = FeatureConfig::default();
            f.num_frames(audio.len())
        };
        audio.extend(synth::speech(
            &voice,
            &[0, 1, 4],
            &SynthConfig { seed: 4243, ..sc },
        ));
        audio.extend(synth::babble(
            &voice,
            0.6,
            &SynthConfig { seed: 4244, ..sc },
        ));

        let hits = sp.spot(&audio);
        let word0_hits: Vec<&Hit> = hits.iter().filter(|h| h.word == 0).collect();
        assert!(!word0_hits.is_empty(), "keyword 0 not spotted: {hits:?}");
        let best = word0_hits
            .iter()
            .max_by(|a, b| a.score.partial_cmp(&b.score).unwrap())
            .unwrap();
        let tolerance = sp.word_frames(0);
        assert!(
            (best.frame as i64 - kw_start_frame as i64).unsigned_abs() as usize <= tolerance,
            "hit at frame {} but keyword starts near {kw_start_frame}",
            best.frame
        );
    }

    #[test]
    fn score_trace_empty_for_short_audio() {
        let sp = spotter();
        assert!(sp.score_trace(&[], 0).is_empty());
        let hits = sp.spot(&vec![0.0; 100]);
        assert!(hits.is_empty());
    }

    #[test]
    fn roc_is_monotone_in_threshold() {
        let pos = vec![1.0, 2.0, 3.0, 4.0];
        let neg = vec![-1.0, 0.0, 0.5, 2.5];
        let curve = roc(&pos, &neg, 10);
        assert_eq!(curve.len(), 10);
        for w in curve.windows(2) {
            assert!(w[1].threshold >= w[0].threshold);
            assert!(w[1].tpr <= w[0].tpr, "tpr must fall as threshold rises");
            assert!(w[1].false_alarms <= w[0].false_alarms);
        }
        assert!(roc(&[], &neg, 5).is_empty());
    }

    #[test]
    fn keyword_names_are_exposed() {
        let sp = spotter();
        assert_eq!(sp.keyword_names(), vec!["lesion", "biopsy"]);
    }
}
