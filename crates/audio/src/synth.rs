//! Synthetic audio with ground truth: formant speech, music, noise.
//!
//! The paper browses clinical voice recordings; here every experiment
//! synthesises its own audio so segmentation/spotting accuracy can be
//! measured against exact labels. Speech is produced by a classic
//! source-filter caricature: a harmonic source at the speaker's pitch
//! shaped by two formant resonances per phoneme; speakers differ in pitch
//! and in a formant scale factor (vocal-tract length), which is exactly the
//! kind of variation text-independent speaker spotting must key on.

use crate::SAMPLE_RATE;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Synthesis parameters.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Samples per second.
    pub sample_rate: usize,
    /// RNG seed (jitter, noise, phoneme choices).
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            sample_rate: SAMPLE_RATE,
            seed: 0xA0D10,
        }
    }
}

/// A speaker's voice: pitch and vocal-tract (formant) scaling.
#[derive(Debug, Clone, PartialEq)]
pub struct VoiceProfile {
    /// Speaker name (label in experiments).
    pub name: String,
    /// Fundamental frequency in Hz.
    pub pitch_hz: f64,
    /// Formant frequency multiplier (≈ vocal tract length ratio).
    pub formant_scale: f64,
}

impl VoiceProfile {
    /// A typical adult male voice.
    pub fn male(name: &str) -> Self {
        VoiceProfile {
            name: name.to_string(),
            pitch_hz: 115.0,
            formant_scale: 1.0,
        }
    }

    /// A typical adult female voice.
    pub fn female(name: &str) -> Self {
        VoiceProfile {
            name: name.to_string(),
            pitch_hz: 210.0,
            formant_scale: 1.17,
        }
    }

    /// A child's voice.
    pub fn child(name: &str) -> Self {
        VoiceProfile {
            name: name.to_string(),
            pitch_hz: 300.0,
            formant_scale: 1.35,
        }
    }
}

/// `(F1, F2)` formant pairs of the eight synthetic phonemes.
pub const PHONEMES: [(f64, f64); 8] = [
    (730.0, 1090.0), // /a/
    (270.0, 2290.0), // /i/
    (300.0, 870.0),  // /u/
    (530.0, 1840.0), // /e/
    (570.0, 840.0),  // /o/
    (660.0, 1720.0), // /ae/
    (440.0, 1020.0), // /er/
    (490.0, 1350.0), // /uh/
];

/// Duration of one phoneme in seconds.
pub const PHONEME_SECS: f64 = 0.08;

fn formant_gain(freq: f64, f1: f64, f2: f64) -> f64 {
    let bw = 120.0;
    let res = |f0: f64| 1.0 / (1.0 + ((freq - f0) / bw).powi(2));
    res(f1) + 0.7 * res(f2) + 0.05
}

/// Synthesises one phoneme for `secs` seconds.
pub fn phoneme(profile: &VoiceProfile, phoneme: usize, secs: f64, cfg: &SynthConfig) -> Vec<f64> {
    let (f1, f2) = PHONEMES[phoneme % PHONEMES.len()];
    let (f1, f2) = (f1 * profile.formant_scale, f2 * profile.formant_scale);
    let n = (secs * cfg.sample_rate as f64) as usize;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (phoneme as u64) << 17);
    let jitter = 1.0 + rng.gen_range(-0.02..0.02);
    let f0 = profile.pitch_hz * jitter;
    let nyquist = cfg.sample_rate as f64 / 2.0;
    let nharm = ((nyquist * 0.9) / f0) as usize;
    // Precompute harmonic amplitudes.
    let amps: Vec<f64> = (1..=nharm)
        .map(|h| formant_gain(h as f64 * f0, f1, f2) / (h as f64).sqrt())
        .collect();
    let norm: f64 = amps.iter().sum::<f64>().max(1e-9);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f64 / cfg.sample_rate as f64;
        let mut s = 0.0;
        for (h, &a) in amps.iter().enumerate() {
            s += a * (2.0 * std::f64::consts::PI * (h + 1) as f64 * f0 * t).sin();
        }
        // Gentle on/offset envelope avoids clicks.
        let env = (i.min(n - 1 - i) as f64 / (0.01 * cfg.sample_rate as f64)).min(1.0);
        out.push(0.45 * env * s / norm + 0.005 * rng.gen_range(-1.0..1.0));
    }
    out
}

/// Synthesises a phoneme sequence (a "word" or free speech).
pub fn speech(profile: &VoiceProfile, phonemes: &[usize], cfg: &SynthConfig) -> Vec<f64> {
    let mut out = Vec::new();
    for (i, &p) in phonemes.iter().enumerate() {
        let sub = SynthConfig {
            seed: cfg.seed.wrapping_add(i as u64 * 7919),
            ..*cfg
        };
        out.extend(phoneme(profile, p, PHONEME_SECS, &sub));
    }
    out
}

/// Random free speech of roughly `secs` seconds (text-independent content).
pub fn babble(profile: &VoiceProfile, secs: f64, cfg: &SynthConfig) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xBAB7E);
    let count = (secs / PHONEME_SECS).ceil() as usize;
    let phonemes: Vec<usize> = (0..count)
        .map(|_| rng.gen_range(0..PHONEMES.len()))
        .collect();
    speech(profile, &phonemes, cfg)
}

/// Harmonic "music": arpeggiated pentatonic notes with rich overtones —
/// spectrally stable over much longer spans than speech.
pub fn music(secs: f64, cfg: &SynthConfig) -> Vec<f64> {
    let scale = [262.0, 294.0, 330.0, 392.0, 440.0, 523.0];
    let n = (secs * cfg.sample_rate as f64) as usize;
    let note_len = cfg.sample_rate / 4; // 250 ms notes
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9053C);
    let mut out = Vec::with_capacity(n);
    let mut note = scale[0];
    for i in 0..n {
        if i % note_len == 0 {
            note = scale[rng.gen_range(0..scale.len())];
        }
        let t = i as f64 / cfg.sample_rate as f64;
        let mut s = 0.0;
        for (h, a) in [(1.0, 1.0), (2.0, 0.5), (3.0, 0.33), (4.0, 0.2)] {
            s += a * (2.0 * std::f64::consts::PI * note * h * t).sin();
        }
        let phase = (i % note_len) as f64 / note_len as f64;
        let env = (1.0 - phase).powf(0.3);
        out.push(0.3 * env * s / 2.0);
    }
    out
}

/// White noise at the given RMS amplitude.
pub fn noise(secs: f64, amplitude: f64, cfg: &SynthConfig) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x4015E);
    let n = (secs * cfg.sample_rate as f64) as usize;
    (0..n)
        .map(|_| amplitude * rng.gen_range(-1.0..1.0))
        .collect()
}

/// Near-silence (tiny sensor noise so features stay finite).
pub fn silence(secs: f64, cfg: &SynthConfig) -> Vec<f64> {
    noise(secs, 0.0008, cfg)
}

/// Encodes samples as 16-bit little-endian PCM (the `FLD_DATA` convention
/// of `AUDIO_OBJECTS_TABLE`).
pub fn to_pcm16(samples: &[f64]) -> Vec<u8> {
    samples
        .iter()
        .flat_map(|s| (((s.clamp(-1.0, 1.0)) * 32767.0) as i16).to_le_bytes())
        .collect()
}

/// Decodes 16-bit little-endian PCM back to `f64` samples (a trailing odd
/// byte is ignored).
pub fn from_pcm16(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(2)
        .map(|c| i16::from_le_bytes([c[0], c[1]]) as f64 / 32767.0)
        .collect()
}

/// A labelled audio track: samples plus ground-truth span labels.
#[derive(Debug, Clone, Default)]
pub struct LabeledAudio {
    /// The samples.
    pub samples: Vec<f64>,
    /// Ground truth: sample ranges with labels.
    pub labels: Vec<(Range<usize>, String)>,
}

impl LabeledAudio {
    /// Appends a labelled chunk.
    pub fn push(&mut self, label: &str, samples: Vec<f64>) {
        let start = self.samples.len();
        self.samples.extend(samples);
        self.labels
            .push((start..self.samples.len(), label.to_string()));
    }

    /// The label covering a sample index, if any.
    pub fn label_at(&self, sample: usize) -> Option<&str> {
        self.labels
            .iter()
            .find(|(r, _)| r.contains(&sample))
            .map(|(_, l)| l.as_str())
    }

    /// Total duration in samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Builds a two-or-more-party conversation with speaker-labelled turns
/// (free content per turn — text independence).
pub fn conversation(
    speakers: &[VoiceProfile],
    turns: &[(usize, f64)],
    cfg: &SynthConfig,
) -> LabeledAudio {
    let mut out = LabeledAudio::default();
    for (i, &(who, secs)) in turns.iter().enumerate() {
        let sub = SynthConfig {
            seed: cfg.seed.wrapping_add(0x5151 * (i as u64 + 1)),
            ..*cfg
        };
        let speaker = &speakers[who % speakers.len()];
        out.push(&speaker.name, babble(speaker, secs, &sub));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::magnitude_spectrum;

    #[test]
    fn phoneme_has_pitch_harmonics() {
        let cfg = SynthConfig::default();
        let voice = VoiceProfile::male("m");
        let s = phoneme(&voice, 0, 0.128, &cfg);
        assert_eq!(s.len(), 1024);
        let mag = magnitude_spectrum(&s);
        // The strongest bins must be near multiples of ~115 Hz
        // (bin width = 8000/1024 ≈ 7.8 Hz).
        let peak_bin = mag
            .iter()
            .enumerate()
            .skip(3)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let bin_hz = 8000.0 / 1024.0;
        let freq = peak_bin as f64 * bin_hz;
        let harmonic = (freq / 115.0).round();
        assert!(
            (freq - harmonic * 115.0).abs() < 3.0 * bin_hz,
            "peak at {freq} Hz is not a 115 Hz harmonic"
        );
    }

    #[test]
    fn different_speakers_sound_different() {
        let cfg = SynthConfig::default();
        let a = phoneme(&VoiceProfile::male("m"), 0, 0.1, &cfg);
        let b = phoneme(&VoiceProfile::female("f"), 0, 0.1, &cfg);
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1.0);
    }

    #[test]
    fn speech_duration_matches() {
        let cfg = SynthConfig::default();
        let s = speech(&VoiceProfile::male("m"), &[0, 1, 2], &cfg);
        assert_eq!(s.len(), 3 * (0.08 * 8000.0) as usize);
    }

    #[test]
    fn amplitudes_are_sane() {
        let cfg = SynthConfig::default();
        for signal in [
            babble(&VoiceProfile::female("f"), 0.5, &cfg),
            music(0.5, &cfg),
            noise(0.5, 0.1, &cfg),
            silence(0.5, &cfg),
        ] {
            let peak = signal.iter().fold(0.0f64, |m, &s| m.max(s.abs()));
            assert!(peak <= 2.0, "peak {peak}");
        }
        let quiet = silence(0.2, &cfg);
        let rms = (quiet.iter().map(|s| s * s).sum::<f64>() / quiet.len() as f64).sqrt();
        assert!(rms < 0.01);
    }

    #[test]
    fn pcm16_roundtrip() {
        let cfg = SynthConfig::default();
        let samples = babble(&VoiceProfile::male("m"), 0.2, &cfg);
        let bytes = to_pcm16(&samples);
        assert_eq!(bytes.len(), samples.len() * 2);
        let back = from_pcm16(&bytes);
        for (a, b) in samples.iter().zip(&back) {
            assert!((a - b).abs() < 1.0 / 32000.0 + 1e-4);
        }
        // Clipping is clamped, odd tails ignored.
        let loud = to_pcm16(&[2.0, -2.0]);
        let back = from_pcm16(&loud);
        assert!((back[0] - 1.0).abs() < 1e-3 && (back[1] + 1.0).abs() < 1e-3);
        assert_eq!(from_pcm16(&[1, 2, 3]).len(), 1);
    }

    #[test]
    fn conversation_labels_cover_everything() {
        let cfg = SynthConfig::default();
        let speakers = [VoiceProfile::male("alice"), VoiceProfile::female("bob")];
        let track = conversation(&speakers, &[(0, 0.4), (1, 0.3), (0, 0.2)], &cfg);
        assert_eq!(track.labels.len(), 3);
        assert_eq!(track.labels[0].1, "alice");
        assert_eq!(track.labels[1].1, "bob");
        let total: usize = track.labels.iter().map(|(r, _)| r.len()).sum();
        assert_eq!(total, track.len());
        assert_eq!(track.label_at(0), Some("alice"));
        assert_eq!(track.label_at(track.len() - 1), Some("alice"));
        assert_eq!(track.label_at(track.len()), None);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let cfg = SynthConfig::default();
        let a = babble(&VoiceProfile::male("m"), 0.3, &cfg);
        let b = babble(&VoiceProfile::male("m"), 0.3, &cfg);
        assert_eq!(a, b);
        let c = babble(
            &VoiceProfile::male("m"),
            0.3,
            &SynthConfig { seed: 99, ..cfg },
        );
        assert_ne!(a, c);
    }
}
