//! Frame-level acoustic features: log-energy, zero-crossing rate, and
//! mel-cepstral coefficients (the front end of every CD-HMM in this crate).

use crate::fft::magnitude_spectrum;

/// Feature extraction parameters.
#[derive(Debug, Clone, Copy)]
pub struct FeatureConfig {
    /// Samples per frame (power of two for the FFT).
    pub frame_len: usize,
    /// Hop between frame starts.
    pub hop: usize,
    /// Number of mel filterbank channels.
    pub n_filters: usize,
    /// Number of cepstral coefficients kept (c1..cN; c0 is replaced by
    /// the explicit log-energy feature).
    pub n_ceps: usize,
    /// Sample rate in Hz.
    pub sample_rate: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            frame_len: 256,
            hop: 128,
            n_filters: 20,
            n_ceps: 10,
            sample_rate: crate::SAMPLE_RATE,
        }
    }
}

impl FeatureConfig {
    /// Feature vector dimensionality: log-energy + ZCR + cepstra.
    pub fn dims(&self) -> usize {
        2 + self.n_ceps
    }

    /// Number of frames a signal of `n` samples produces.
    pub fn num_frames(&self, n: usize) -> usize {
        if n < self.frame_len {
            0
        } else {
            (n - self.frame_len) / self.hop + 1
        }
    }

    /// Seconds per frame hop.
    pub fn hop_secs(&self) -> f64 {
        self.hop as f64 / self.sample_rate as f64
    }

    /// Converts a frame index to its centre sample.
    pub fn frame_center(&self, frame: usize) -> usize {
        frame * self.hop + self.frame_len / 2
    }
}

fn hamming(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 0.54 - 0.46 * (2.0 * std::f64::consts::PI * i as f64 / (n - 1) as f64).cos())
        .collect()
}

fn mel(f: f64) -> f64 {
    2595.0 * (1.0 + f / 700.0).log10()
}

fn mel_inv(m: f64) -> f64 {
    700.0 * (10f64.powf(m / 2595.0) - 1.0)
}

/// Triangular mel filterbank: `n_filters` rows over `n_bins` FFT bins.
fn filterbank(cfg: &FeatureConfig, n_bins: usize) -> Vec<Vec<f64>> {
    let f_lo = 80.0;
    let f_hi = cfg.sample_rate as f64 / 2.0;
    let m_lo = mel(f_lo);
    let m_hi = mel(f_hi);
    let centers: Vec<f64> = (0..cfg.n_filters + 2)
        .map(|i| mel_inv(m_lo + (m_hi - m_lo) * i as f64 / (cfg.n_filters + 1) as f64))
        .collect();
    let bin_hz = cfg.sample_rate as f64 / cfg.frame_len as f64;
    let mut bank = vec![vec![0.0; n_bins]; cfg.n_filters];
    for (fi, row) in bank.iter_mut().enumerate() {
        let (l, c, r) = (centers[fi], centers[fi + 1], centers[fi + 2]);
        for (b, w) in row.iter_mut().enumerate() {
            let f = b as f64 * bin_hz;
            *w = if f >= l && f <= c {
                (f - l) / (c - l).max(1e-9)
            } else if f > c && f <= r {
                (r - f) / (r - c).max(1e-9)
            } else {
                0.0
            };
        }
    }
    bank
}

/// DCT-II of a vector (orthonormal), returning `n_out` coefficients
/// starting from index 1 (c0 excluded).
fn dct_ceps(log_energies: &[f64], n_out: usize) -> Vec<f64> {
    let n = log_energies.len();
    (1..=n_out)
        .map(|k| {
            let s: f64 = log_energies
                .iter()
                .enumerate()
                .map(|(i, &e)| {
                    e * ((2 * i + 1) as f64 * k as f64 * std::f64::consts::PI / (2.0 * n as f64))
                        .cos()
                })
                .sum();
            s * (2.0 / n as f64).sqrt()
        })
        .collect()
}

/// Extracts per-frame feature vectors `[log-energy, ZCR, c1..cN]`.
pub fn extract_features(samples: &[f64], cfg: &FeatureConfig) -> Vec<Vec<f64>> {
    static LAT: rcmo_obs::LazyHistogram =
        rcmo_obs::LazyHistogram::new("audio.features.us", rcmo_obs::bounds::LATENCY_US);
    let _t = LAT.start_timer();
    let nframes = cfg.num_frames(samples.len());
    if nframes == 0 {
        return Vec::new();
    }
    let window = hamming(cfg.frame_len);
    let n_bins = cfg.frame_len / 2 + 1;
    let bank = filterbank(cfg, n_bins);
    let mut out = Vec::with_capacity(nframes);
    for f in 0..nframes {
        let start = f * cfg.hop;
        let frame = &samples[start..start + cfg.frame_len];
        // Log energy.
        let energy: f64 = frame.iter().map(|s| s * s).sum::<f64>() / cfg.frame_len as f64;
        let log_energy = (energy + 1e-10).ln();
        // Zero-crossing rate.
        let zcr = frame
            .windows(2)
            .filter(|w| (w[0] >= 0.0) != (w[1] >= 0.0))
            .count() as f64
            / (cfg.frame_len - 1) as f64;
        // Windowed spectrum → mel filterbank → log → DCT.
        let windowed: Vec<f64> = frame.iter().zip(&window).map(|(s, w)| s * w).collect();
        let mag = magnitude_spectrum(&windowed);
        let fb: Vec<f64> = bank
            .iter()
            .map(|row| {
                let e: f64 = row.iter().zip(&mag).map(|(w, m)| w * m * m).sum();
                (e + 1e-10).ln()
            })
            .collect();
        let mut vec = Vec::with_capacity(cfg.dims());
        vec.push(log_energy);
        vec.push(zcr * 10.0); // scale into a comparable range
        vec.extend(dct_ceps(&fb, cfg.n_ceps));
        out.push(vec);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{babble, music, silence, SynthConfig, VoiceProfile};

    fn cfg() -> FeatureConfig {
        FeatureConfig::default()
    }

    #[test]
    fn frame_counting() {
        let c = cfg();
        assert_eq!(c.num_frames(0), 0);
        assert_eq!(c.num_frames(255), 0);
        assert_eq!(c.num_frames(256), 1);
        assert_eq!(c.num_frames(256 + 128), 2);
        assert_eq!(c.dims(), 12);
    }

    #[test]
    fn silence_has_low_energy() {
        let synth = SynthConfig::default();
        let c = cfg();
        let quiet = extract_features(&silence(0.5, &synth), &c);
        let loud = extract_features(&babble(&VoiceProfile::male("m"), 0.5, &synth), &c);
        let mean_energy = |fs: &[Vec<f64>]| fs.iter().map(|f| f[0]).sum::<f64>() / fs.len() as f64;
        assert!(mean_energy(&quiet) < mean_energy(&loud) - 3.0);
    }

    #[test]
    fn noise_has_high_zcr() {
        let synth = SynthConfig::default();
        let c = cfg();
        let noisy = extract_features(&crate::synth::noise(0.5, 0.1, &synth), &c);
        let voiced = extract_features(&babble(&VoiceProfile::male("m"), 0.5, &synth), &c);
        let mean_zcr = |fs: &[Vec<f64>]| fs.iter().map(|f| f[1]).sum::<f64>() / fs.len() as f64;
        assert!(mean_zcr(&noisy) > mean_zcr(&voiced) * 1.5);
    }

    #[test]
    fn speech_and_music_have_distinct_cepstra() {
        let synth = SynthConfig::default();
        let c = cfg();
        let sp = extract_features(&babble(&VoiceProfile::male("m"), 1.0, &synth), &c);
        let mu = extract_features(&music(1.0, &synth), &c);
        let mean_vec = |fs: &[Vec<f64>]| -> Vec<f64> {
            let mut m = vec![0.0; fs[0].len()];
            for f in fs {
                for (a, b) in m.iter_mut().zip(f) {
                    *a += b;
                }
            }
            m.iter().map(|v| v / fs.len() as f64).collect()
        };
        let (ms, mm) = (mean_vec(&sp), mean_vec(&mu));
        let dist: f64 = ms[2..]
            .iter()
            .zip(&mm[2..])
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 1.0, "cepstral distance {dist}");
    }

    #[test]
    fn features_are_finite() {
        let synth = SynthConfig::default();
        let c = cfg();
        for signal in [
            silence(0.3, &synth),
            vec![0.0; 2048],
            babble(&VoiceProfile::child("k"), 0.3, &synth),
        ] {
            for frame in extract_features(&signal, &c) {
                assert!(frame.iter().all(|v| v.is_finite()));
                assert_eq!(frame.len(), c.dims());
            }
        }
    }

    #[test]
    fn filterbank_covers_spectrum() {
        let c = cfg();
        let bank = filterbank(&c, c.frame_len / 2 + 1);
        assert_eq!(bank.len(), c.n_filters);
        // Every filter has some mass; middle bins are covered by some filter.
        for row in &bank {
            assert!(row.iter().sum::<f64>() > 0.0);
        }
        let coverage: Vec<f64> = (0..c.frame_len / 2 + 1)
            .map(|b| bank.iter().map(|r| r[b]).sum())
            .collect();
        let covered = coverage[4..c.frame_len / 2]
            .iter()
            .filter(|&&v| v > 0.0)
            .count();
        assert!(covered as f64 > 0.9 * (c.frame_len / 2 - 4) as f64);
    }
}
