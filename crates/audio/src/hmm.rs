//! Continuous-density hidden Markov models with Gaussian-mixture emissions —
//! "the main tool by means of which the above algorithms was implemented"
//! (paper §3). Forward/backward run in log space; Baum–Welch re-estimates
//! initial, transition, and emission parameters, preserving structural zeros
//! (so a left-right topology stays left-right).

use crate::gmm::DiagGmm;

fn log_sum_exp(xs: impl Iterator<Item = f64>) -> f64 {
    let xs: Vec<f64> = xs.collect();
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

const LOG_ZERO: f64 = f64::NEG_INFINITY;

/// A continuous-density HMM.
#[derive(Debug, Clone)]
pub struct Hmm {
    log_pi: Vec<f64>,
    log_trans: Vec<Vec<f64>>,
    states: Vec<DiagGmm>,
}

impl Hmm {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Emission mixture of one state.
    pub fn state(&self, j: usize) -> &DiagGmm {
        &self.states[j]
    }

    /// Builds a left-right (Bakis) chain: start in state 0, each state
    /// self-loops with `self_prob` and advances with `1 − self_prob`; the
    /// last state only self-loops.
    pub fn left_right(states: Vec<DiagGmm>, self_prob: f64) -> Hmm {
        let n = states.len();
        assert!(n > 0);
        assert!((0.0..1.0).contains(&self_prob));
        let mut log_pi = vec![LOG_ZERO; n];
        log_pi[0] = 0.0;
        let mut log_trans = vec![vec![LOG_ZERO; n]; n];
        for j in 0..n {
            if j + 1 < n {
                log_trans[j][j] = self_prob.ln();
                log_trans[j][j + 1] = (1.0 - self_prob).ln();
            } else {
                log_trans[j][j] = 0.0;
            }
        }
        Hmm {
            log_pi,
            log_trans,
            states,
        }
    }

    /// Builds a fully connected (ergodic) model with `self_prob` self-loops
    /// and the remaining mass spread uniformly.
    pub fn ergodic(states: Vec<DiagGmm>, self_prob: f64) -> Hmm {
        let n = states.len();
        assert!(n > 0);
        let other = if n > 1 {
            ((1.0 - self_prob) / (n - 1) as f64).ln()
        } else {
            LOG_ZERO
        };
        let log_pi = vec![(1.0 / n as f64).ln(); n];
        let mut log_trans = vec![vec![other; n]; n];
        for (j, row) in log_trans.iter_mut().enumerate() {
            row[j] = if n > 1 { self_prob.ln() } else { 0.0 };
        }
        Hmm {
            log_pi,
            log_trans,
            states,
        }
    }

    fn emissions(&self, obs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        obs.iter()
            .map(|x| self.states.iter().map(|g| g.log_likelihood(x)).collect())
            .collect()
    }

    fn forward(&self, emit: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let n = self.num_states();
        let t_len = emit.len();
        let mut alpha = vec![vec![LOG_ZERO; n]; t_len];
        for j in 0..n {
            alpha[0][j] = self.log_pi[j] + emit[0][j];
        }
        for t in 1..t_len {
            for j in 0..n {
                let lse = log_sum_exp((0..n).map(|i| alpha[t - 1][i] + self.log_trans[i][j]));
                alpha[t][j] = lse + emit[t][j];
            }
        }
        alpha
    }

    fn backward(&self, emit: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let n = self.num_states();
        let t_len = emit.len();
        let mut beta = vec![vec![0.0; n]; t_len];
        for t in (0..t_len.saturating_sub(1)).rev() {
            for i in 0..n {
                beta[t][i] = log_sum_exp(
                    (0..n).map(|j| self.log_trans[i][j] + emit[t + 1][j] + beta[t + 1][j]),
                );
            }
        }
        beta
    }

    /// Log likelihood of an observation sequence (empty → 0).
    pub fn log_likelihood(&self, obs: &[Vec<f64>]) -> f64 {
        if obs.is_empty() {
            return 0.0;
        }
        let emit = self.emissions(obs);
        let alpha = self.forward(&emit);
        log_sum_exp(alpha.last().expect("nonempty").iter().cloned())
    }

    /// Per-frame average log likelihood (length-normalised score used by
    /// the spotting modules).
    pub fn score(&self, obs: &[Vec<f64>]) -> f64 {
        if obs.is_empty() {
            return f64::NEG_INFINITY;
        }
        self.log_likelihood(obs) / obs.len() as f64
    }

    /// Viterbi decoding: the most likely state path and its log probability.
    pub fn viterbi(&self, obs: &[Vec<f64>]) -> (Vec<usize>, f64) {
        if obs.is_empty() {
            return (Vec::new(), 0.0);
        }
        let n = self.num_states();
        let emit = self.emissions(obs);
        let t_len = obs.len();
        let mut delta = vec![vec![LOG_ZERO; n]; t_len];
        let mut psi = vec![vec![0usize; n]; t_len];
        for j in 0..n {
            delta[0][j] = self.log_pi[j] + emit[0][j];
        }
        for t in 1..t_len {
            for j in 0..n {
                let (best_i, best) = (0..n)
                    .map(|i| (i, delta[t - 1][i] + self.log_trans[i][j]))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .expect("n > 0");
                delta[t][j] = best + emit[t][j];
                psi[t][j] = best_i;
            }
        }
        let (mut state, logp) = delta[t_len - 1]
            .iter()
            .enumerate()
            .map(|(j, &v)| (j, v))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .expect("n > 0");
        let mut path = vec![0usize; t_len];
        path[t_len - 1] = state;
        for t in (1..t_len).rev() {
            state = psi[t][state];
            path[t - 1] = state;
        }
        (path, logp)
    }

    /// One Baum–Welch iteration over multiple sequences. Returns the total
    /// log likelihood *before* the update (for convergence monitoring).
    #[allow(clippy::needless_range_loop)] // index-coupled accumulators
    pub fn baum_welch_step(&mut self, sequences: &[&[Vec<f64>]]) -> f64 {
        let n = self.num_states();
        let mut total_ll = 0.0;
        let mut pi_acc = vec![0.0f64; n];
        let mut trans_acc = vec![vec![0.0f64; n]; n];
        // Per-state: flattened frames + occupancy weights for the GMM update.
        let mut frames: Vec<Vec<f64>> = Vec::new();
        let mut occupancy: Vec<Vec<f64>> = vec![Vec::new(); n];
        for seq in sequences {
            if seq.is_empty() {
                continue;
            }
            let emit = self.emissions(seq);
            let alpha = self.forward(&emit);
            let beta = self.backward(&emit);
            let ll = log_sum_exp(alpha.last().expect("nonempty").iter().cloned());
            total_ll += ll;
            let t_len = seq.len();
            for t in 0..t_len {
                frames.push(seq[t].clone());
                for j in 0..n {
                    let gamma = (alpha[t][j] + beta[t][j] - ll).exp();
                    occupancy[j].push(gamma);
                    if t == 0 {
                        pi_acc[j] += gamma;
                    }
                }
            }
            for t in 0..t_len - 1 {
                for i in 0..n {
                    if alpha[t][i] == LOG_ZERO {
                        continue;
                    }
                    for j in 0..n {
                        if self.log_trans[i][j] == LOG_ZERO {
                            continue;
                        }
                        let xi =
                            (alpha[t][i] + self.log_trans[i][j] + emit[t + 1][j] + beta[t + 1][j]
                                - ll)
                                .exp();
                        trans_acc[i][j] += xi;
                    }
                }
            }
        }
        // Update π.
        let pi_total: f64 = pi_acc.iter().sum();
        if pi_total > 1e-12 {
            for j in 0..n {
                self.log_pi[j] = if pi_acc[j] > 1e-12 {
                    (pi_acc[j] / pi_total).ln()
                } else {
                    LOG_ZERO
                };
            }
        }
        // Update transitions (structural zeros stay zero).
        for i in 0..n {
            let row_total: f64 = trans_acc[i].iter().sum();
            if row_total < 1e-12 {
                continue;
            }
            for j in 0..n {
                if self.log_trans[i][j] != LOG_ZERO {
                    self.log_trans[i][j] = if trans_acc[i][j] > 1e-12 {
                        (trans_acc[i][j] / row_total).ln()
                    } else {
                        LOG_ZERO
                    };
                }
            }
        }
        // Update emissions.
        for j in 0..n {
            self.states[j].weighted_em_step(&frames, &occupancy[j]);
        }
        total_ll
    }

    /// Runs `iters` Baum–Welch iterations; returns the log-likelihood trace
    /// (one entry per iteration, computed before each update).
    pub fn train(&mut self, sequences: &[&[Vec<f64>]], iters: usize) -> Vec<f64> {
        (0..iters)
            .map(|_| self.baum_welch_step(sequences))
            .collect()
    }

    /// Flat-start initialisation for a left-right model: every training
    /// sequence is cut into `n_states` equal spans; span `j` trains state
    /// `j`'s mixture.
    pub fn flat_start_left_right(
        sequences: &[&[Vec<f64>]],
        n_states: usize,
        n_mix: usize,
        self_prob: f64,
        seed: u64,
    ) -> Hmm {
        let mut buckets: Vec<Vec<Vec<f64>>> = vec![Vec::new(); n_states];
        for seq in sequences {
            let t_len = seq.len();
            for (t, frame) in seq.iter().enumerate() {
                let j = (t * n_states / t_len.max(1)).min(n_states - 1);
                buckets[j].push(frame.clone());
            }
        }
        let states: Vec<DiagGmm> = buckets
            .iter()
            .enumerate()
            .map(|(j, b)| {
                assert!(
                    !b.is_empty(),
                    "flat start: state {j} received no frames (sequences too short)"
                );
                DiagGmm::train(b, n_mix, 8, seed.wrapping_add(j as u64))
            })
            .collect();
        Hmm::left_right(states, self_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-D mixture centred at `mu`.
    fn gauss_state(mu: f64, var: f64) -> DiagGmm {
        DiagGmm::from_parameters(vec![1.0], vec![vec![mu]], vec![vec![var]])
    }

    fn seq(values: &[f64]) -> Vec<Vec<f64>> {
        values.iter().map(|&v| vec![v]).collect()
    }

    #[test]
    fn viterbi_tracks_state_change() {
        let hmm = Hmm::left_right(vec![gauss_state(0.0, 0.5), gauss_state(10.0, 0.5)], 0.7);
        let obs = seq(&[0.1, -0.2, 0.05, 9.8, 10.2, 9.9]);
        let (path, logp) = hmm.viterbi(&obs);
        assert_eq!(path, vec![0, 0, 0, 1, 1, 1]);
        assert!(logp.is_finite());
    }

    #[test]
    fn left_right_never_goes_back() {
        let hmm = Hmm::left_right(
            vec![
                gauss_state(0.0, 1.0),
                gauss_state(5.0, 1.0),
                gauss_state(-5.0, 1.0),
            ],
            0.5,
        );
        // Even though the tail matches state 0 better, a left-right path
        // cannot return.
        let obs = seq(&[0.0, 5.0, -5.0, -5.0, 0.1]);
        let (path, _) = hmm.viterbi(&obs);
        for w in path.windows(2) {
            assert!(w[1] >= w[0], "path went backwards: {path:?}");
        }
    }

    #[test]
    fn likelihood_prefers_matching_sequences() {
        let hmm = Hmm::left_right(vec![gauss_state(0.0, 1.0), gauss_state(8.0, 1.0)], 0.6);
        let good = seq(&[0.0, 0.3, 7.8, 8.1]);
        let bad = seq(&[8.0, 8.0, 0.0, 0.0]); // reversed order
        assert!(hmm.log_likelihood(&good) > hmm.log_likelihood(&bad) + 5.0);
    }

    #[test]
    fn ergodic_allows_any_order() {
        let hmm = Hmm::ergodic(vec![gauss_state(0.0, 1.0), gauss_state(8.0, 1.0)], 0.6);
        let ba = seq(&[8.0, 0.0, 8.0, 0.0]);
        let (path, _) = hmm.viterbi(&ba);
        assert_eq!(path, vec![1, 0, 1, 0]);
    }

    #[test]
    fn baum_welch_increases_likelihood() {
        // Start with poorly placed means; BW must improve the fit.
        let mut hmm = Hmm::left_right(vec![gauss_state(1.0, 4.0), gauss_state(3.0, 4.0)], 0.5);
        let train1 = seq(&[0.0, 0.2, -0.1, 0.1, 9.9, 10.1, 10.0, 9.8]);
        let train2 = seq(&[0.1, -0.2, 0.0, 10.2, 10.0, 9.9]);
        let seqs: Vec<&[Vec<f64>]> = vec![&train1, &train2];
        let trace = hmm.train(&seqs, 12);
        assert!(trace.last().unwrap() > &(trace[0] + 1.0), "trace {trace:?}");
        // The learned means straddle the two clusters.
        let (path, _) = hmm.viterbi(&train1);
        assert_eq!(path[0], 0);
        assert_eq!(*path.last().unwrap(), 1);
    }

    #[test]
    fn flat_start_builds_sane_model() {
        let a = seq(&[0.0, 0.1, -0.1, 5.0, 5.1, 4.9, 10.0, 10.1, 9.9]);
        let b = seq(&[0.2, -0.2, 0.0, 4.8, 5.2, 5.0, 10.2, 9.8, 10.0]);
        let seqs: Vec<&[Vec<f64>]> = vec![&a, &b];
        let hmm = Hmm::flat_start_left_right(&seqs, 3, 1, 0.5, 0);
        assert_eq!(hmm.num_states(), 3);
        let (path, _) = hmm.viterbi(&a);
        assert_eq!(path, vec![0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn empty_sequence_is_harmless() {
        let hmm = Hmm::left_right(vec![gauss_state(0.0, 1.0)], 0.5);
        assert_eq!(hmm.log_likelihood(&[]), 0.0);
        let (path, _) = hmm.viterbi(&[]);
        assert!(path.is_empty());
        assert_eq!(hmm.score(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn score_is_length_normalised() {
        let hmm = Hmm::left_right(vec![gauss_state(0.0, 1.0)], 0.5);
        let short = seq(&[0.0, 0.0]);
        let long = seq(&[0.0; 20]);
        assert!((hmm.score(&short) - hmm.score(&long)).abs() < 0.1);
    }
}
