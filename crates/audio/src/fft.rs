//! In-place radix-2 Cooley–Tukey FFT.

/// A complex number as `(re, im)`.
pub type Complex = (f64, f64);

/// In-place FFT of a power-of-two-length buffer. Set `inverse` for the
/// inverse transform (includes the 1/n scale).
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn fft(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length {n} not a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            buf.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ar, ai) = buf[start + k];
                let (br, bi) = buf[start + k + len / 2];
                let (tr, ti) = (br * cr - bi * ci, br * ci + bi * cr);
                buf[start + k] = (ar + tr, ai + ti);
                buf[start + k + len / 2] = (ar - tr, ai - ti);
                let (ncr, nci) = (cr * wr - ci * wi, cr * wi + ci * wr);
                cr = ncr;
                ci = nci;
            }
        }
        len <<= 1;
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for v in buf.iter_mut() {
            v.0 *= scale;
            v.1 *= scale;
        }
    }
}

/// Magnitude spectrum of a real signal: returns `n/2 + 1` magnitudes.
/// The input is zero-padded to the next power of two.
pub fn magnitude_spectrum(signal: &[f64]) -> Vec<f64> {
    let n = signal.len().next_power_of_two().max(2);
    let mut buf: Vec<Complex> = signal.iter().map(|&s| (s, 0.0)).collect();
    buf.resize(n, (0.0, 0.0));
    fft(&mut buf, false);
    buf[..n / 2 + 1]
        .iter()
        .map(|&(re, im)| (re * re + im * im).sqrt())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn roundtrip() {
        let orig: Vec<Complex> = (0..64)
            .map(|i| ((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut buf = orig.clone();
        fft(&mut buf, false);
        fft(&mut buf, true);
        for (a, b) in orig.iter().zip(&buf) {
            assert!(close(a.0, b.0) && close(a.1, b.1));
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut buf = vec![(0.0, 0.0); 16];
        buf[0] = (1.0, 0.0);
        fft(&mut buf, false);
        for &(re, im) in &buf {
            assert!(close(re, 1.0) && close(im, 0.0));
        }
    }

    #[test]
    fn pure_tone_peaks_at_its_bin() {
        let n = 256;
        let k = 19;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64).sin())
            .collect();
        let mag = magnitude_spectrum(&signal);
        let peak = mag
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, k);
    }

    #[test]
    fn parseval() {
        let signal: Vec<Complex> = (0..128).map(|i| ((i as f64).sin() * 3.0, 0.0)).collect();
        let e_time: f64 = signal.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum();
        let mut buf = signal;
        fft(&mut buf, false);
        let e_freq: f64 = buf.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum::<f64>() / 128.0;
        assert!((e_time - e_freq).abs() < 1e-6 * e_time.max(1.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        let mut buf = vec![(0.0, 0.0); 12];
        fft(&mut buf, false);
    }
}
