//! Speech-type segmentation: "segmenting speech data into various types of
//! speech signals such as male speech, female speech, child speech" (paper
//! §3). Classification rides on fundamental-frequency (pitch) estimation by
//! normalised autocorrelation, the classic voiced-speech discriminator.

use crate::features::FeatureConfig;
use crate::segment::{merge_segments, AudioClass, Segment, SegmenterModel};
use std::ops::Range;

/// Speech sub-types distinguished by pitch range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpeechKind {
    /// Typical adult male range (≈ 80–160 Hz).
    Male,
    /// Typical adult female range (≈ 160–255 Hz).
    Female,
    /// Typical child range (≳ 255 Hz).
    Child,
}

impl SpeechKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SpeechKind::Male => "male",
            SpeechKind::Female => "female",
            SpeechKind::Child => "child",
        }
    }

    /// Classifies a fundamental frequency in Hz.
    pub fn from_pitch(f0: f64) -> SpeechKind {
        if f0 < 160.0 {
            SpeechKind::Male
        } else if f0 < 255.0 {
            SpeechKind::Female
        } else {
            SpeechKind::Child
        }
    }
}

/// Pitch search band in Hz (covers male fundamentals up to children's).
pub const PITCH_MIN_HZ: f64 = 70.0;
/// Upper end of the pitch search band.
pub const PITCH_MAX_HZ: f64 = 420.0;

/// Estimates the fundamental frequency of one frame by normalised
/// autocorrelation. Returns `None` for unvoiced/silent frames (no lag with
/// a normalised correlation above `voicing_threshold`).
pub fn pitch_of_frame(frame: &[f64], sample_rate: usize, voicing_threshold: f64) -> Option<f64> {
    let n = frame.len();
    let energy: f64 = frame.iter().map(|s| s * s).sum();
    if energy < 1e-6 {
        return None;
    }
    let lag_min = (sample_rate as f64 / PITCH_MAX_HZ).floor() as usize;
    let lag_max = ((sample_rate as f64 / PITCH_MIN_HZ).ceil() as usize).min(n - 1);
    if lag_min >= lag_max {
        return None;
    }
    let corr_at = |lag: usize| -> f64 {
        let mut num = 0.0;
        let mut e1 = 0.0;
        let mut e2 = 0.0;
        for i in 0..n - lag {
            num += frame[i] * frame[i + lag];
            e1 += frame[i] * frame[i];
            e2 += frame[i + lag] * frame[i + lag];
        }
        let denom = (e1 * e2).sqrt();
        if denom < 1e-12 {
            0.0
        } else {
            num / denom
        }
    };
    let corrs: Vec<f64> = (lag_min..=lag_max).map(corr_at).collect();
    let best = corrs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if best < voicing_threshold {
        return None;
    }
    // Octave-error guard: a lag of 2T or 4T correlates as well as the true
    // period T, so take the *smallest* lag within a whisker of the best.
    let lag = corrs
        .iter()
        .position(|&c| c >= best - 0.03)
        .map(|i| i + lag_min)
        .expect("best exists");
    Some(sample_rate as f64 / lag as f64)
}

/// Per-frame pitch track over a signal (frame grid from [`FeatureConfig`]).
pub fn pitch_track(samples: &[f64], cfg: &FeatureConfig) -> Vec<Option<f64>> {
    let nframes = cfg.num_frames(samples.len());
    (0..nframes)
        .map(|f| {
            let start = f * cfg.hop;
            pitch_of_frame(
                &samples[start..start + cfg.frame_len],
                cfg.sample_rate,
                0.55,
            )
        })
        .collect()
}

/// Median of the voiced pitches within a frame range, if at least
/// `min_voiced` frames are voiced.
pub fn median_pitch(track: &[Option<f64>], frames: Range<usize>, min_voiced: usize) -> Option<f64> {
    let mut voiced: Vec<f64> = track[frames.start.min(track.len())..frames.end.min(track.len())]
        .iter()
        .flatten()
        .copied()
        .collect();
    if voiced.len() < min_voiced {
        return None;
    }
    voiced.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Some(voiced[voiced.len() / 2])
}

/// A speech segment refined with its speaker type.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeechSegment {
    /// Frame range of the segment.
    pub frames: Range<usize>,
    /// The sub-type (`None` when too little voicing to decide).
    pub kind: Option<SpeechKind>,
    /// Median fundamental frequency of the segment, when voiced.
    pub median_f0: Option<f64>,
}

/// Runs the class segmenter, then refines every `Speech` segment with a
/// pitch-based male/female/child label. Non-speech segments pass through in
/// the first return value untouched.
pub fn segment_speech_kinds(
    model: &SegmenterModel,
    samples: &[f64],
) -> (Vec<Segment>, Vec<SpeechSegment>) {
    let labels = crate::segment::median_smooth(&model.classify_frames(samples), 5);
    let segments = merge_segments(&labels);
    let track = pitch_track(samples, model.features());
    let speech = segments
        .iter()
        .filter(|s| s.class == AudioClass::Speech)
        .map(|s| {
            let median_f0 = median_pitch(&track, s.frames.clone(), 5);
            SpeechSegment {
                frames: s.frames.clone(),
                kind: median_f0.map(SpeechKind::from_pitch),
                median_f0,
            }
        })
        .collect();
    (segments, speech)
}

/// Splits one speech span into sub-segments wherever the smoothed pitch
/// crosses a kind boundary (male↔female↔child turns inside one speech
/// segment, e.g. a dialogue without pauses).
pub fn split_by_kind(
    track: &[Option<f64>],
    frames: Range<usize>,
    min_len: usize,
) -> Vec<SpeechSegment> {
    // Smooth the per-frame kinds with a small median window first.
    let kinds: Vec<Option<SpeechKind>> = (frames.start..frames.end)
        .map(|f| {
            let lo = f.saturating_sub(4).max(frames.start);
            let hi = (f + 5).min(frames.end);
            median_pitch(track, lo..hi, 3).map(SpeechKind::from_pitch)
        })
        .collect();
    let mut out: Vec<SpeechSegment> = Vec::new();
    let base = frames.start;
    let mut start = 0usize;
    for i in 1..=kinds.len() {
        if i == kinds.len() || kinds[i] != kinds[start] {
            if i - start >= min_len {
                out.push(SpeechSegment {
                    frames: base + start..base + i,
                    kind: kinds[start],
                    median_f0: median_pitch(track, base + start..base + i, 1),
                });
            } else if let Some(last) = out.last_mut() {
                // Absorb a too-short run into the previous segment.
                last.frames.end = base + i;
            }
            start = i;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{self, SynthConfig, VoiceProfile};

    fn cfg() -> FeatureConfig {
        FeatureConfig::default()
    }

    #[test]
    fn pitch_of_pure_tone() {
        let sr = 8_000usize;
        for f0 in [100.0f64, 200.0, 320.0] {
            let frame: Vec<f64> = (0..512)
                .map(|i| (2.0 * std::f64::consts::PI * f0 * i as f64 / sr as f64).sin())
                .collect();
            let est = pitch_of_frame(&frame, sr, 0.5).expect("voiced");
            assert!(
                (est - f0).abs() / f0 < 0.08,
                "estimated {est:.1} Hz for a {f0:.0} Hz tone"
            );
        }
    }

    #[test]
    fn silence_and_noise_are_unvoiced() {
        let synth = SynthConfig::default();
        assert!(pitch_of_frame(&vec![0.0; 512], 8_000, 0.5).is_none());
        let noise = synth::noise(0.1, 0.1, &synth);
        let voiced = pitch_track(&noise, &cfg())
            .iter()
            .filter(|p| p.is_some())
            .count();
        let total = cfg().num_frames(noise.len());
        assert!(voiced * 3 < total, "{voiced}/{total} noise frames voiced");
    }

    #[test]
    fn synthetic_voices_classify_correctly() {
        let synth = SynthConfig::default();
        let c = cfg();
        for (voice, want) in [
            (VoiceProfile::male("m"), SpeechKind::Male),
            (VoiceProfile::female("f"), SpeechKind::Female),
            (VoiceProfile::child("c"), SpeechKind::Child),
        ] {
            let audio = synth::babble(&voice, 1.0, &synth);
            let track = pitch_track(&audio, &c);
            let f0 = median_pitch(&track, 0..track.len(), 5).expect("voiced speech");
            assert_eq!(
                SpeechKind::from_pitch(f0),
                want,
                "{}: median f0 {f0:.1} Hz",
                voice.name
            );
        }
    }

    #[test]
    fn speech_segments_get_kinds() {
        let synth = SynthConfig {
            seed: 77,
            ..SynthConfig::default()
        };
        let model = SegmenterModel::train_default(3);
        let mut track = synth::silence(0.5, &synth);
        track.extend(synth::babble(&VoiceProfile::male("m"), 1.2, &synth));
        let (segments, speech) = segment_speech_kinds(&model, &track);
        assert!(!segments.is_empty());
        assert_eq!(speech.len(), 1, "{speech:?}");
        assert_eq!(speech[0].kind, Some(SpeechKind::Male));
    }

    #[test]
    fn dialogue_splits_at_kind_boundaries() {
        let synth = SynthConfig {
            seed: 5,
            ..SynthConfig::default()
        };
        let c = cfg();
        let mut audio = synth::babble(&VoiceProfile::male("m"), 1.2, &synth);
        audio.extend(synth::babble(
            &VoiceProfile::child("k"),
            1.2,
            &SynthConfig { seed: 6, ..synth },
        ));
        let track = pitch_track(&audio, &c);
        let n = track.len();
        let parts = split_by_kind(&track, 0..n, 8);
        let kinds: Vec<Option<SpeechKind>> = parts.iter().map(|p| p.kind).collect();
        assert!(
            kinds.contains(&Some(SpeechKind::Male)) && kinds.contains(&Some(SpeechKind::Child)),
            "kinds {kinds:?}"
        );
        // Segments tile the range in order.
        assert_eq!(parts.first().unwrap().frames.start, 0);
        for w in parts.windows(2) {
            assert_eq!(w[0].frames.end, w[1].frames.start);
        }
    }

    #[test]
    fn median_pitch_needs_enough_voicing() {
        let track = vec![None, Some(100.0), None, Some(110.0)];
        assert_eq!(median_pitch(&track, 0..4, 3), None);
        assert_eq!(median_pitch(&track, 0..4, 2), Some(110.0));
        assert_eq!(median_pitch(&track, 0..1, 1), None);
    }
}
