//! Automatic audio segmentation: distinguishing "signal and background
//! noise and among the various types of signals present" (speech, music,
//! artifacts) — the first capability the paper's audio browsing lists.
//!
//! A GMM per [`AudioClass`] is trained on synthetic material; classification
//! is per-frame maximum likelihood followed by median smoothing and merging
//! of consecutive frames into labelled [`Segment`]s.

use crate::features::{extract_features, FeatureConfig};
use crate::gmm::DiagGmm;
use crate::synth::{self, SynthConfig, VoiceProfile};
use std::ops::Range;

/// The classes the segmenter distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AudioClass {
    /// Near-silence / channel hum.
    Silence,
    /// Broadband background noise (artifacts).
    Noise,
    /// Human speech.
    Speech,
    /// Music.
    Music,
}

impl AudioClass {
    /// All classes, in a fixed order.
    pub const ALL: [AudioClass; 4] = [
        AudioClass::Silence,
        AudioClass::Noise,
        AudioClass::Speech,
        AudioClass::Music,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AudioClass::Silence => "silence",
            AudioClass::Noise => "noise",
            AudioClass::Speech => "speech",
            AudioClass::Music => "music",
        }
    }
}

/// A labelled span of frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Frame range (see [`FeatureConfig`] for the frame→sample mapping).
    pub frames: Range<usize>,
    /// The class assigned.
    pub class: AudioClass,
}

/// The trained segmenter: one GMM per class.
#[derive(Debug, Clone)]
pub struct SegmenterModel {
    models: Vec<(AudioClass, DiagGmm)>,
    features: FeatureConfig,
}

impl SegmenterModel {
    /// Trains on caller-provided material per class.
    pub fn train(
        material: &[(AudioClass, Vec<f64>)],
        features: FeatureConfig,
        components: usize,
        seed: u64,
    ) -> SegmenterModel {
        let mut models = Vec::new();
        for class in AudioClass::ALL {
            let mut frames = Vec::new();
            for (c, samples) in material {
                if *c == class {
                    frames.extend(extract_features(samples, &features));
                }
            }
            assert!(
                !frames.is_empty(),
                "no training material for class {}",
                class.name()
            );
            models.push((class, DiagGmm::train(&frames, components, 12, seed)));
        }
        SegmenterModel { models, features }
    }

    /// Trains on built-in synthetic material (several voices, a music bed,
    /// two noise levels).
    pub fn train_default(seed: u64) -> SegmenterModel {
        let cfg = SynthConfig {
            seed,
            ..SynthConfig::default()
        };
        let mut material: Vec<(AudioClass, Vec<f64>)> = Vec::new();
        for (i, voice) in [
            VoiceProfile::male("m"),
            VoiceProfile::female("f"),
            VoiceProfile::child("c"),
        ]
        .iter()
        .enumerate()
        {
            let sub = SynthConfig {
                seed: cfg.seed + i as u64 * 101,
                ..cfg
            };
            material.push((AudioClass::Speech, synth::babble(voice, 2.0, &sub)));
        }
        material.push((AudioClass::Music, synth::music(4.0, &cfg)));
        material.push((AudioClass::Noise, synth::noise(2.0, 0.12, &cfg)));
        material.push((
            AudioClass::Noise,
            synth::noise(
                2.0,
                0.05,
                &SynthConfig {
                    seed: cfg.seed + 5,
                    ..cfg
                },
            ),
        ));
        material.push((AudioClass::Silence, synth::silence(2.0, &cfg)));
        SegmenterModel::train(&material, FeatureConfig::default(), 3, seed)
    }

    /// The feature configuration the model was trained with.
    pub fn features(&self) -> &FeatureConfig {
        &self.features
    }

    /// Per-frame maximum-likelihood classification.
    pub fn classify_frames(&self, samples: &[f64]) -> Vec<AudioClass> {
        extract_features(samples, &self.features)
            .iter()
            .map(|frame| {
                self.models
                    .iter()
                    .max_by(|a, b| {
                        a.1.log_likelihood(frame)
                            .partial_cmp(&b.1.log_likelihood(frame))
                            .unwrap()
                    })
                    .expect("at least one class")
                    .0
            })
            .collect()
    }
}

/// Median-smooths a label sequence with the given half-window.
pub fn median_smooth(labels: &[AudioClass], half_window: usize) -> Vec<AudioClass> {
    if labels.is_empty() {
        return Vec::new();
    }
    (0..labels.len())
        .map(|i| {
            let lo = i.saturating_sub(half_window);
            let hi = (i + half_window + 1).min(labels.len());
            let mut counts = std::collections::BTreeMap::new();
            for &l in &labels[lo..hi] {
                *counts.entry(l).or_insert(0usize) += 1;
            }
            *counts
                .iter()
                .max_by_key(|(_, &c)| c)
                .expect("window nonempty")
                .0
        })
        .collect()
}

/// Merges consecutive identical labels into segments.
pub fn merge_segments(labels: &[AudioClass]) -> Vec<Segment> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for i in 1..=labels.len() {
        if i == labels.len() || labels[i] != labels[start] {
            out.push(Segment {
                frames: start..i,
                class: labels[start],
            });
            start = i;
        }
    }
    out
}

/// Full pipeline: classify, smooth, merge.
pub fn segment_audio(model: &SegmenterModel, samples: &[f64]) -> Vec<Segment> {
    static LAT: rcmo_obs::LazyHistogram =
        rcmo_obs::LazyHistogram::new("audio.segment.us", rcmo_obs::bounds::LATENCY_US);
    let _t = LAT.start_timer();
    let labels = model.classify_frames(samples);
    let smoothed = median_smooth(&labels, 5);
    merge_segments(&smoothed)
}

/// Serialises segments for storage in an audio object's `FLD_SECTORS`
/// BLOB: `u32 count | per segment: u32 start, u32 end, u8 class`.
pub fn encode_segments(segments: &[Segment]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + segments.len() * 9);
    out.extend_from_slice(&(segments.len() as u32).to_le_bytes());
    for s in segments {
        out.extend_from_slice(&(s.frames.start as u32).to_le_bytes());
        out.extend_from_slice(&(s.frames.end as u32).to_le_bytes());
        out.push(match s.class {
            AudioClass::Silence => 0,
            AudioClass::Noise => 1,
            AudioClass::Speech => 2,
            AudioClass::Music => 3,
        });
    }
    out
}

/// Reverses [`encode_segments`]. Returns `None` on malformed input.
pub fn decode_segments(bytes: &[u8]) -> Option<Vec<Segment>> {
    if bytes.len() < 4 {
        return None;
    }
    let count = u32::from_le_bytes(bytes[..4].try_into().ok()?) as usize;
    if bytes.len() != 4 + count * 9 {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let base = 4 + i * 9;
        let start = u32::from_le_bytes(bytes[base..base + 4].try_into().ok()?) as usize;
        let end = u32::from_le_bytes(bytes[base + 4..base + 8].try_into().ok()?) as usize;
        let class = match bytes[base + 8] {
            0 => AudioClass::Silence,
            1 => AudioClass::Noise,
            2 => AudioClass::Speech,
            3 => AudioClass::Music,
            _ => return None,
        };
        if end < start {
            return None;
        }
        out.push(Segment {
            frames: start..end,
            class,
        });
    }
    Some(out)
}

/// Fraction of frames whose label matches a ground-truth labelling function.
pub fn frame_accuracy(
    model: &SegmenterModel,
    samples: &[f64],
    truth: impl Fn(usize) -> AudioClass,
) -> f64 {
    let labels = median_smooth(&model.classify_frames(samples), 5);
    if labels.is_empty() {
        return 0.0;
    }
    let correct = labels
        .iter()
        .enumerate()
        .filter(|(f, &l)| l == truth(model.features.frame_center(*f)))
        .count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::LabeledAudio;

    fn model() -> SegmenterModel {
        SegmenterModel::train_default(7)
    }

    fn labelled_track(seed: u64) -> LabeledAudio {
        let cfg = SynthConfig {
            seed,
            ..SynthConfig::default()
        };
        let mut track = LabeledAudio::default();
        track.push("silence", synth::silence(0.8, &cfg));
        track.push(
            "speech",
            synth::babble(
                &VoiceProfile::female("f2"),
                1.2,
                &SynthConfig {
                    seed: seed + 1,
                    ..cfg
                },
            ),
        );
        track.push(
            "music",
            synth::music(
                1.2,
                &SynthConfig {
                    seed: seed + 2,
                    ..cfg
                },
            ),
        );
        track.push(
            "noise",
            synth::noise(
                0.8,
                0.1,
                &SynthConfig {
                    seed: seed + 3,
                    ..cfg
                },
            ),
        );
        track
    }

    fn class_of(label: &str) -> AudioClass {
        match label {
            "silence" => AudioClass::Silence,
            "noise" => AudioClass::Noise,
            "speech" => AudioClass::Speech,
            "music" => AudioClass::Music,
            other => panic!("unknown label {other}"),
        }
    }

    #[test]
    fn segmentation_recovers_ground_truth() {
        let model = model();
        let track = labelled_track(99);
        let acc = frame_accuracy(&model, &track.samples, |sample| {
            class_of(track.label_at(sample.min(track.len() - 1)).unwrap())
        });
        assert!(acc > 0.8, "frame accuracy {acc:.3}");
    }

    #[test]
    fn segments_cover_all_frames_in_order() {
        let model = model();
        let track = labelled_track(5);
        let segs = segment_audio(&model, &track.samples);
        assert!(!segs.is_empty());
        assert_eq!(segs[0].frames.start, 0);
        for w in segs.windows(2) {
            assert_eq!(w[0].frames.end, w[1].frames.start);
            assert_ne!(w[0].class, w[1].class);
        }
        let total = segs.last().unwrap().frames.end;
        assert_eq!(
            total,
            model.features().num_frames(track.len()),
            "segments span every frame"
        );
    }

    #[test]
    fn detects_the_four_classes() {
        let model = model();
        let track = labelled_track(123);
        let segs = segment_audio(&model, &track.samples);
        let found: std::collections::BTreeSet<AudioClass> = segs.iter().map(|s| s.class).collect();
        assert!(found.contains(&AudioClass::Speech), "{segs:?}");
        assert!(found.contains(&AudioClass::Music), "{segs:?}");
    }

    #[test]
    fn median_smoothing_removes_glitches() {
        use AudioClass::*;
        let labels = vec![
            Speech, Speech, Music, Speech, Speech, Speech, Speech, Noise, Speech, Speech,
        ];
        let smoothed = median_smooth(&labels, 2);
        assert!(smoothed.iter().all(|&l| l == Speech), "{smoothed:?}");
        assert!(median_smooth(&[], 3).is_empty());
    }

    #[test]
    fn segment_codec_roundtrip() {
        use AudioClass::*;
        let segs = vec![
            Segment {
                frames: 0..10,
                class: Silence,
            },
            Segment {
                frames: 10..55,
                class: Speech,
            },
            Segment {
                frames: 55..60,
                class: Music,
            },
        ];
        let bytes = encode_segments(&segs);
        assert_eq!(decode_segments(&bytes).unwrap(), segs);
        assert!(decode_segments(&bytes[..bytes.len() - 1]).is_none());
        assert!(decode_segments(&[1, 2]).is_none());
        let mut bad = bytes.clone();
        bad[4 + 8] = 9; // unknown class tag
        assert!(decode_segments(&bad).is_none());
        assert_eq!(decode_segments(&encode_segments(&[])).unwrap(), vec![]);
    }

    #[test]
    fn merge_segments_basics() {
        use AudioClass::*;
        let segs = merge_segments(&[Speech, Speech, Music, Music, Music, Silence]);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].frames, 0..2);
        assert_eq!(segs[1].frames, 2..5);
        assert_eq!(segs[2].class, Silence);
        assert!(merge_segments(&[]).is_empty());
    }
}
