//! The multi-layered progressive codec (main approximation + residual
//! layers in different bases). See the [crate docs](crate) for the scheme.
//!
//! Stream layout (little-endian):
//!
//! ```text
//! magic "LIC1" | u16 width | u16 height | u8 wavelet | u8 levels | u8 nlayers
//! per layer: u8 basis | f64 step (as u64 bits) | u32 byte_len | payload
//! ```
//!
//! Layer 0 is always the main wavelet approximation. Each layer's payload is
//! self-delimited by its length, so decoding a byte *prefix* of the stream
//! reconstructs from however many complete layers the prefix covers.

use crate::bits::{decode_coeffs, encode_coeffs, BitReader, BitWriter};
use crate::dct;
use crate::haar;
use crate::packet;
use crate::plane::Plane;
use crate::quant::{dequantize, quantize};
use rcmo_imaging::GrayImage;
use std::fmt;

/// Errors raised by the layered codec.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The stream header or a section failed to parse.
    Malformed(String),
    /// The prefix does not even cover the header plus the main layer.
    Truncated,
    /// Invalid encoder configuration.
    BadConfig(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Malformed(m) => write!(f, "malformed stream: {m}"),
            CodecError::Truncated => write!(f, "stream shorter than the main layer"),
            CodecError::BadConfig(m) => write!(f, "bad encoder config: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Which wavelet filters the main approximation.
pub type Wavelet = haar::Kind;

/// Basis of a residual layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Basis {
    /// Wavelet-packet best basis on 32×32 tiles.
    WaveletPacket,
    /// Block local cosine (8×8 DCT-II, zigzag).
    LocalCosine,
}

impl Basis {
    fn tag(self) -> u8 {
        match self {
            Basis::WaveletPacket => 1,
            Basis::LocalCosine => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Basis> {
        Some(match tag {
            1 => Basis::WaveletPacket,
            2 => Basis::LocalCosine,
            _ => return None,
        })
    }
}

/// One residual layer's configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerSpec {
    /// The coding basis.
    pub basis: Basis,
    /// Dead-zone quantiser step (smaller = higher fidelity, more bytes).
    pub step: f64,
}

/// Encoder configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EncoderConfig {
    /// Main-layer wavelet.
    pub wavelet: Wavelet,
    /// Wavelet decomposition depth (also the number of resolutions served).
    pub levels: usize,
    /// Main-layer quantiser step.
    pub main_step: f64,
    /// Residual layers, coarsest first.
    pub residual_layers: Vec<LayerSpec>,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            wavelet: Wavelet::Haar,
            levels: 4,
            main_step: 24.0,
            residual_layers: vec![
                LayerSpec {
                    basis: Basis::WaveletPacket,
                    step: 8.0,
                },
                LayerSpec {
                    basis: Basis::LocalCosine,
                    step: 3.0,
                },
            ],
        }
    }
}

/// Parsed stream metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamInfo {
    /// Original image width.
    pub width: usize,
    /// Original image height.
    pub height: usize,
    /// Wavelet of the main layer.
    pub wavelet: Wavelet,
    /// Decomposition depth.
    pub levels: usize,
    /// Byte length of each layer section (header excluded).
    pub layer_bytes: Vec<usize>,
    /// Offset where the first layer section starts.
    pub header_bytes: usize,
}

impl StreamInfo {
    /// Number of layer sections whose headers are present in the stream
    /// (for a complete stream, the `nlayers` of the file header).
    pub fn num_layers(&self) -> usize {
        self.layer_bytes.len()
    }

    /// Bytes needed to decode layers `0..=k` (`k` is a layer *index*, so
    /// `prefix_for_layers(0)` covers the stream header plus the base
    /// layer).
    ///
    /// Out-of-range contract: for `k >= num_layers()` the result
    /// **saturates** at the full stream length — every known section is
    /// counted, never more. The old implementation had the same numeric
    /// behaviour but silently, so callers probing "one more layer" could
    /// not tell a real deeper prefix from the clamp; the saturation is now
    /// part of the documented contract, and [`Self::prefix_for_layer_count`]
    /// offers the count-based form whose `0` case is the bare header.
    pub fn prefix_for_layers(&self, k: usize) -> usize {
        self.prefix_for_layer_count(k.saturating_add(1))
    }

    /// Bytes needed to decode the first `n` layers. Unlike the index-based
    /// [`Self::prefix_for_layers`], `n` is a *count*: `n == 0` returns the
    /// header-only size (`header_bytes` — a prefix that parses but renders
    /// nothing), and `n >= num_layers()` saturates at the full stream
    /// length.
    pub fn prefix_for_layer_count(&self, n: usize) -> usize {
        let sections: usize = self
            .layer_bytes
            .iter()
            .take(n)
            .map(|b| b + LAYER_HEADER)
            .sum();
        self.header_bytes + sections
    }

    /// The byte ladder of this stream: element `i` is the prefix length
    /// that decodes `i + 1` layers (`ladder.len() == num_layers()`, and the
    /// last rung is the full stream length). This is the real per-object
    /// size table adaptive delivery chooses depths from — the replacement
    /// for the old fixed-fraction degradation guess.
    pub fn layer_prefixes(&self) -> Vec<u64> {
        (1..=self.num_layers())
            .map(|n| self.prefix_for_layer_count(n) as u64)
            .collect()
    }
}

/// The parsed LIC1 stream header. The adaptive-delivery tier and the
/// netsim degradation path talk about the codec header under this name;
/// it is the same type as [`StreamInfo`].
pub type LayeredHeader = StreamInfo;

const MAGIC: &[u8; 4] = b"LIC1";
const LAYER_HEADER: usize = 1 + 8 + 4;

fn padded_dims(w: usize, h: usize, levels: usize) -> (usize, usize) {
    let unit = (1usize << levels).max(packet::TILE).max(dct::N);
    (w.div_ceil(unit) * unit, h.div_ceil(unit) * unit)
}

fn encode_main(plane: &Plane, cfg: &EncoderConfig) -> (Vec<u8>, Plane) {
    let mut t = plane.clone();
    haar::forward(&mut t, cfg.levels, cfg.wavelet);
    let syms = quantize(t.data(), cfg.main_step);
    let mut w = BitWriter::new();
    encode_coeffs(&mut w, &syms);
    // Local reconstruction for the residual chain.
    let deq = dequantize(&syms, cfg.main_step);
    let mut recon = Plane::from_data(t.width(), t.height(), deq);
    haar::inverse(&mut recon, cfg.levels, cfg.wavelet);
    (w.finish(), recon)
}

fn encode_residual(residual: &Plane, spec: &LayerSpec) -> (Vec<u8>, Plane) {
    let (w, h) = (residual.width(), residual.height());
    let mut bw = BitWriter::new();
    let mut recon = Plane::new(w, h);
    match spec.basis {
        Basis::WaveletPacket => {
            for by in (0..h).step_by(packet::TILE) {
                for bx in (0..w).step_by(packet::TILE) {
                    let block = residual.block(bx, by, packet::TILE);
                    packet::encode_tile(&mut bw, block, packet::TILE, spec.step);
                }
            }
            // Decode locally (cheap: re-run the decoder on the bytes).
            let bytes = bw.finish();
            let mut br = BitReader::new(&bytes);
            for by in (0..h).step_by(packet::TILE) {
                for bx in (0..w).step_by(packet::TILE) {
                    let block = packet::decode_tile(&mut br, packet::TILE, spec.step)
                        .expect("just encoded");
                    recon.set_block(bx, by, packet::TILE, &block);
                }
            }
            (bytes, recon)
        }
        Basis::LocalCosine => {
            let mut zz_all: Vec<f64> = Vec::with_capacity(w * h);
            for by in (0..h).step_by(dct::N) {
                for bx in (0..w).step_by(dct::N) {
                    let block = residual.block(bx, by, dct::N);
                    zz_all.extend(dct::to_zigzag(&dct::forward(&block)));
                }
            }
            let syms = quantize(&zz_all, spec.step);
            encode_coeffs(&mut bw, &syms);
            let deq = dequantize(&syms, spec.step);
            let mut i = 0;
            for by in (0..h).step_by(dct::N) {
                for bx in (0..w).step_by(dct::N) {
                    let block = dct::inverse(&dct::from_zigzag(&deq[i..i + dct::N * dct::N]));
                    recon.set_block(bx, by, dct::N, &block);
                    i += dct::N * dct::N;
                }
            }
            (bw.finish(), recon)
        }
    }
}

/// Encodes an image into a progressive layered stream.
pub fn encode(img: &GrayImage, cfg: &EncoderConfig) -> Result<Vec<u8>, CodecError> {
    static LAT: rcmo_obs::LazyHistogram =
        rcmo_obs::LazyHistogram::new("codec.encode.us", rcmo_obs::bounds::LATENCY_US);
    let _t = LAT.start_timer();
    if cfg.levels == 0 || cfg.levels > 8 {
        return Err(CodecError::BadConfig(format!("levels = {}", cfg.levels)));
    }
    if cfg.main_step <= 0.0 || cfg.residual_layers.iter().any(|l| l.step <= 0.0) {
        return Err(CodecError::BadConfig(
            "quantiser steps must be positive".into(),
        ));
    }
    if img.width() > u16::MAX as usize || img.height() > u16::MAX as usize {
        return Err(CodecError::BadConfig("image too large".into()));
    }
    let (pw, ph) = padded_dims(img.width(), img.height(), cfg.levels);
    let padded = Plane::from_image(img).pad_to(pw, ph);

    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(img.width() as u16).to_le_bytes());
    out.extend_from_slice(&(img.height() as u16).to_le_bytes());
    out.push(match cfg.wavelet {
        Wavelet::Haar => 0,
        Wavelet::Cdf53 => 1,
    });
    out.push(cfg.levels as u8);
    out.push((1 + cfg.residual_layers.len()) as u8);

    let (main_bytes, mut recon) = encode_main(&padded, cfg);
    push_layer(&mut out, 0, cfg.main_step, &main_bytes);

    for spec in &cfg.residual_layers {
        let residual = padded.sub(&recon);
        let (bytes, layer_recon) = encode_residual(&residual, spec);
        recon.add_assign(&layer_recon);
        push_layer(&mut out, spec.basis.tag(), spec.step, &bytes);
    }
    Ok(out)
}

fn push_layer(out: &mut Vec<u8>, tag: u8, step: f64, payload: &[u8]) {
    out.push(tag);
    out.extend_from_slice(&step.to_bits().to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Parses the stream header and section table (tolerates truncation past the
/// header: `layer_bytes` only lists sections whose *headers* are present).
pub fn info(bytes: &[u8]) -> Result<StreamInfo, CodecError> {
    if bytes.len() < 11 || &bytes[..4] != MAGIC {
        return Err(CodecError::Malformed("missing LIC1 header".into()));
    }
    let width = u16::from_le_bytes([bytes[4], bytes[5]]) as usize;
    let height = u16::from_le_bytes([bytes[6], bytes[7]]) as usize;
    let wavelet = match bytes[8] {
        0 => Wavelet::Haar,
        1 => Wavelet::Cdf53,
        t => return Err(CodecError::Malformed(format!("wavelet tag {t}"))),
    };
    let levels = bytes[9] as usize;
    let nlayers = bytes[10] as usize;
    if width == 0 || height == 0 || levels == 0 || nlayers == 0 {
        return Err(CodecError::Malformed("zero dimension in header".into()));
    }
    let mut layer_bytes = Vec::new();
    let mut pos = 11usize;
    for _ in 0..nlayers {
        if pos + LAYER_HEADER > bytes.len() {
            break;
        }
        let len = u32::from_le_bytes([
            bytes[pos + 9],
            bytes[pos + 10],
            bytes[pos + 11],
            bytes[pos + 12],
        ]) as usize;
        layer_bytes.push(len);
        pos += LAYER_HEADER + len;
    }
    Ok(StreamInfo {
        width,
        height,
        wavelet,
        levels,
        layer_bytes,
        header_bytes: 11,
    })
}

struct LayerSection<'a> {
    tag: u8,
    step: f64,
    payload: &'a [u8],
}

/// Collects the layer sections fully contained in `bytes`.
fn sections<'a>(bytes: &'a [u8], si: &StreamInfo) -> Vec<LayerSection<'a>> {
    let mut out = Vec::new();
    let mut pos = si.header_bytes;
    for &len in &si.layer_bytes {
        if pos + LAYER_HEADER + len > bytes.len() {
            break;
        }
        let tag = bytes[pos];
        let step = f64::from_bits(u64::from_le_bytes(
            bytes[pos + 1..pos + 9].try_into().expect("8 bytes"),
        ));
        out.push(LayerSection {
            tag,
            step,
            payload: &bytes[pos + LAYER_HEADER..pos + LAYER_HEADER + len],
        });
        pos += LAYER_HEADER + len;
    }
    out
}

fn decode_main_plane(si: &StreamInfo, section: &LayerSection<'_>) -> Result<Plane, CodecError> {
    let (pw, ph) = padded_dims(si.width, si.height, si.levels);
    let mut r = BitReader::new(section.payload);
    let syms = decode_coeffs(&mut r, pw * ph)
        .map_err(|_| CodecError::Malformed("main layer ran out of bits".into()))?;
    if section.step <= 0.0 || !section.step.is_finite() {
        return Err(CodecError::Malformed("non-positive quantiser step".into()));
    }
    Ok(Plane::from_data(pw, ph, dequantize(&syms, section.step)))
}

fn decode_residual_plane(si: &StreamInfo, section: &LayerSection<'_>) -> Result<Plane, CodecError> {
    let (pw, ph) = padded_dims(si.width, si.height, si.levels);
    if section.step <= 0.0 || !section.step.is_finite() {
        return Err(CodecError::Malformed("non-positive quantiser step".into()));
    }
    let basis = Basis::from_tag(section.tag)
        .ok_or_else(|| CodecError::Malformed(format!("basis tag {}", section.tag)))?;
    let mut plane = Plane::new(pw, ph);
    match basis {
        Basis::WaveletPacket => {
            let mut r = BitReader::new(section.payload);
            for by in (0..ph).step_by(packet::TILE) {
                for bx in (0..pw).step_by(packet::TILE) {
                    let block = packet::decode_tile(&mut r, packet::TILE, section.step)
                        .map_err(|_| CodecError::Malformed("packet tile truncated".into()))?;
                    plane.set_block(bx, by, packet::TILE, &block);
                }
            }
        }
        Basis::LocalCosine => {
            let mut r = BitReader::new(section.payload);
            let n = pw * ph;
            let syms = decode_coeffs(&mut r, n)
                .map_err(|_| CodecError::Malformed("cosine layer truncated".into()))?;
            let deq = dequantize(&syms, section.step);
            let mut i = 0;
            for by in (0..ph).step_by(dct::N) {
                for bx in (0..pw).step_by(dct::N) {
                    let block = dct::inverse(&dct::from_zigzag(&deq[i..i + dct::N * dct::N]));
                    plane.set_block(bx, by, dct::N, &block);
                    i += dct::N * dct::N;
                }
            }
        }
    }
    Ok(plane)
}

/// Decodes as many complete layers as `bytes` contains; returns the image
/// and the number of layers used. Needs at least the main layer.
pub fn decode_prefix(bytes: &[u8]) -> Result<(GrayImage, usize), CodecError> {
    static LAT: rcmo_obs::LazyHistogram =
        rcmo_obs::LazyHistogram::new("codec.decode.us", rcmo_obs::bounds::LATENCY_US);
    static LAYERS: rcmo_obs::LazyHistogram =
        rcmo_obs::LazyHistogram::new("codec.decode.layers", rcmo_obs::bounds::SMALL_COUNT);
    let _t = LAT.start_timer();
    let si = info(bytes)?;
    let secs = sections(bytes, &si);
    if secs.is_empty() {
        return Err(CodecError::Truncated);
    }
    let mut coeffs = decode_main_plane(&si, &secs[0])?;
    haar::inverse(&mut coeffs, si.levels, si.wavelet);
    let mut recon = coeffs;
    for section in &secs[1..] {
        let layer = decode_residual_plane(&si, section)?;
        recon.add_assign(&layer);
    }
    LAYERS.record(secs.len() as u64);
    Ok((recon.crop(si.width, si.height).to_image(), secs.len()))
}

/// Encodes towards a byte budget: binary-searches a global quality scale
/// (the main-layer quantiser step, with residual steps scaled
/// proportionally) so the stream is as fine as possible without exceeding
/// `budget_bytes`. Returns the stream and the configuration that produced
/// it. Fails if even the coarsest quality (step 2048) exceeds the budget.
///
/// This is the "various degrees of resolution" service of the paper's
/// compression-transfer module: one call per target link speed.
pub fn encode_to_budget(
    img: &GrayImage,
    template: &EncoderConfig,
    budget_bytes: usize,
) -> Result<(Vec<u8>, EncoderConfig), CodecError> {
    let scaled = |main_step: f64| -> EncoderConfig {
        let ratio = main_step / template.main_step;
        EncoderConfig {
            wavelet: template.wavelet,
            levels: template.levels,
            main_step,
            residual_layers: template
                .residual_layers
                .iter()
                .map(|l| LayerSpec {
                    basis: l.basis,
                    step: l.step * ratio,
                })
                .collect(),
        }
    };
    let coarsest = scaled(2048.0);
    let coarse_stream = encode(img, &coarsest)?;
    if coarse_stream.len() > budget_bytes {
        return Err(CodecError::BadConfig(format!(
            "budget {budget_bytes} B below the coarsest encoding ({} B)",
            coarse_stream.len()
        )));
    }
    let mut lo = 1.0f64; // fine (large streams)
    let mut hi = 2048.0f64; // coarse (small streams)
    let mut best = (coarse_stream, coarsest);
    for _ in 0..14 {
        let mid = (lo * hi).sqrt(); // geometric: steps act multiplicatively
        let cfg = scaled(mid);
        let stream = encode(img, &cfg)?;
        if stream.len() <= budget_bytes {
            best = (stream, cfg);
            hi = mid; // can afford finer quality
        } else {
            lo = mid;
        }
    }
    Ok(best)
}

/// Decodes the full stream.
pub fn decode(bytes: &[u8]) -> Result<GrayImage, CodecError> {
    Ok(decode_prefix(bytes)?.0)
}

/// Decodes the main layer at a reduced resolution: `drop` wavelet scales are
/// skipped, yielding a `⌈w/2^drop⌉ × ⌈h/2^drop⌉` image. `drop = 0` is the
/// full-size main approximation; `drop` must be `≤ levels`.
pub fn decode_resolution(bytes: &[u8], drop: usize) -> Result<GrayImage, CodecError> {
    static LAT: rcmo_obs::LazyHistogram =
        rcmo_obs::LazyHistogram::new("codec.decode_resolution.us", rcmo_obs::bounds::LATENCY_US);
    let _t = LAT.start_timer();
    let si = info(bytes)?;
    if drop > si.levels {
        return Err(CodecError::Malformed(format!(
            "resolution drop {drop} exceeds {} levels",
            si.levels
        )));
    }
    let secs = sections(bytes, &si);
    if secs.is_empty() {
        return Err(CodecError::Truncated);
    }
    let coeffs = decode_main_plane(&si, &secs[0])?;
    let (pw, ph) = (coeffs.width() >> drop, coeffs.height() >> drop);
    // The top-left pw×ph region holds LL_drop with the deeper levels inside.
    let mut sub = Plane::new(pw, ph);
    for y in 0..ph {
        for x in 0..pw {
            sub.set(x, y, coeffs.get(x, y));
        }
    }
    if si.levels > drop {
        haar::inverse(&mut sub, si.levels - drop, si.wavelet);
    }
    // Haar's per-level DC gain is 2 (2-D); undo the `drop` skipped levels.
    let gain = match si.wavelet {
        Wavelet::Haar => (1u64 << drop) as f64,
        Wavelet::Cdf53 => 1.0,
    };
    if gain != 1.0 {
        for v in sub.data_mut() {
            *v /= gain;
        }
    }
    let w = si.width.div_ceil(1 << drop);
    let h = si.height.div_ceil(1 << drop);
    Ok(sub.crop(w.min(sub.width()), h.min(sub.height())).to_image())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcmo_imaging::{ct_phantom, psnr};

    fn test_image() -> GrayImage {
        ct_phantom(96, 3, 11).unwrap()
    }

    #[test]
    fn roundtrip_improves_with_layers() {
        let img = test_image();
        let cfg = EncoderConfig::default();
        let bytes = encode(&img, &cfg).unwrap();
        let si = info(&bytes).unwrap();
        assert_eq!(si.layer_bytes.len(), 3);

        let mut last_psnr = 0.0;
        for k in 0..3 {
            let prefix = si.prefix_for_layers(k);
            let (out, used) = decode_prefix(&bytes[..prefix]).unwrap();
            assert_eq!(used, k + 1);
            let p = psnr(&img, &out);
            assert!(
                p > last_psnr,
                "layer {k}: psnr {p:.2} not above {last_psnr:.2}"
            );
            last_psnr = p;
        }
        assert!(last_psnr > 30.0, "full reconstruction {last_psnr:.2} dB");
    }

    #[test]
    fn full_decode_equals_prefix_with_all_layers() {
        let img = test_image();
        let bytes = encode(&img, &EncoderConfig::default()).unwrap();
        let a = decode(&bytes).unwrap();
        let (b, used) = decode_prefix(&bytes).unwrap();
        assert_eq!(used, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn cdf53_wavelet_works() {
        let img = test_image();
        let cfg = EncoderConfig {
            wavelet: Wavelet::Cdf53,
            ..EncoderConfig::default()
        };
        let bytes = encode(&img, &cfg).unwrap();
        let out = decode(&bytes).unwrap();
        assert!(psnr(&img, &out) > 28.0);
    }

    #[test]
    fn finer_main_step_gives_better_base_layer() {
        let img = test_image();
        let quality = |step: f64| {
            let cfg = EncoderConfig {
                main_step: step,
                residual_layers: vec![],
                ..EncoderConfig::default()
            };
            let bytes = encode(&img, &cfg).unwrap();
            (psnr(&img, &decode(&bytes).unwrap()), bytes.len())
        };
        let (p_fine, n_fine) = quality(8.0);
        let (p_coarse, n_coarse) = quality(32.0);
        assert!(p_fine > p_coarse);
        assert!(n_fine > n_coarse);
    }

    #[test]
    fn multiresolution_decoding() {
        let img = test_image();
        let cfg = EncoderConfig::default();
        let bytes = encode(&img, &cfg).unwrap();
        let full = decode_resolution(&bytes, 0).unwrap();
        assert_eq!(full.width(), 96);
        let half = decode_resolution(&bytes, 1).unwrap();
        assert_eq!(half.width(), 48);
        let quarter = decode_resolution(&bytes, 2).unwrap();
        assert_eq!(quarter.width(), 24);
        // The half-resolution image approximates the downsampled original.
        let down = img.downsample2x().unwrap();
        let p = psnr(&down, &half);
        assert!(p > 25.0, "half-res psnr {p:.2}");
        assert!(decode_resolution(&bytes, cfg.levels + 1).is_err());
    }

    #[test]
    fn truncation_below_main_layer_fails() {
        let img = test_image();
        let bytes = encode(&img, &EncoderConfig::default()).unwrap();
        assert!(matches!(
            decode_prefix(&bytes[..11]),
            Err(CodecError::Truncated)
        ));
        assert!(decode_prefix(&bytes[..5]).is_err());
        assert!(decode(b"????").is_err());
    }

    #[test]
    fn prefix_for_layers_saturates_past_the_last_layer() {
        let img = test_image();
        let bytes = encode(&img, &EncoderConfig::default()).unwrap();
        let si = info(&bytes).unwrap();
        let full = si.prefix_for_layers(si.num_layers() - 1);
        assert_eq!(full, bytes.len(), "last rung is the full stream");
        // The documented out-of-range contract: any deeper index clamps to
        // the full stream length, never beyond it.
        for k in [si.num_layers(), si.num_layers() + 1, usize::MAX] {
            assert_eq!(si.prefix_for_layers(k), full);
        }
        assert_eq!(si.prefix_for_layer_count(si.num_layers() + 7), full);
    }

    #[test]
    fn zero_layer_count_is_the_bare_header() {
        let img = test_image();
        let bytes = encode(&img, &EncoderConfig::default()).unwrap();
        let si = info(&bytes).unwrap();
        // A zero-layer prefix is exactly the stream header: it parses
        // (info succeeds) but carries no decodable section.
        assert_eq!(si.prefix_for_layer_count(0), si.header_bytes);
        let reparsed = info(&bytes[..si.prefix_for_layer_count(0)]).unwrap();
        assert_eq!(reparsed.num_layers(), 0);
        // And the index-based form with k = 0 includes the base layer.
        assert_eq!(si.prefix_for_layers(0), si.prefix_for_layer_count(1));
        assert!(si.prefix_for_layers(0) > si.header_bytes);
    }

    #[test]
    fn layer_prefix_ladder_is_monotonic_and_ends_at_full_length() {
        let img = test_image();
        let bytes = encode(&img, &EncoderConfig::default()).unwrap();
        let si = info(&bytes).unwrap();
        let ladder = si.layer_prefixes();
        assert_eq!(ladder.len(), si.num_layers());
        for w in ladder.windows(2) {
            assert!(w[0] < w[1], "ladder must be strictly increasing");
        }
        assert_eq!(*ladder.last().unwrap() as usize, bytes.len());
        // Each rung decodes exactly its layer count.
        for (i, &rung) in ladder.iter().enumerate() {
            let (_, used) = decode_prefix(&bytes[..rung as usize]).unwrap();
            assert_eq!(used, i + 1);
        }
    }

    #[test]
    fn arbitrary_prefix_is_safe() {
        let img = test_image();
        let bytes = encode(&img, &EncoderConfig::default()).unwrap();
        let si = info(&bytes).unwrap();
        let l0 = si.prefix_for_layers(0);
        // Any cut between layer boundaries decodes to the layers before it.
        for cut in [l0, l0 + 1, l0 + 37, bytes.len() - 1] {
            let (out, used) = decode_prefix(&bytes[..cut]).unwrap();
            assert!(used >= 1);
            assert_eq!(out.width(), img.width());
        }
    }

    #[test]
    fn nonsquare_and_odd_sizes() {
        let img = GrayImage::from_fn(70, 45, |x, y| ((x * 3 + y * 5) % 256) as u8).unwrap();
        let bytes = encode(&img, &EncoderConfig::default()).unwrap();
        let out = decode(&bytes).unwrap();
        assert_eq!(out.width(), 70);
        assert_eq!(out.height(), 45);
        assert!(psnr(&img, &out) > 25.0);
    }

    #[test]
    fn bad_configs_rejected() {
        let img = test_image();
        assert!(encode(
            &img,
            &EncoderConfig {
                levels: 0,
                ..EncoderConfig::default()
            }
        )
        .is_err());
        assert!(encode(
            &img,
            &EncoderConfig {
                main_step: 0.0,
                ..EncoderConfig::default()
            }
        )
        .is_err());
        assert!(encode(
            &img,
            &EncoderConfig {
                residual_layers: vec![LayerSpec {
                    basis: Basis::LocalCosine,
                    step: -1.0
                }],
                ..EncoderConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn encode_to_budget_respects_and_uses_the_budget() {
        let img = test_image();
        let template = EncoderConfig::default();
        let unconstrained = encode(&img, &template).unwrap().len();
        for budget in [unconstrained / 2, unconstrained, unconstrained * 2] {
            let (stream, cfg) = encode_to_budget(&img, &template, budget).unwrap();
            assert!(stream.len() <= budget, "{} > {budget}", stream.len());
            assert!(cfg.main_step >= 1.0);
            let out = decode(&stream).unwrap();
            assert_eq!(out.width(), img.width());
        }
        // Bigger budgets buy strictly better quality.
        let (small, _) = encode_to_budget(&img, &template, unconstrained / 2).unwrap();
        let (large, _) = encode_to_budget(&img, &template, unconstrained * 2).unwrap();
        assert!(psnr(&img, &decode(&large).unwrap()) > psnr(&img, &decode(&small).unwrap()));
        // Impossible budgets are rejected.
        assert!(encode_to_budget(&img, &template, 16).is_err());
    }

    #[test]
    fn compression_actually_compresses() {
        let img = test_image();
        let bytes = encode(&img, &EncoderConfig::default()).unwrap();
        let raw = img.width() * img.height();
        assert!(
            bytes.len() < raw / 2,
            "stream {} bytes vs raw {raw}",
            bytes.len()
        );
    }

    #[test]
    fn layer_spec_mix_packet_then_cosine_and_reverse() {
        let img = test_image();
        for layers in [
            vec![
                LayerSpec {
                    basis: Basis::LocalCosine,
                    step: 8.0,
                },
                LayerSpec {
                    basis: Basis::WaveletPacket,
                    step: 3.0,
                },
            ],
            vec![LayerSpec {
                basis: Basis::WaveletPacket,
                step: 4.0,
            }],
        ] {
            let cfg = EncoderConfig {
                residual_layers: layers,
                ..EncoderConfig::default()
            };
            let bytes = encode(&img, &cfg).unwrap();
            assert!(psnr(&img, &decode(&bytes).unwrap()) > 30.0);
        }
    }
}
