//! 2-D separable wavelet transforms: orthonormal Haar and CDF 5/3 lifting.
//!
//! Both operate in place on a [`Plane`] whose dimensions must be divisible
//! by `2^levels`. After `forward`, the plane holds the standard quad-tree
//! subband layout: the `w/2^L × h/2^L` top-left corner is the deepest
//! approximation (LL_L); each level's LH/HL/HH bands surround their LL.

use crate::plane::Plane;

/// 1-D orthonormal Haar step: `n` samples → n/2 averages then n/2 details.
fn haar_fwd_1d(row: &mut [f64], scratch: &mut [f64]) {
    let half = row.len() / 2;
    let s = std::f64::consts::FRAC_1_SQRT_2;
    for i in 0..half {
        let a = row[2 * i];
        let b = row[2 * i + 1];
        scratch[i] = (a + b) * s;
        scratch[half + i] = (a - b) * s;
    }
    row.copy_from_slice(&scratch[..row.len()]);
}

fn haar_inv_1d(row: &mut [f64], scratch: &mut [f64]) {
    let half = row.len() / 2;
    let s = std::f64::consts::FRAC_1_SQRT_2;
    for i in 0..half {
        let avg = row[i];
        let diff = row[half + i];
        scratch[2 * i] = (avg + diff) * s;
        scratch[2 * i + 1] = (avg - diff) * s;
    }
    row.copy_from_slice(&scratch[..row.len()]);
}

/// 1-D CDF 5/3 lifting step (LeGall), with symmetric boundary extension:
/// predict odds from even neighbours, update evens, then deinterleave to
/// `[low | high]`.
fn cdf53_fwd_1d(row: &mut [f64], scratch: &mut [f64]) {
    let n = row.len();
    let half = n / 2;
    // Predict: d[i] = x[2i+1] - (x[2i] + x[2i+2]) / 2
    for i in 0..half {
        let left = row[2 * i];
        let right = if 2 * i + 2 < n {
            row[2 * i + 2]
        } else {
            row[2 * i]
        };
        scratch[half + i] = row[2 * i + 1] - 0.5 * (left + right);
    }
    // Update: s[i] = x[2i] + (d[i-1] + d[i]) / 4
    for i in 0..half {
        let dl = if i > 0 {
            scratch[half + i - 1]
        } else {
            scratch[half]
        };
        let dr = scratch[half + i];
        scratch[i] = row[2 * i] + 0.25 * (dl + dr);
    }
    row.copy_from_slice(&scratch[..n]);
}

fn cdf53_inv_1d(row: &mut [f64], scratch: &mut [f64]) {
    let n = row.len();
    let half = n / 2;
    // Un-update evens.
    for i in 0..half {
        let dl = if i > 0 { row[half + i - 1] } else { row[half] };
        let dr = row[half + i];
        scratch[2 * i] = row[i] - 0.25 * (dl + dr);
    }
    // Un-predict odds.
    for i in 0..half {
        let left = scratch[2 * i];
        let right = if 2 * i + 2 < n {
            scratch[2 * i + 2]
        } else {
            scratch[2 * i]
        };
        scratch[2 * i + 1] = row[half + i] + 0.5 * (left + right);
    }
    row.copy_from_slice(&scratch[..n]);
}

/// Which wavelet filters the main layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Orthonormal Haar.
    Haar,
    /// CDF 5/3 (LeGall) lifting.
    Cdf53,
}

fn fwd_1d(kind: Kind, row: &mut [f64], scratch: &mut [f64]) {
    match kind {
        Kind::Haar => haar_fwd_1d(row, scratch),
        Kind::Cdf53 => cdf53_fwd_1d(row, scratch),
    }
}

fn inv_1d(kind: Kind, row: &mut [f64], scratch: &mut [f64]) {
    match kind {
        Kind::Haar => haar_inv_1d(row, scratch),
        Kind::Cdf53 => cdf53_inv_1d(row, scratch),
    }
}

fn transform_level(plane: &mut Plane, w: usize, h: usize, kind: Kind, inverse: bool) {
    let mut scratch = vec![0.0; w.max(h)];
    let stride = plane.width();
    if !inverse {
        // Rows then columns.
        for y in 0..h {
            let mut row: Vec<f64> = (0..w).map(|x| plane.data()[y * stride + x]).collect();
            fwd_1d(kind, &mut row, &mut scratch);
            for (x, v) in row.into_iter().enumerate() {
                plane.data_mut()[y * stride + x] = v;
            }
        }
        for x in 0..w {
            let mut col: Vec<f64> = (0..h).map(|y| plane.data()[y * stride + x]).collect();
            fwd_1d(kind, &mut col, &mut scratch);
            for (y, v) in col.into_iter().enumerate() {
                plane.data_mut()[y * stride + x] = v;
            }
        }
    } else {
        // Columns then rows (reverse order).
        for x in 0..w {
            let mut col: Vec<f64> = (0..h).map(|y| plane.data()[y * stride + x]).collect();
            inv_1d(kind, &mut col, &mut scratch);
            for (y, v) in col.into_iter().enumerate() {
                plane.data_mut()[y * stride + x] = v;
            }
        }
        for y in 0..h {
            let mut row: Vec<f64> = (0..w).map(|x| plane.data()[y * stride + x]).collect();
            inv_1d(kind, &mut row, &mut scratch);
            for (x, v) in row.into_iter().enumerate() {
                plane.data_mut()[y * stride + x] = v;
            }
        }
    }
}

/// Multi-level forward transform in place.
///
/// # Panics
/// Panics unless both dimensions are divisible by `2^levels`.
pub fn forward(plane: &mut Plane, levels: usize, kind: Kind) {
    let (w, h) = (plane.width(), plane.height());
    assert!(levels > 0, "need at least one level");
    assert_eq!(w % (1 << levels), 0, "width not divisible by 2^levels");
    assert_eq!(h % (1 << levels), 0, "height not divisible by 2^levels");
    let (mut cw, mut ch) = (w, h);
    for _ in 0..levels {
        transform_level(plane, cw, ch, kind, false);
        cw /= 2;
        ch /= 2;
    }
}

/// Multi-level inverse transform in place (must match `forward`'s levels).
pub fn inverse(plane: &mut Plane, levels: usize, kind: Kind) {
    let (w, h) = (plane.width(), plane.height());
    let mut sizes = Vec::with_capacity(levels);
    let (mut cw, mut ch) = (w, h);
    for _ in 0..levels {
        sizes.push((cw, ch));
        cw /= 2;
        ch /= 2;
    }
    for &(cw, ch) in sizes.iter().rev() {
        transform_level(plane, cw, ch, kind, true);
    }
}

/// Reconstructs only the deepest approximation band: an image of size
/// `w/2^levels × h/2^levels` (rescaled to pixel range). Used for
/// multi-resolution delivery.
pub fn extract_ll(plane: &Plane, levels: usize, kind: Kind) -> Plane {
    let w = plane.width() >> levels;
    let h = plane.height() >> levels;
    let mut out = Plane::new(w, h);
    // Each Haar level scales the average by √2 per dimension (factor 2 per
    // 2-D level); CDF 5/3 keeps the DC gain at 1 per level.
    let scale = match kind {
        Kind::Haar => (1u64 << levels) as f64,
        Kind::Cdf53 => 1.0,
    };
    for y in 0..h {
        for x in 0..w {
            out.set(x, y, plane.get(x, y) / scale);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plane(w: usize, h: usize) -> Plane {
        let data: Vec<f64> = (0..w * h)
            .map(|i| ((i * 37 % 97) as f64) - 48.0 + 0.25 * (i as f64).sin())
            .collect();
        Plane::from_data(w, h, data)
    }

    fn max_err(a: &Plane, b: &Plane) -> f64 {
        a.data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn haar_roundtrip() {
        let orig = sample_plane(32, 16);
        let mut p = orig.clone();
        forward(&mut p, 3, Kind::Haar);
        inverse(&mut p, 3, Kind::Haar);
        assert!(max_err(&orig, &p) < 1e-9);
    }

    #[test]
    fn cdf53_roundtrip() {
        let orig = sample_plane(64, 32);
        let mut p = orig.clone();
        forward(&mut p, 4, Kind::Cdf53);
        inverse(&mut p, 4, Kind::Cdf53);
        assert!(max_err(&orig, &p) < 1e-9);
    }

    #[test]
    fn haar_energy_preserved() {
        // Orthonormal transform: Parseval.
        let orig = sample_plane(16, 16);
        let e0: f64 = orig.data().iter().map(|v| v * v).sum();
        let mut p = orig.clone();
        forward(&mut p, 2, Kind::Haar);
        let e1: f64 = p.data().iter().map(|v| v * v).sum();
        assert!((e0 - e1).abs() < 1e-6 * e0.max(1.0));
    }

    #[test]
    fn constant_image_compacts_to_dc() {
        let p0 = Plane::from_data(8, 8, vec![5.0; 64]);
        let mut p = p0.clone();
        forward(&mut p, 3, Kind::Haar);
        // All energy in the single LL coefficient.
        let nonzero = p.data().iter().filter(|v| v.abs() > 1e-9).count();
        assert_eq!(nonzero, 1);
        assert!((p.get(0, 0) - 5.0 * 8.0).abs() < 1e-9);
        // CDF 5/3: DC gain 1, detail bands vanish too.
        let mut q = p0.clone();
        forward(&mut q, 3, Kind::Cdf53);
        let nonzero = q.data().iter().filter(|v| v.abs() > 1e-9).count();
        assert_eq!(nonzero, 1);
        assert!((q.get(0, 0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn extract_ll_matches_downsampling_for_smooth_images() {
        // A smooth gradient: the LL band at level 1 should be close to the
        // 2×2 block averages.
        let p = Plane::from_data(8, 8, (0..64).map(|i| (i % 8) as f64 * 4.0).collect());
        let mut t = p.clone();
        forward(&mut t, 1, Kind::Haar);
        let ll = extract_ll(&t, 1, Kind::Haar);
        for y in 0..4 {
            for x in 0..4 {
                let avg = (p.get(2 * x, 2 * y)
                    + p.get(2 * x + 1, 2 * y)
                    + p.get(2 * x, 2 * y + 1)
                    + p.get(2 * x + 1, 2 * y + 1))
                    / 4.0;
                assert!((ll.get(x, y) - avg).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "width not divisible")]
    fn dimension_check() {
        let mut p = Plane::new(6, 8);
        forward(&mut p, 2, Kind::Haar);
    }
}
