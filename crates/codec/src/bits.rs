//! Bit-level I/O and the entropy codes used by the layer encoders:
//! Exp-Golomb universal codes plus zero-run-length coding of quantised
//! coefficient streams.

/// MSB-first bit writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the last byte (0..8); 0 means byte-aligned.
    fill: u8,
}

impl BitWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Writes one bit.
    pub fn put_bit(&mut self, bit: bool) {
        if self.fill == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= 1 << (7 - self.fill);
        }
        self.fill = (self.fill + 1) % 8;
    }

    /// Writes `n` low bits of `v`, MSB first.
    pub fn put_bits(&mut self, v: u64, n: u8) {
        for i in (0..n).rev() {
            self.put_bit((v >> i) & 1 == 1);
        }
    }

    /// Exp-Golomb code for an unsigned value.
    pub fn put_ue(&mut self, v: u64) {
        let x = v + 1;
        let len = 64 - x.leading_zeros() as u8; // bit length of x
        for _ in 0..len - 1 {
            self.put_bit(false);
        }
        self.put_bits(x, len);
    }

    /// Exp-Golomb code for a signed value (zigzag mapped).
    pub fn put_se(&mut self, v: i64) {
        let zz = if v >= 0 {
            (v as u64) << 1
        } else {
            ((-v as u64) << 1) - 1
        };
        self.put_ue(zz);
    }

    /// Pads to a byte boundary and returns the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }

    /// Bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.fill == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.fill as usize
        }
    }
}

/// MSB-first bit reader.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // bit position
}

/// Error: ran out of bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBits;

impl<'a> BitReader<'a> {
    /// Reads from a byte slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads one bit.
    pub fn get_bit(&mut self) -> Result<bool, OutOfBits> {
        let byte = self.pos / 8;
        if byte >= self.bytes.len() {
            return Err(OutOfBits);
        }
        let bit = (self.bytes[byte] >> (7 - self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `n` bits, MSB first.
    pub fn get_bits(&mut self, n: u8) -> Result<u64, OutOfBits> {
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.get_bit()? as u64;
        }
        Ok(v)
    }

    /// Reads an unsigned Exp-Golomb code.
    pub fn get_ue(&mut self) -> Result<u64, OutOfBits> {
        let mut zeros = 0u8;
        while !self.get_bit()? {
            zeros += 1;
            if zeros > 63 {
                return Err(OutOfBits);
            }
        }
        let rest = self.get_bits(zeros)?;
        Ok(((1u64 << zeros) | rest) - 1)
    }

    /// Reads a signed Exp-Golomb code.
    pub fn get_se(&mut self) -> Result<i64, OutOfBits> {
        let zz = self.get_ue()?;
        Ok(if zz % 2 == 0 {
            (zz >> 1) as i64
        } else {
            -(((zz + 1) >> 1) as i64)
        })
    }
}

/// Encodes a quantised coefficient stream with zero-run coding: each token
/// is `(run-of-zeros, nonzero value)`; a final token flushes trailing zeros
/// with value 0.
pub fn encode_coeffs(w: &mut BitWriter, coeffs: &[i32]) {
    let mut run = 0u64;
    for &c in coeffs {
        if c == 0 {
            run += 1;
        } else {
            w.put_ue(run);
            w.put_se(c as i64);
            run = 0;
        }
    }
    // Terminator: the remaining zeros and an explicit 0 value.
    w.put_ue(run);
    w.put_se(0);
}

/// Decodes `n` coefficients written by [`encode_coeffs`].
pub fn decode_coeffs(r: &mut BitReader<'_>, n: usize) -> Result<Vec<i32>, OutOfBits> {
    let mut out = Vec::with_capacity(n);
    loop {
        let run = r.get_ue()?;
        let val = r.get_se()?;
        for _ in 0..run {
            if out.len() >= n {
                return Err(OutOfBits);
            }
            out.push(0);
        }
        if val == 0 {
            // Terminator: its run must flush exactly the remaining zeros.
            if out.len() != n {
                return Err(OutOfBits);
            }
            return Ok(out);
        }
        if out.len() >= n {
            return Err(OutOfBits);
        }
        out.push(val as i32);
        if out.len() == n {
            // Consume the terminator.
            let run = r.get_ue()?;
            let val = r.get_se()?;
            if run != 0 || val != 0 {
                return Err(OutOfBits);
            }
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bit(true);
        w.put_bits(0b1011, 4);
        w.put_bit(false);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(r.get_bit().unwrap());
        assert_eq!(r.get_bits(4).unwrap(), 0b1011);
        assert!(!r.get_bit().unwrap());
    }

    #[test]
    fn ue_roundtrip() {
        let mut w = BitWriter::new();
        let values = [0u64, 1, 2, 3, 4, 7, 8, 100, 12345, 1 << 40];
        for &v in &values {
            w.put_ue(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.get_ue().unwrap(), v);
        }
    }

    #[test]
    fn se_roundtrip() {
        let mut w = BitWriter::new();
        let values = [0i64, 1, -1, 2, -2, 100, -100, 65535, -65535];
        for &v in &values {
            w.put_se(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.get_se().unwrap(), v);
        }
    }

    #[test]
    fn out_of_bits_detected() {
        let bytes = [0u8]; // 8 zero bits: an unterminated ue prefix
        let mut r = BitReader::new(&bytes);
        assert!(r.get_ue().is_err());
        let mut r2 = BitReader::new(&[]);
        assert!(r2.get_bit().is_err());
    }

    #[test]
    fn coeff_roundtrip_dense_and_sparse() {
        for coeffs in [
            vec![0i32; 50],
            vec![1, -2, 3, -4, 5],
            {
                let mut v = vec![0i32; 100];
                v[3] = 7;
                v[50] = -120;
                v[99] = 1;
                v
            },
            vec![],
        ] {
            let mut w = BitWriter::new();
            encode_coeffs(&mut w, &coeffs);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            assert_eq!(decode_coeffs(&mut r, coeffs.len()).unwrap(), coeffs);
        }
    }

    #[test]
    fn sparse_streams_are_small() {
        let mut sparse = vec![0i32; 4096];
        sparse[17] = 3;
        let mut w = BitWriter::new();
        encode_coeffs(&mut w, &sparse);
        let n = w.finish().len();
        assert!(n < 16, "sparse block coded in {n} bytes");
    }

    #[test]
    fn bit_len_accounting() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.put_bit(true);
        assert_eq!(w.bit_len(), 1);
        w.put_bits(0, 9);
        assert_eq!(w.bit_len(), 10);
    }
}
