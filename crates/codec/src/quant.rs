//! Uniform dead-zone quantisation of transform coefficients.

/// Quantises with step `q`: values in `(-q, q)` map to 0 (the dead zone),
/// everything else to `round(v / q)`.
pub fn quantize(coeffs: &[f64], q: f64) -> Vec<i32> {
    debug_assert!(q > 0.0);
    coeffs
        .iter()
        .map(|&v| {
            let s = v / q;
            if s.abs() < 1.0 {
                0
            } else {
                s.round() as i32
            }
        })
        .collect()
}

/// Reconstructs coefficient values (`symbol × q`).
pub fn dequantize(symbols: &[i32], q: f64) -> Vec<f64> {
    symbols.iter().map(|&s| s as f64 * q).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_zone_zeroes_small_values() {
        let q = quantize(&[0.0, 0.4, -0.9, 1.0, -1.6, 7.3], 1.0);
        assert_eq!(q, vec![0, 0, 0, 1, -2, 7]);
    }

    #[test]
    fn roundtrip_error_bounded_by_step() {
        let vals: Vec<f64> = (0..100).map(|i| (i as f64 - 50.0) * 0.77).collect();
        for &step in &[0.5, 2.0, 8.0] {
            let syms = quantize(&vals, step);
            let back = dequantize(&syms, step);
            for (v, r) in vals.iter().zip(&back) {
                assert!(
                    (v - r).abs() <= step,
                    "value {v}, reconstructed {r}, step {step}"
                );
            }
        }
    }

    #[test]
    fn finer_steps_reduce_error() {
        let vals: Vec<f64> = (0..64).map(|i| (i as f64).sin() * 30.0).collect();
        let err = |step: f64| -> f64 {
            let back = dequantize(&quantize(&vals, step), step);
            vals.iter().zip(&back).map(|(a, b)| (a - b).abs()).sum()
        };
        assert!(err(1.0) < err(4.0));
        assert!(err(4.0) < err(16.0));
    }
}
