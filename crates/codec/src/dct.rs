//! 8×8 block DCT-II — the "local cosine" basis of the residual layers.
//!
//! The paper's module uses local cosine bases (block cosine transforms with
//! smooth windows) for residual coding; an 8×8 DCT-II with zigzag coefficient
//! ordering captures the same role (and is exactly the JPEG kernel, whose
//! blocking artifacts the multi-layer scheme was designed to compensate).

use std::sync::OnceLock;

/// Block edge length.
pub const N: usize = 8;

fn cos_table() -> &'static [[f64; N]; N] {
    static TABLE: OnceLock<[[f64; N]; N]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [[0.0; N]; N];
        for (k, row) in t.iter_mut().enumerate() {
            for (n, v) in row.iter_mut().enumerate() {
                *v =
                    ((2 * n + 1) as f64 * k as f64 * std::f64::consts::PI / (2.0 * N as f64)).cos();
            }
        }
        t
    })
}

#[inline]
fn alpha(k: usize) -> f64 {
    if k == 0 {
        (1.0 / N as f64).sqrt()
    } else {
        (2.0 / N as f64).sqrt()
    }
}

/// Forward 2-D DCT-II of an 8×8 block (row-major, orthonormal).
pub fn forward(block: &[f64]) -> Vec<f64> {
    debug_assert_eq!(block.len(), N * N);
    let t = cos_table();
    let mut tmp = [0.0f64; N * N];
    // Rows.
    for y in 0..N {
        for k in 0..N {
            let mut s = 0.0;
            for n in 0..N {
                s += block[y * N + n] * t[k][n];
            }
            tmp[y * N + k] = alpha(k) * s;
        }
    }
    // Columns.
    let mut out = vec![0.0f64; N * N];
    for x in 0..N {
        for k in 0..N {
            let mut s = 0.0;
            for n in 0..N {
                s += tmp[n * N + x] * t[k][n];
            }
            out[k * N + x] = alpha(k) * s;
        }
    }
    out
}

/// Inverse 2-D DCT (DCT-III) of an 8×8 coefficient block.
pub fn inverse(coeffs: &[f64]) -> Vec<f64> {
    debug_assert_eq!(coeffs.len(), N * N);
    let t = cos_table();
    let mut tmp = [0.0f64; N * N];
    // Columns.
    for x in 0..N {
        for n in 0..N {
            let mut s = 0.0;
            for k in 0..N {
                s += alpha(k) * coeffs[k * N + x] * t[k][n];
            }
            tmp[n * N + x] = s;
        }
    }
    // Rows.
    let mut out = vec![0.0f64; N * N];
    for y in 0..N {
        for n in 0..N {
            let mut s = 0.0;
            for k in 0..N {
                s += alpha(k) * tmp[y * N + k] * t[k][n];
            }
            out[y * N + n] = s;
        }
    }
    out
}

/// The JPEG zigzag scan order for an 8×8 block.
pub fn zigzag_order() -> &'static [usize; N * N] {
    static ORDER: OnceLock<[usize; N * N]> = OnceLock::new();
    ORDER.get_or_init(|| {
        let mut order = [0usize; N * N];
        let mut idx = 0;
        for s in 0..2 * N - 1 {
            let range: Vec<usize> = if s % 2 == 0 {
                (0..=s.min(N - 1)).rev().collect()
            } else {
                (0..=s.min(N - 1)).collect()
            };
            for y in range {
                let x = s - y;
                if x < N && y < N {
                    order[idx] = y * N + x;
                    idx += 1;
                }
            }
        }
        order
    })
}

/// Reorders a block into zigzag order.
pub fn to_zigzag(block: &[f64]) -> Vec<f64> {
    zigzag_order().iter().map(|&i| block[i]).collect()
}

/// Undoes [`to_zigzag`].
pub fn from_zigzag(zz: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; N * N];
    for (z, &i) in zigzag_order().iter().enumerate() {
        out[i] = zz[z];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> Vec<f64> {
        (0..64).map(|i| ((i * 29 % 64) as f64) - 31.5).collect()
    }

    #[test]
    fn dct_roundtrip() {
        let b = sample_block();
        let c = forward(&b);
        let r = inverse(&c);
        for (x, y) in b.iter().zip(&r) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn dct_is_orthonormal() {
        let b = sample_block();
        let c = forward(&b);
        let e0: f64 = b.iter().map(|v| v * v).sum();
        let e1: f64 = c.iter().map(|v| v * v).sum();
        assert!((e0 - e1).abs() < 1e-6);
    }

    #[test]
    fn constant_block_is_pure_dc() {
        let b = vec![3.0; 64];
        let c = forward(&b);
        assert!((c[0] - 24.0).abs() < 1e-9, "DC = 8 × 3");
        assert!(c[1..].iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let order = zigzag_order();
        let mut seen = [false; 64];
        for &i in order.iter() {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 1, "second entry is (0,1)");
        assert_eq!(order[63], 63);
    }

    #[test]
    fn zigzag_roundtrip() {
        let b = sample_block();
        assert_eq!(from_zigzag(&to_zigzag(&b)), b);
    }
}
