//! Wavelet-packet best-basis coding of residual tiles.
//!
//! A full wavelet packet decomposition recursively splits every subband, not
//! just the approximation. The *best basis* (Coifman–Wickerhauser) prunes
//! this tree: a node is split only if the total cost of its four transformed
//! children is lower than coding the node's own coefficients. We use the
//! ℓ¹ cost (valid for the orthonormal Haar step) and code the chosen tree
//! as one bit per node (split/leaf) followed by the leaf coefficients in
//! DFS order, dead-zone quantised and zero-run coded.

use crate::bits::{decode_coeffs, encode_coeffs, BitReader, BitWriter, OutOfBits};
use crate::quant::{dequantize, quantize};

/// Edge length of the dyadic tiles residual planes are partitioned into.
pub const TILE: usize = 32;

/// Leaves are never smaller than this edge length.
pub const MIN_BLOCK: usize = 4;

/// One orthonormal 2-D Haar analysis step: `n×n` block → four `n/2×n/2`
/// subbands `[LL, LH, HL, HH]`.
fn haar_step(block: &[f64], n: usize) -> [Vec<f64>; 4] {
    let half = n / 2;
    let mut ll = vec![0.0; half * half];
    let mut lh = vec![0.0; half * half];
    let mut hl = vec![0.0; half * half];
    let mut hh = vec![0.0; half * half];
    for y in 0..half {
        for x in 0..half {
            let a = block[(2 * y) * n + 2 * x];
            let b = block[(2 * y) * n + 2 * x + 1];
            let c = block[(2 * y + 1) * n + 2 * x];
            let d = block[(2 * y + 1) * n + 2 * x + 1];
            let i = y * half + x;
            ll[i] = (a + b + c + d) / 2.0;
            lh[i] = (a - b + c - d) / 2.0; // horizontal detail
            hl[i] = (a + b - c - d) / 2.0; // vertical detail
            hh[i] = (a - b - c + d) / 2.0; // diagonal detail
        }
    }
    [ll, lh, hl, hh]
}

/// Inverse of [`haar_step`].
fn haar_unstep(bands: &[Vec<f64>; 4], n: usize) -> Vec<f64> {
    let half = n / 2;
    let mut out = vec![0.0; n * n];
    for y in 0..half {
        for x in 0..half {
            let i = y * half + x;
            let (ll, lh, hl, hh) = (bands[0][i], bands[1][i], bands[2][i], bands[3][i]);
            out[(2 * y) * n + 2 * x] = (ll + lh + hl + hh) / 2.0;
            out[(2 * y) * n + 2 * x + 1] = (ll - lh + hl - hh) / 2.0;
            out[(2 * y + 1) * n + 2 * x] = (ll + lh - hl - hh) / 2.0;
            out[(2 * y + 1) * n + 2 * x + 1] = (ll - lh - hl + hh) / 2.0;
        }
    }
    out
}

/// The pruned packet tree over one tile.
#[derive(Debug, Clone, PartialEq)]
pub enum PacketNode {
    /// Code these coefficients directly.
    Leaf(Vec<f64>),
    /// One Haar step applied; children are `[LL, LH, HL, HH]`.
    Split(Box<[PacketNode; 4]>),
}

fn l1(coeffs: &[f64]) -> f64 {
    coeffs.iter().map(|c| c.abs()).sum()
}

/// Builds the best-basis tree for an `n×n` block; returns the tree and its
/// cost.
fn analyze(block: Vec<f64>, n: usize) -> (PacketNode, f64) {
    let leaf_cost = l1(&block);
    if n / 2 < MIN_BLOCK {
        return (PacketNode::Leaf(block), leaf_cost);
    }
    let bands = haar_step(&block, n);
    let mut children = Vec::with_capacity(4);
    let mut split_cost = 0.0;
    for band in bands {
        let (node, cost) = analyze(band, n / 2);
        split_cost += cost;
        children.push(node);
    }
    if split_cost < leaf_cost {
        let boxed: Box<[PacketNode; 4]> = match children.try_into() {
            Ok(arr) => Box::new(arr),
            Err(_) => unreachable!("exactly four children"),
        };
        (PacketNode::Split(boxed), split_cost)
    } else {
        (PacketNode::Leaf(block), leaf_cost)
    }
}

fn write_node(w: &mut BitWriter, node: &PacketNode, q: f64) {
    match node {
        PacketNode::Leaf(coeffs) => {
            w.put_bit(false);
            encode_coeffs(w, &quantize(coeffs, q));
        }
        PacketNode::Split(children) => {
            w.put_bit(true);
            for c in children.iter() {
                write_node(w, c, q);
            }
        }
    }
}

fn read_node(r: &mut BitReader<'_>, n: usize, q: f64) -> Result<Vec<f64>, OutOfBits> {
    let split = r.get_bit()?;
    if !split {
        let syms = decode_coeffs(r, n * n)?;
        return Ok(dequantize(&syms, q));
    }
    if n / 2 < MIN_BLOCK {
        return Err(OutOfBits); // malformed: split below minimum block size
    }
    let mut bands: [Vec<f64>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for band in bands.iter_mut() {
        *band = read_node(r, n / 2, q)?;
    }
    Ok(haar_unstep(&bands, n))
}

/// Encodes one `n×n` tile (best-basis analysis + quantised leaves).
pub fn encode_tile(w: &mut BitWriter, block: Vec<f64>, n: usize, q: f64) {
    let (tree, _) = analyze(block, n);
    write_node(w, &tree, q);
}

/// Decodes one `n×n` tile back to (lossy) samples.
pub fn decode_tile(r: &mut BitReader<'_>, n: usize, q: f64) -> Result<Vec<f64>, OutOfBits> {
    read_node(r, n, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(block: Vec<f64>, n: usize, q: f64) -> Vec<f64> {
        let mut w = BitWriter::new();
        encode_tile(&mut w, block, n, q);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        decode_tile(&mut r, n, q).unwrap()
    }

    #[test]
    fn haar_step_roundtrip() {
        let block: Vec<f64> = (0..64).map(|i| (i * 7 % 23) as f64 - 11.0).collect();
        let bands = haar_step(&block, 8);
        let back = haar_unstep(&bands, 8);
        for (a, b) in block.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn haar_step_preserves_energy() {
        let block: Vec<f64> = (0..256).map(|i| ((i as f64) * 0.37).sin() * 9.0).collect();
        let e0: f64 = block.iter().map(|v| v * v).sum();
        let bands = haar_step(&block, 16);
        let e1: f64 = bands.iter().flat_map(|b| b.iter()).map(|v| v * v).sum();
        assert!((e0 - e1).abs() < 1e-9 * e0);
    }

    #[test]
    fn smooth_tile_splits_constant_codes_tiny() {
        // A smooth gradient benefits from splitting (energy compaction).
        let smooth: Vec<f64> = (0..TILE * TILE)
            .map(|i| (i / TILE) as f64 + (i % TILE) as f64)
            .collect();
        let (tree, _) = analyze(smooth.clone(), TILE);
        assert!(matches!(tree, PacketNode::Split(_)), "smooth block splits");
        // Coding the constant tile takes very few bytes.
        let mut w = BitWriter::new();
        encode_tile(&mut w, vec![0.0; TILE * TILE], TILE, 1.0);
        assert!(w.finish().len() < 8);
    }

    #[test]
    fn reconstruction_error_bounded() {
        let block: Vec<f64> = (0..TILE * TILE)
            .map(|i| ((i as f64) * 0.11).sin() * 40.0 + ((i / TILE) as f64) * 0.5)
            .collect();
        for &q in &[0.5, 2.0, 8.0] {
            let back = roundtrip(block.clone(), TILE, q);
            let rmse = (block
                .iter()
                .zip(&back)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                / block.len() as f64)
                .sqrt();
            // Orthonormal basis: per-coefficient error ≤ q, so RMSE ≤ q
            // (loose but sufficient to show monotone behaviour).
            assert!(rmse <= q, "rmse {rmse} at step {q}");
        }
    }

    #[test]
    fn finer_quantiser_costs_more_bits() {
        let block: Vec<f64> = (0..TILE * TILE)
            .map(|i| ((i as f64) * 0.23).cos() * 25.0)
            .collect();
        let size = |q: f64| {
            let mut w = BitWriter::new();
            encode_tile(&mut w, block.clone(), TILE, q);
            w.finish().len()
        };
        assert!(size(0.5) > size(4.0));
        assert!(size(4.0) >= size(16.0));
    }

    #[test]
    fn truncated_stream_detected() {
        let block: Vec<f64> = (0..TILE * TILE).map(|i| (i % 9) as f64).collect();
        let mut w = BitWriter::new();
        encode_tile(&mut w, block, TILE, 1.0);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes[..2.min(bytes.len())]);
        assert!(decode_tile(&mut r, TILE, 1.0).is_err());
    }
}
