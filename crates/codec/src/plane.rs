//! `f64` coefficient planes: the working representation of the codec.

use rcmo_imaging::GrayImage;

/// A 2-D array of `f64` samples, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Plane {
    width: usize,
    height: usize,
    data: Vec<f64>,
}

impl Plane {
    /// A zero plane.
    pub fn new(width: usize, height: usize) -> Self {
        Plane {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Wraps raw samples.
    pub fn from_data(width: usize, height: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), width * height);
        Plane {
            width,
            height,
            data,
        }
    }

    /// Converts an image to a centred plane (pixel − 128).
    pub fn from_image(img: &GrayImage) -> Self {
        Plane {
            width: img.width(),
            height: img.height(),
            data: img.pixels().iter().map(|&p| p as f64 - 128.0).collect(),
        }
    }

    /// Converts back to an image (adds 128, rounds, clamps).
    pub fn to_image(&self) -> GrayImage {
        let pixels: Vec<u8> = self
            .data
            .iter()
            .map(|&v| (v + 128.0).round().clamp(0.0, 255.0) as u8)
            .collect();
        GrayImage::from_pixels(self.width, self.height, pixels).expect("plane dimensions are valid")
    }

    /// Plane width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw samples.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw samples.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Sample at `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f64 {
        self.data[y * self.width + x]
    }

    /// Sets sample `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f64) {
        self.data[y * self.width + x] = v;
    }

    /// Pads to at least `(w, h)` by edge replication.
    pub fn pad_to(&self, w: usize, h: usize) -> Plane {
        let w = w.max(self.width);
        let h = h.max(self.height);
        let mut out = Plane::new(w, h);
        for y in 0..h {
            let sy = y.min(self.height - 1);
            for x in 0..w {
                let sx = x.min(self.width - 1);
                out.set(x, y, self.get(sx, sy));
            }
        }
        out
    }

    /// Top-left crop.
    pub fn crop(&self, w: usize, h: usize) -> Plane {
        assert!(w <= self.width && h <= self.height);
        let mut out = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                out.set(x, y, self.get(x, y));
            }
        }
        out
    }

    /// Copies the square block at `(bx, by)` of size `n`.
    pub fn block(&self, bx: usize, by: usize, n: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(n * n);
        for y in 0..n {
            for x in 0..n {
                out.push(self.get(bx + x, by + y));
            }
        }
        out
    }

    /// Writes a square block back at `(bx, by)`.
    pub fn set_block(&mut self, bx: usize, by: usize, n: usize, block: &[f64]) {
        for y in 0..n {
            for x in 0..n {
                self.set(bx + x, by + y, block[y * n + x]);
            }
        }
    }

    /// `self − other`, element-wise.
    pub fn sub(&self, other: &Plane) -> Plane {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        Plane {
            width: self.width,
            height: self.height,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// `self += other`, element-wise.
    pub fn add_assign(&mut self, other: &Plane) {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_roundtrip() {
        let img = GrayImage::from_fn(9, 7, |x, y| ((x * 13 + y * 31) % 256) as u8).unwrap();
        let p = Plane::from_image(&img);
        assert_eq!(p.to_image(), img);
    }

    #[test]
    fn pad_replicates_edges() {
        let p = Plane::from_data(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let q = p.pad_to(4, 3);
        assert_eq!(q.get(3, 0), 2.0);
        assert_eq!(q.get(0, 2), 3.0);
        assert_eq!(q.get(3, 2), 4.0);
        assert_eq!(q.crop(2, 2), p);
    }

    #[test]
    fn blocks_roundtrip() {
        let mut p = Plane::new(8, 8);
        let block: Vec<f64> = (0..16).map(|i| i as f64).collect();
        p.set_block(4, 4, 4, &block);
        assert_eq!(p.block(4, 4, 4), block);
        assert_eq!(p.get(0, 0), 0.0);
    }

    #[test]
    fn arithmetic() {
        let a = Plane::from_data(2, 1, vec![5.0, 7.0]);
        let b = Plane::from_data(2, 1, vec![2.0, 3.0]);
        let d = a.sub(&b);
        assert_eq!(d.data(), &[3.0, 4.0]);
        let mut c = b.clone();
        c.add_assign(&d);
        assert_eq!(c, a);
    }
}
