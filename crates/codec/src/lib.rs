//! # rcmo-codec — the multi-layered hybrid image codec
//!
//! Reimplementation of the paper's image-compression-transfer module
//! (Averbuch et al. \[1,3,20\]): an image is encoded as "the superposition of
//! one main approximation, and a sequence of residuals", where *different
//! bases* code the main approximation and the residual layers:
//!
//! * the **main approximation** is a multi-level 2-D wavelet transform
//!   (orthonormal Haar or CDF 5/3 lifting) coarsely quantised;
//! * each **residual layer** encodes `original − reconstruction-so-far` in
//!   either a **wavelet-packet best basis** (Coifman–Wickerhauser cost
//!   pruning on dyadic tiles) or a block **local-cosine (DCT-II)** basis,
//!   with a finer quantiser per layer.
//!
//! The bitstream is *progressive*: each layer is a self-delimited section,
//! so any byte prefix that covers `k` complete sections decodes to the
//! `k`-layer reconstruction ([`decode_prefix`]) — this is what lets the
//! conferencing system serve the same stored image to different partners at
//! different qualities (paper Fig. 9) by transferring BLOB prefixes. The
//! main layer additionally supports decoding at reduced *resolution*
//! ([`decode_resolution`]): reconstructing only the first `k` wavelet scales
//! yields a `w/2^k × h/2^k` image.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod dct;
pub mod haar;
pub mod layered;
pub mod packet;
pub mod plane;
pub mod quant;

pub use layered::{
    decode, decode_prefix, decode_resolution, encode, encode_to_budget, Basis, CodecError,
    EncoderConfig, LayerSpec, LayeredHeader, StreamInfo, Wavelet,
};
pub use plane::Plane;
