//! Error type shared by the core crate.

use std::fmt;

/// Errors raised by CP-network, document, and presentation operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A variable id does not exist in the network.
    UnknownVariable(u32),
    /// A value index is outside the variable's domain.
    ValueOutOfRange {
        /// The offending variable.
        var: u32,
        /// The out-of-range value index.
        value: u16,
        /// The size of the variable's domain.
        domain: usize,
    },
    /// A variable domain was empty or exceeded the supported size.
    BadDomain(String),
    /// Setting the requested parent set would create a directed cycle.
    CycleDetected(String),
    /// A conditional preference table row is not a permutation of the domain.
    BadRanking(String),
    /// The network failed validation (message describes the first failure).
    Invalid(String),
    /// A parent assignment did not cover exactly the parent set.
    BadParentAssignment(String),
    /// A component id does not exist in the document.
    UnknownComponent(u32),
    /// A document-structure invariant was violated.
    BadStructure(String),
    /// An online update was rejected by the update policy.
    UpdateRejected(String),
    /// Persistence: the byte stream could not be decoded.
    Codec(String),
    /// The dominance query exceeded its node budget without an answer.
    SearchBudgetExhausted,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownVariable(v) => write!(f, "unknown variable id {v}"),
            CoreError::ValueOutOfRange { var, value, domain } => write!(
                f,
                "value {value} out of range for variable {var} (domain size {domain})"
            ),
            CoreError::BadDomain(m) => write!(f, "bad domain: {m}"),
            CoreError::CycleDetected(m) => write!(f, "cycle detected: {m}"),
            CoreError::BadRanking(m) => write!(f, "bad ranking: {m}"),
            CoreError::Invalid(m) => write!(f, "invalid network: {m}"),
            CoreError::BadParentAssignment(m) => write!(f, "bad parent assignment: {m}"),
            CoreError::UnknownComponent(c) => write!(f, "unknown component id {c}"),
            CoreError::BadStructure(m) => write!(f, "bad document structure: {m}"),
            CoreError::UpdateRejected(m) => write!(f, "update rejected: {m}"),
            CoreError::Codec(m) => write!(f, "codec error: {m}"),
            CoreError::SearchBudgetExhausted => write!(f, "dominance search budget exhausted"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenient result alias for the core crate.
pub type Result<T> = std::result::Result<T, CoreError>;
