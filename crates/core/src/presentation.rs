//! The presentation engine (paper, Section 4).
//!
//! Given a [`MultimediaDocument`] and the evidence gathered from a viewing
//! session, the engine answers the two calls of Figure 6's
//! `MultimediaDocument` interface:
//!
//! * `defaultPresentation()` — the optimal presentation of the whole content
//!   given no viewer choices, and
//! * `reconfigPresentation(eventList)` — the best presentation consistent
//!   with the viewers' recent explicit choices.
//!
//! Both reduce to the CP-net *optimal completion* query. The engine then
//! applies the structural rule of the hierarchy: a component inside a hidden
//! composite is effectively invisible no matter which form its CP-net
//! variable took.
//!
//! A [`ViewerSession`] accumulates one viewer's explicit choices and her
//! *viewer-local* CP-net extension (Section 4.2): operations whose results
//! the viewer kept to herself live in the extension, never mutating the
//! shared document.

use crate::cpnet::{
    ExtendedNet, Extension, Outcome, PartialAssignment, PreferenceNet, ReconfigEngine,
    ReconfigStats, Value, VarId,
};
use crate::document::{ComponentId, ComponentKind, DerivedVar, FormKind, MultimediaDocument};
use crate::error::{CoreError, Result};
use std::sync::Mutex;

/// One explicit viewer decision: "present component `component` in form
/// `form`" (one of the paper's `eventList` entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewerChoice {
    /// The component the viewer clicked.
    pub component: ComponentId,
    /// The chosen form index (into the component's form list).
    pub form: usize,
}

/// Per-viewer session state kept by the interaction server.
#[derive(Debug, Clone)]
pub struct ViewerSession {
    viewer: String,
    /// Last-writer-wins explicit choices, keyed by component.
    choices: Vec<ViewerChoice>,
    /// Viewer-local CP-net extension (operation variables kept private).
    extension: Option<Extension>,
    /// Bookkeeping for the extension's derived variables.
    local_derived: Vec<DerivedVar>,
    /// Context evidence on tuning variables (e.g. measured bandwidth band).
    context: Vec<(VarId, Value)>,
}

impl ViewerSession {
    /// Opens a session for the named viewer.
    pub fn new(viewer: &str) -> Self {
        ViewerSession {
            viewer: viewer.to_string(),
            choices: Vec::new(),
            extension: None,
            local_derived: Vec::new(),
            context: Vec::new(),
        }
    }

    /// The viewer's name.
    pub fn viewer(&self) -> &str {
        &self.viewer
    }

    /// The explicit choices currently in force, in insertion order.
    pub fn choices(&self) -> &[ViewerChoice] {
        &self.choices
    }

    /// Viewer-local derived variables created so far.
    pub fn local_derived(&self) -> &[DerivedVar] {
        &self.local_derived
    }

    /// Records a choice, replacing any earlier choice on the same component.
    pub fn choose(&mut self, doc: &MultimediaDocument, choice: ViewerChoice) -> Result<()> {
        let forms = doc.forms(choice.component)?;
        if choice.form >= forms.len() {
            return Err(CoreError::ValueOutOfRange {
                var: choice.component.0,
                value: choice.form as u16,
                domain: forms.len(),
            });
        }
        self.choices.retain(|c| c.component != choice.component);
        self.choices.push(choice);
        Ok(())
    }

    /// Withdraws the choice on `component` (back to author preference).
    pub fn unchoose(&mut self, component: ComponentId) {
        self.choices.retain(|c| c.component != component);
    }

    /// Sets context evidence on a tuning variable (e.g. bandwidth band).
    pub fn set_context(&mut self, var: VarId, value: Value) {
        self.context.retain(|&(v, _)| v != var);
        self.context.push((var, value));
    }

    /// Performs an operation on a component **keeping the result viewer
    /// local**: a derived variable is added to this session's extension,
    /// the shared document is untouched (paper, Section 4.2).
    ///
    /// `trigger_form` is the form the component was presented in when the
    /// operation was performed.
    pub fn apply_local_operation(
        &mut self,
        doc: &MultimediaDocument,
        component: ComponentId,
        trigger_form: usize,
        operation: &str,
    ) -> Result<VarId> {
        let forms = doc.forms(component)?;
        if trigger_form >= forms.len() {
            return Err(CoreError::ValueOutOfRange {
                var: component.0,
                value: trigger_form as u16,
                domain: forms.len(),
            });
        }
        let ext = self
            .extension
            .get_or_insert_with(|| Extension::new(doc.net()));
        if ext.base_vars() != doc.net().len() {
            return Err(CoreError::UpdateRejected(format!(
                "session extension is stale (base had {} vars, document now has {}); \
                 call rebase first",
                ext.base_vars(),
                doc.net().len()
            )));
        }
        let name = format!("{}'{}@{}", doc.name(component)?, operation, self.viewer);
        let var = ext.add_derived_variable(
            doc.net(),
            component.var(),
            Value(trigger_form as u16),
            &name,
            &format!("{operation} applied"),
            "plain",
        )?;
        self.local_derived.push(DerivedVar {
            var,
            component,
            operation: operation.to_string(),
            trigger_form,
        });
        Ok(var)
    }

    /// Re-aligns the session after a structural document edit.
    ///
    /// `remap` is the id mapping returned by
    /// [`MultimediaDocument::remove_component`]; choices on removed
    /// components are dropped, the viewer-local extension is rebuilt empty
    /// (its parents may no longer exist — the paper's prototype re-derives
    /// local state after global edits), and context evidence is cleared.
    pub fn rebase(&mut self, remap: &[Option<ComponentId>]) {
        self.choices = self
            .choices
            .iter()
            .filter_map(|c| {
                remap
                    .get(c.component.idx())
                    .copied()
                    .flatten()
                    .map(|nc| ViewerChoice {
                        component: nc,
                        form: c.form,
                    })
            })
            .collect();
        self.extension = None;
        self.local_derived.clear();
        self.context.clear();
    }

    /// The evidence this session induces over the document's CP-net
    /// (choices plus context), e.g. for the prefetch planner.
    pub fn evidence_for(&self, doc: &MultimediaDocument) -> PartialAssignment {
        self.evidence(doc.net().len())
    }

    /// Builds the evidence (partial assignment) this session induces over
    /// `n` variables (document net, or document net + extension).
    fn evidence(&self, n: usize) -> PartialAssignment {
        let mut ev = PartialAssignment::empty(n);
        for c in &self.choices {
            ev.set(c.component.var(), Value(c.form as u16));
        }
        for &(v, val) in &self.context {
            if v.idx() < n {
                ev.set(v, val);
            }
        }
        ev
    }
}

/// The computed presentation of a document for one viewer: which form every
/// component takes, and which components are *effectively* visible after
/// structural hiding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Presentation {
    /// Form index per component (indexed by `ComponentId`).
    forms: Vec<usize>,
    /// Effective visibility per component after structural hiding.
    visible: Vec<bool>,
    /// States of derived/tuning variables: `(variable name, value name)`.
    derived: Vec<(String, String)>,
}

impl Presentation {
    /// The chosen form of `c`.
    pub fn form(&self, c: ComponentId) -> usize {
        self.forms[c.idx()]
    }

    /// `true` if `c` is effectively visible (own form not hidden, and no
    /// hidden ancestor).
    pub fn is_visible(&self, c: ComponentId) -> bool {
        self.visible[c.idx()]
    }

    /// All form choices, indexed by component id.
    pub fn forms(&self) -> &[usize] {
        &self.forms
    }

    /// Derived / tuning variable states (name → value).
    pub fn derived_states(&self) -> &[(String, String)] {
        &self.derived
    }

    /// The minimal redisplay delta between two presentations: components
    /// whose chosen form or effective visibility changed. This is what a
    /// client actually needs to re-render — "the hierarchical structure of
    /// the object permits sending only the relevant parts of the object for
    /// redisplay" (paper §5.3).
    pub fn diff(&self, newer: &Presentation) -> Vec<PresentationDelta> {
        let n = self.forms.len().min(newer.forms.len());
        let mut out = Vec::new();
        for i in 0..n {
            if self.forms[i] != newer.forms[i] || self.visible[i] != newer.visible[i] {
                out.push(PresentationDelta {
                    component: ComponentId(i as u32),
                    old_form: self.forms[i],
                    new_form: newer.forms[i],
                    now_visible: newer.visible[i],
                });
            }
        }
        out
    }

    /// Bytes a client must *additionally* fetch to move from `self` to
    /// `newer`: the transfer costs of components that became visible or
    /// changed form (already-rendered components cost nothing).
    pub fn delta_transfer_bytes(&self, newer: &Presentation, doc: &MultimediaDocument) -> u64 {
        self.diff(newer)
            .iter()
            .filter(|d| d.now_visible)
            .map(|d| {
                doc.forms(d.component)
                    .map(|forms| forms[d.new_form].cost_bytes)
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Total bytes a client must receive to render this presentation
    /// (the sum of visible forms' transfer costs).
    pub fn transfer_bytes(&self, doc: &MultimediaDocument) -> u64 {
        self.forms
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.visible[i])
            .map(|(i, &f)| {
                doc.forms(ComponentId(i as u32))
                    .map(|forms| forms[f].cost_bytes)
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Renders the content pane (the right side of Figure 5's GUI) as text:
    /// one line per visible component with its chosen form.
    pub fn render(&self, doc: &MultimediaDocument) -> String {
        let mut out = String::new();
        for c in doc.iter_depth_first() {
            if !self.is_visible(c) {
                continue;
            }
            let name = doc.name(c).unwrap_or("<?>");
            let forms = doc.forms(c).unwrap();
            let form = &forms[self.form(c)];
            match doc.kind(c).unwrap_or(ComponentKind::Composite) {
                ComponentKind::Composite => {
                    out.push_str(&format!("[{name}]\n"));
                }
                ComponentKind::Primitive => {
                    out.push_str(&format!(
                        "  {name}: {} ({} bytes)\n",
                        form.name, form.cost_bytes
                    ));
                }
            }
        }
        for (name, value) in &self.derived {
            out.push_str(&format!("  ~ {name} = {value}\n"));
        }
        out
    }
}

/// One entry of a presentation redisplay delta (see [`Presentation::diff`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PresentationDelta {
    /// The component to re-render.
    pub component: ComponentId,
    /// Its previous form.
    pub old_form: usize,
    /// Its new form.
    pub new_form: usize,
    /// Whether it is visible after the change.
    pub now_visible: bool,
}

/// Presentation computation over documents and sessions.
///
/// The engine owns a [`ReconfigEngine`] behind a mutex, so repeated queries
/// for the same document are answered incrementally (dirty-cone recompute
/// over the viewer's previous outcome) or straight from the evidence memo;
/// see [`ReconfigEngine`]. The cache is
/// internal: all methods still take `&self`, and results are identical to
/// the stateless full sweep. Cloning an engine yields one with cold caches.
#[derive(Debug, Default)]
pub struct PresentationEngine {
    reconfig: Mutex<ReconfigEngine>,
}

impl Clone for PresentationEngine {
    fn clone(&self) -> Self {
        PresentationEngine::new()
    }
}

/// Cache key for the room-wide joint view. A NUL byte cannot appear in a
/// member name coming off the wire, so this never collides with a viewer.
const JOINT_VIEWER: &str = "\u{0}joint";

/// Cache key for the evidence-free default presentation.
const DEFAULT_VIEWER: &str = "\u{0}default";

impl PresentationEngine {
    /// Creates the engine with empty caches.
    pub fn new() -> Self {
        PresentationEngine::default()
    }

    fn completion(
        &self,
        doc: &MultimediaDocument,
        viewer: &str,
        evidence: &PartialAssignment,
    ) -> Outcome {
        self.reconfig
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .completion(doc.net(), viewer, evidence)
    }

    /// Cache behaviour counters of the underlying reconfiguration engine.
    pub fn reconfig_stats(&self) -> ReconfigStats {
        self.reconfig
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .stats()
    }

    /// `defaultPresentation()`: the author-optimal presentation, with no
    /// viewer evidence.
    pub fn default_presentation(&self, doc: &MultimediaDocument) -> Presentation {
        static LAT: rcmo_obs::LazyHistogram = rcmo_obs::LazyHistogram::new(
            "core.presentation.default.us",
            rcmo_obs::bounds::LATENCY_US,
        );
        let _t = LAT.start_timer();
        let ev = PartialAssignment::empty(doc.net().len());
        let outcome = self.completion(doc, DEFAULT_VIEWER, &ev);
        self.project(doc, doc.net(), &outcome)
    }

    /// `reconfigPresentation(eventList)` for one viewer: the best
    /// presentation consistent with the session's choices, context and
    /// viewer-local extension.
    ///
    /// Sessions with a non-empty viewer-local extension bypass the
    /// incremental caches: the fused net is rebuilt per call and swept in
    /// full (extensions are rare and small; see DESIGN.md §9).
    pub fn presentation_for(
        &self,
        doc: &MultimediaDocument,
        session: &ViewerSession,
    ) -> Result<Presentation> {
        static LAT: rcmo_obs::LazyHistogram = rcmo_obs::LazyHistogram::new(
            "core.presentation.reconfig.us",
            rcmo_obs::bounds::LATENCY_US,
        );
        let _t = LAT.start_timer();
        match &session.extension {
            Some(ext) if !ext.is_empty() => {
                let fused = ExtendedNet::new(doc.net(), ext)?;
                let ev = session.evidence(fused.num_vars());
                let outcome = fused.optimal_completion(&ev);
                Ok(self.project(doc, &fused, &outcome))
            }
            _ => {
                let ev = session.evidence(doc.net().len());
                let outcome = self.completion(doc, session.viewer(), &ev);
                Ok(self.project(doc, doc.net(), &outcome))
            }
        }
    }

    /// The *joint* presentation of a shared room: all sessions' choices are
    /// merged (later sessions override earlier ones on conflicts) and a
    /// single optimal completion is computed. This is the view a room uses
    /// when partners are fully synchronised; per-viewer variations (e.g.
    /// Figure 9's two resolutions) come from
    /// [`presentation_for`](Self::presentation_for).
    pub fn joint_presentation(
        &self,
        doc: &MultimediaDocument,
        sessions: &[&ViewerSession],
    ) -> Presentation {
        let n = doc.net().len();
        let mut ev = PartialAssignment::empty(n);
        for s in sessions {
            for c in &s.choices {
                ev.set(c.component.var(), Value(c.form as u16));
            }
            for &(v, val) in &s.context {
                if v.idx() < n {
                    ev.set(v, val);
                }
            }
        }
        let outcome = self.completion(doc, JOINT_VIEWER, &ev);
        self.project(doc, doc.net(), &outcome)
    }

    /// Projects a CP-net outcome onto a [`Presentation`]: component forms,
    /// structural hiding, derived variable states.
    fn project<N: PreferenceNet>(
        &self,
        doc: &MultimediaDocument,
        net: &N,
        outcome: &Outcome,
    ) -> Presentation {
        let ncomp = doc.num_components();
        let mut forms = vec![0usize; ncomp];
        for (i, form) in forms.iter_mut().enumerate() {
            *form = outcome[i].idx();
        }
        let mut visible = vec![false; ncomp];
        for c in doc.iter_depth_first() {
            let own_visible = doc
                .forms(c)
                .map(|fs| fs[forms[c.idx()]].kind != FormKind::Hidden)
                .unwrap_or(false);
            let parent_visible = doc
                .parent(c)
                .ok()
                .flatten()
                .map(|p| visible[p.idx()])
                .unwrap_or(true);
            visible[c.idx()] = own_visible && parent_visible;
        }
        let derived = (ncomp..net.num_vars())
            .map(|i| {
                let v = VarId(i as u32);
                (
                    net.var_name(v).to_string(),
                    net.value_name(v, outcome[i]).to_string(),
                )
            })
            .collect();
        Presentation {
            forms,
            visible,
            derived,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{MediaRef, PresentationForm, COMPOSITE_HIDDEN};

    fn medical_doc() -> (MultimediaDocument, ComponentId, ComponentId, ComponentId) {
        let mut doc = MultimediaDocument::new("record");
        let images = doc.add_composite(doc.root(), "Images").unwrap();
        let ct = doc
            .add_primitive(
                images,
                "CT",
                MediaRef::None,
                vec![
                    PresentationForm::new("flat", FormKind::Flat, 500_000),
                    PresentationForm::new("segmented", FormKind::Segmented, 650_000),
                    PresentationForm::hidden(),
                ],
            )
            .unwrap();
        let xray = doc
            .add_primitive(
                images,
                "X-ray",
                MediaRef::None,
                vec![
                    PresentationForm::new("flat", FormKind::Flat, 250_000),
                    PresentationForm::new("icon", FormKind::Icon, 4_000),
                    PresentationForm::hidden(),
                ],
            )
            .unwrap();
        // Author: if the CT is shown (flat or segmented), prefer the X-ray
        // as an icon (the paper's own example: "if a CT image is presented,
        // then a correlated X-ray image is preferred ... as a small icon").
        doc.author_parents(xray, &[ct]).unwrap();
        doc.author_preference(xray, &[(ct, 0)], &[1, 0, 2]).unwrap();
        doc.author_preference(xray, &[(ct, 1)], &[1, 0, 2]).unwrap();
        doc.author_preference(xray, &[(ct, 2)], &[0, 1, 2]).unwrap();
        doc.validate().unwrap();
        (doc, images, ct, xray)
    }

    #[test]
    fn default_presentation_follows_author() {
        let (doc, _, ct, xray) = medical_doc();
        let engine = PresentationEngine::new();
        let p = engine.default_presentation(&doc);
        assert_eq!(p.form(ct), 0, "CT flat");
        assert_eq!(p.form(xray), 1, "X-ray iconified while CT shown");
        assert!(p.is_visible(ct));
        assert!(p.is_visible(xray));
    }

    #[test]
    fn viewer_choice_reconfigures() {
        let (doc, _, ct, xray) = medical_doc();
        let engine = PresentationEngine::new();
        let mut s = ViewerSession::new("dr-a");
        // Viewer hides the CT; author then prefers the X-ray flat.
        s.choose(
            &doc,
            ViewerChoice {
                component: ct,
                form: 2,
            },
        )
        .unwrap();
        let p = engine.presentation_for(&doc, &s).unwrap();
        assert_eq!(p.form(ct), 2);
        assert!(!p.is_visible(ct));
        assert_eq!(p.form(xray), 0, "X-ray back to flat once CT hidden");
    }

    #[test]
    fn choice_is_last_writer_wins_and_can_be_withdrawn() {
        let (doc, _, ct, _) = medical_doc();
        let mut s = ViewerSession::new("dr-a");
        s.choose(
            &doc,
            ViewerChoice {
                component: ct,
                form: 1,
            },
        )
        .unwrap();
        s.choose(
            &doc,
            ViewerChoice {
                component: ct,
                form: 2,
            },
        )
        .unwrap();
        assert_eq!(s.choices().len(), 1);
        assert_eq!(s.choices()[0].form, 2);
        s.unchoose(ct);
        assert!(s.choices().is_empty());
    }

    #[test]
    fn invalid_choice_rejected() {
        let (doc, _, ct, _) = medical_doc();
        let mut s = ViewerSession::new("dr-a");
        assert!(s
            .choose(
                &doc,
                ViewerChoice {
                    component: ct,
                    form: 9
                }
            )
            .is_err());
        assert!(s
            .choose(
                &doc,
                ViewerChoice {
                    component: ComponentId(99),
                    form: 0
                }
            )
            .is_err());
    }

    #[test]
    fn structural_hiding_beats_cpnet_value() {
        let (doc, images, ct, _) = medical_doc();
        let engine = PresentationEngine::new();
        let mut s = ViewerSession::new("dr-a");
        // Hide the whole Images composite but explicitly choose CT flat:
        // the CT variable keeps the chosen form, yet it is not visible.
        s.choose(
            &doc,
            ViewerChoice {
                component: images,
                form: COMPOSITE_HIDDEN.idx(),
            },
        )
        .unwrap();
        s.choose(
            &doc,
            ViewerChoice {
                component: ct,
                form: 0,
            },
        )
        .unwrap();
        let p = engine.presentation_for(&doc, &s).unwrap();
        assert_eq!(p.form(ct), 0);
        assert!(!p.is_visible(ct), "hidden ancestor hides the CT");
        assert!(!p.is_visible(images));
    }

    #[test]
    fn local_operation_stays_viewer_local() {
        let (doc, _, ct, _) = medical_doc();
        let engine = PresentationEngine::new();
        let mut a = ViewerSession::new("dr-a");
        let mut b = ViewerSession::new("dr-b");
        a.apply_local_operation(&doc, ct, 0, "segmentation")
            .unwrap();
        let pa = engine.presentation_for(&doc, &a).unwrap();
        let pb = engine.presentation_for(&doc, &b).unwrap();
        assert_eq!(pa.derived_states().len(), 1);
        assert!(pb.derived_states().is_empty());
        assert_eq!(pa.derived_states()[0].1, "segmentation applied");
        // Shared document unchanged.
        assert_eq!(doc.net().len(), doc.num_components());
        // And dr-b's session is unaffected by dr-a's extension.
        b.choose(
            &doc,
            ViewerChoice {
                component: ct,
                form: 1,
            },
        )
        .unwrap();
        let pb = engine.presentation_for(&doc, &b).unwrap();
        assert_eq!(pb.form(ct), 1);
    }

    #[test]
    fn joint_presentation_merges_choices() {
        let (doc, _, ct, xray) = medical_doc();
        let engine = PresentationEngine::new();
        let mut a = ViewerSession::new("dr-a");
        let mut b = ViewerSession::new("dr-b");
        a.choose(
            &doc,
            ViewerChoice {
                component: ct,
                form: 1,
            },
        )
        .unwrap();
        b.choose(
            &doc,
            ViewerChoice {
                component: xray,
                form: 0,
            },
        )
        .unwrap();
        let p = engine.joint_presentation(&doc, &[&a, &b]);
        assert_eq!(p.form(ct), 1);
        assert_eq!(p.form(xray), 0);
    }

    #[test]
    fn rebase_after_removal_drops_stale_choices() {
        let (mut doc, _, ct, xray) = medical_doc();
        let mut s = ViewerSession::new("dr-a");
        s.choose(
            &doc,
            ViewerChoice {
                component: ct,
                form: 1,
            },
        )
        .unwrap();
        s.choose(
            &doc,
            ViewerChoice {
                component: xray,
                form: 1,
            },
        )
        .unwrap();
        s.apply_local_operation(&doc, ct, 0, "zoom").unwrap();
        // X-ray conditions on CT, so CT is not removable without first
        // re-authoring; remove the X-ray instead.
        let remap = doc.remove_component(xray, 2).unwrap();
        s.rebase(&remap);
        assert_eq!(s.choices().len(), 1);
        assert_eq!(s.choices()[0].component, ct);
        assert!(s.local_derived().is_empty());
        let engine = PresentationEngine::new();
        let p = engine.presentation_for(&doc, &s).unwrap();
        assert_eq!(p.form(ct), 1);
    }

    #[test]
    fn stale_extension_rejected_after_global_edit() {
        let (mut doc, _, ct, _) = medical_doc();
        let mut s = ViewerSession::new("dr-a");
        s.apply_local_operation(&doc, ct, 0, "zoom").unwrap();
        doc.add_global_operation(ct, 0, "segmentation").unwrap();
        // The extension was built against the pre-edit net.
        assert!(matches!(
            s.apply_local_operation(&doc, ct, 0, "marker"),
            Err(CoreError::UpdateRejected(_))
        ));
        let engine = PresentationEngine::new();
        assert!(engine.presentation_for(&doc, &s).is_err());
    }

    #[test]
    fn extension_bypass_agrees_with_full_sweep_after_structural_edits() {
        // Sessions with a viewer-local extension bypass the incremental
        // reconfiguration caches (DESIGN.md §9): the fused net is swept in
        // full per call. Pin that a warm engine — whose caches were built
        // against *pre-edit* document revisions — gives the same answer on
        // the extension path as a cold engine, and that the base-component
        // forms agree with the cached non-extension path for identical
        // choices and context.
        let (mut doc, _, ct, xray) = medical_doc();
        let warm = PresentationEngine::new();

        // Warm the incremental caches with non-extension traffic.
        let mut plain = ViewerSession::new("dr-a");
        warm.presentation_for(&doc, &plain).unwrap();
        plain
            .choose(
                &doc,
                ViewerChoice {
                    component: ct,
                    form: 1,
                },
            )
            .unwrap();
        warm.presentation_for(&doc, &plain).unwrap();
        warm.default_presentation(&doc);

        // Structural edits: removing the X-ray renumbers components, then
        // a global operation grows the net. Old extensions are now stale.
        let remap = doc.remove_component(xray, 2).unwrap();
        let ct = remap[ct.idx()].expect("CT survives the removal");
        plain.rebase(&remap);
        doc.add_global_operation(ct, 0, "segmentation").unwrap();

        // Extension built against the *post-edit* net.
        let mut ext_session = ViewerSession::new("dr-a");
        ext_session
            .choose(
                &doc,
                ViewerChoice {
                    component: ct,
                    form: 1,
                },
            )
            .unwrap();
        ext_session
            .apply_local_operation(&doc, ct, 1, "zoom")
            .unwrap();

        let from_warm = warm.presentation_for(&doc, &ext_session).unwrap();
        let cold = PresentationEngine::new();
        let from_cold = cold.presentation_for(&doc, &ext_session).unwrap();
        assert_eq!(
            from_warm, from_cold,
            "warm caches must not leak into the extension full sweep"
        );
        // One document-global derived variable plus the session-local one.
        assert_eq!(from_warm.derived_states().len(), 2);

        // Base-component forms agree with the incremental (cached)
        // non-extension path for the same choices and context.
        plain
            .choose(
                &doc,
                ViewerChoice {
                    component: ct,
                    form: 1,
                },
            )
            .unwrap();
        let incremental = warm.presentation_for(&doc, &plain).unwrap();
        assert_eq!(from_warm.forms(), incremental.forms());
        assert_eq!(
            (0..doc.num_components())
                .map(|i| from_warm.is_visible(ComponentId(i as u32)))
                .collect::<Vec<_>>(),
            (0..doc.num_components())
                .map(|i| incremental.is_visible(ComponentId(i as u32)))
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn tuning_variable_conditions_presentation() {
        let (mut doc, _, ct, _) = medical_doc();
        let bw = doc
            .add_tuning_variable("bandwidth", &["high", "low"])
            .unwrap();
        // Under low bandwidth the author prefers the CT hidden.
        doc.author_parents_raw(ct, &[bw]).unwrap();
        doc.author_preference_raw(ct, &[(bw, Value(0))], &[Value(0), Value(1), Value(2)])
            .unwrap();
        doc.author_preference_raw(ct, &[(bw, Value(1))], &[Value(2), Value(0), Value(1)])
            .unwrap();
        doc.validate().unwrap();
        let engine = PresentationEngine::new();
        let mut s = ViewerSession::new("dr-a");
        s.set_context(bw, Value(1));
        let p = engine.presentation_for(&doc, &s).unwrap();
        assert_eq!(p.form(ct), 2, "CT hidden under low bandwidth");
        s.set_context(bw, Value(0));
        let p = engine.presentation_for(&doc, &s).unwrap();
        assert_eq!(p.form(ct), 0);
    }

    #[test]
    fn transfer_bytes_counts_visible_forms_only() {
        let (doc, _, ct, xray) = medical_doc();
        let engine = PresentationEngine::new();
        let p = engine.default_presentation(&doc);
        // CT flat (500k) + X-ray icon (4k); composites cost 0.
        assert_eq!(p.transfer_bytes(&doc), 504_000);
        let mut s = ViewerSession::new("dr-a");
        s.choose(
            &doc,
            ViewerChoice {
                component: ct,
                form: 2,
            },
        )
        .unwrap();
        let p = engine.presentation_for(&doc, &s).unwrap();
        // CT hidden, X-ray flat.
        assert_eq!(p.transfer_bytes(&doc), 250_000);
        let _ = xray;
    }

    #[test]
    fn presentation_diff_is_minimal() {
        let (doc, _, ct, xray) = medical_doc();
        let engine = PresentationEngine::new();
        let before = engine.default_presentation(&doc);
        // No change → empty diff.
        assert!(before.diff(&before).is_empty());
        let mut s = ViewerSession::new("dr-a");
        s.choose(
            &doc,
            ViewerChoice {
                component: ct,
                form: 2,
            },
        )
        .unwrap();
        let after = engine.presentation_for(&doc, &s).unwrap();
        let delta = before.diff(&after);
        // Exactly the CT (hidden now) and the X-ray (icon → flat) changed.
        let changed: Vec<ComponentId> = delta.iter().map(|d| d.component).collect();
        assert_eq!(changed, vec![ct, xray]);
        let ct_delta = delta.iter().find(|d| d.component == ct).unwrap();
        assert!(!ct_delta.now_visible);
        // Delta transfer: only the X-ray's flat form (250 KB) moves; the
        // hidden CT costs nothing.
        assert_eq!(before.delta_transfer_bytes(&after, &doc), 250_000);
        // A full refresh would have cost the whole presentation.
        assert!(after.transfer_bytes(&doc) >= 250_000);
    }

    #[test]
    fn render_lists_visible_components() {
        let (doc, ..) = medical_doc();
        let engine = PresentationEngine::new();
        let p = engine.default_presentation(&doc);
        let text = p.render(&doc);
        assert!(text.contains("[record]"));
        assert!(text.contains("CT: flat"));
        assert!(text.contains("X-ray: icon"));
    }
}
