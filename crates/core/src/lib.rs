//! # rcmo-core — preference-based multimedia presentation
//!
//! This crate implements the primary contribution of *Remote Conferencing
//! with Multimedia Objects* (Gudes, Domshlak & Orlov, EDBT 2002 Workshops):
//! a presentation module that decides **what** parts of a hierarchically
//! structured multimedia document are shown and **how**, by combining
//!
//! * the **author's** qualitative preferences, captured off-line as a
//!   [CP-network](cpnet::CpNet) (conditional preferences under a
//!   *ceteris paribus* reading, Boutilier et al. 1999),
//! * the **viewer's** explicit choices during a session, treated as evidence
//!   that constrains the admissible presentations, and
//! * **resource constraints** (bandwidth / client buffer), handled by the
//!   preference-based [prefetch] planner.
//!
//! The crate is organised as follows:
//!
//! * [`cpnet`] — the generic CP-network model: variables, conditional
//!   preference tables, validation, optimal-outcome and optimal-completion
//!   queries, dominance testing through improving-flip search, preference-
//!   ordered outcome enumeration, and viewer-local network extensions.
//! * [`document`] — the multimedia document model of the paper's Section 5.1:
//!   composite and primitive components, presentation forms, and the
//!   invariants that tie a document to its CP-network.
//! * [`presentation`] — the presentation engine: `defaultPresentation()`,
//!   `reconfigPresentation(eventList)`, and the online update policies of
//!   Section 4.2 (adding/removing components, operation-derived variables,
//!   global vs. viewer-local updates).
//! * [`prefetch`] — ranking of components by the likelihood that a viewer
//!   will request them (Section 4.4), used by `rcmo-netsim` to fill client
//!   buffers ahead of time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpnet;
pub mod document;
pub mod error;
pub mod prefetch;
pub mod presentation;

pub use cpnet::{
    CpNet, ExtendedNet, Extension, Outcome, PartialAssignment, PreferenceNet, Ranking,
    ReconfigEngine, ReconfigStats, Value, VarId,
};
pub use document::{
    ComponentId, ComponentKind, FormKind, MediaRef, MultimediaDocument, PresentationForm,
};
pub use error::CoreError;
pub use prefetch::{PrefetchConfig, PrefetchPlan, PrefetchPlanner};
pub use presentation::{
    Presentation, PresentationDelta, PresentationEngine, ViewerChoice, ViewerSession,
};
