//! Reasoning over CP-networks: optimal completion, dominance through
//! improving-flip search, and preference-ordered outcome enumeration.
//!
//! All algorithms are generic over [`PreferenceNet`] so they run unchanged on
//! a plain [`CpNet`](super::CpNet) and on an
//! [`ExtendedNet`](super::ExtendedNet) (base network plus a viewer-local
//! extension, Section 4.2 of the paper).

use super::{Outcome, PartialAssignment, PreferenceNet, Value, VarId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

/// Computes the best outcome consistent with `evidence`.
///
/// This is the paper's central online query: traverse the variables in a
/// topological order; a variable constrained by the evidence keeps its
/// evidence value, every other variable takes the most preferred value of
/// its CPT row given the (already fixed) parent values. For acyclic networks
/// this yields the unique most-preferred outcome among those consistent with
/// the evidence (Boutilier et al. 1999, "forward sweep").
pub fn optimal_completion<N: PreferenceNet>(net: &N, evidence: &PartialAssignment) -> Outcome {
    let n = net.num_vars();
    let mut outcome = vec![Value(0); n];
    // One scratch buffer for parent values, reused across variables (the
    // sweep is the hot path of every presentation query; a per-variable
    // allocation here shows up directly in reconfiguration latency).
    let mut pvals: Vec<Value> = Vec::new();
    for v in net.topo_order() {
        if let Some(val) = evidence.get(v) {
            outcome[v.idx()] = val;
        } else {
            pvals.clear();
            pvals.extend(net.parents(v).iter().map(|p| outcome[p.idx()]));
            outcome[v.idx()] = net.ranking(v, &pvals).best();
        }
    }
    outcome
}

/// All single-variable *improving flips* of `outcome`: pairs `(var, value)`
/// such that replacing `outcome[var]` with `value` yields a strictly more
/// preferred outcome (by the ceteris paribus reading of `var`'s CPT row).
pub fn improving_flips<N: PreferenceNet>(net: &N, outcome: &[Value]) -> Vec<(VarId, Value)> {
    let mut flips = Vec::new();
    for i in 0..net.num_vars() {
        let v = VarId(i as u32);
        let parents = net.parent_values(v, outcome);
        let ranking = net.ranking(v, &parents);
        for &better in ranking.better_than(outcome[i]) {
            flips.push((v, better));
        }
    }
    flips
}

/// Result of a bounded improving-flip dominance search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlipSearchOutcome {
    /// An improving flip chain from `worse` to `better` was found:
    /// `better ≻ worse` holds. Payload: chain length (number of flips).
    Dominates(usize),
    /// The reachable improving set was exhausted without hitting `better`:
    /// `better ≻ worse` does **not** hold.
    DoesNotDominate,
    /// The node budget ran out before the search concluded.
    Unknown,
}

/// Dominance query `better ≻ worse` via breadth-first improving-flip search
/// starting at `worse`. Sound and complete when it terminates within
/// `max_nodes` visited outcomes (Boutilier et al.: `o ≻ o'` iff there is an
/// improving flip sequence from `o'` to `o`).
pub fn dominates<N: PreferenceNet>(
    net: &N,
    better: &[Value],
    worse: &[Value],
    max_nodes: usize,
) -> FlipSearchOutcome {
    if better == worse {
        return FlipSearchOutcome::DoesNotDominate; // ≻ is strict
    }
    let mut visited: HashSet<Vec<Value>> = HashSet::new();
    let mut queue: VecDeque<(Vec<Value>, usize)> = VecDeque::new();
    visited.insert(worse.to_vec());
    queue.push_back((worse.to_vec(), 0));
    while let Some((cur, depth)) = queue.pop_front() {
        for (v, val) in improving_flips(net, &cur) {
            let mut next = cur.clone();
            next[v.idx()] = val;
            if next.as_slice() == better {
                return FlipSearchOutcome::Dominates(depth + 1);
            }
            if visited.len() >= max_nodes {
                return FlipSearchOutcome::Unknown;
            }
            if visited.insert(next.clone()) {
                queue.push_back((next, depth + 1));
            }
        }
    }
    FlipSearchOutcome::DoesNotDominate
}

/// The rank vector of an outcome: for each variable in topological order,
/// the position (0 = best) of its value in its CPT row. Comparing rank
/// vectors lexicographically yields a total order that is a linear extension
/// of the CP-net partial order ("topological-lexicographic" ordering).
fn rank_vector<N: PreferenceNet>(net: &N, topo: &[VarId], outcome: &[Value]) -> Vec<u16> {
    topo.iter()
        .map(|&v| {
            let parents = net.parent_values(v, outcome);
            net.ranking(v, &parents).rank_of(outcome[v.idx()])
        })
        .collect()
}

/// A search node in the preference-ordered enumeration: a prefix of the
/// topological order assigned, keyed by its (lexicographic) rank vector.
#[derive(Debug, Clone, PartialEq, Eq)]
struct EnumNode {
    /// Rank positions of the assigned prefix (the priority key).
    key: Vec<u16>,
    /// Values for the first `key.len()` variables of the topological order.
    prefix: Vec<Value>,
}

impl Ord for EnumNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; we wrap in Reverse at the call site, so
        // plain lexicographic comparison here means "smaller key pops first".
        self.key
            .cmp(&other.key)
            .then_with(|| self.prefix.cmp(&other.prefix))
    }
}

impl PartialOrd for EnumNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Iterator over complete outcomes from most to least preferred.
///
/// Performs best-first search over topological-order prefixes, with the
/// prefix rank vector as the priority. Because every variable's parents
/// precede it in the topological order, extending a prefix never changes the
/// ranks already committed, so prefix keys are monotone and the first time a
/// complete outcome pops it is in its final order. The emitted sequence is a
/// linear extension of the CP-net preference order (verified by property
/// tests against flip-chain dominance).
///
/// Evidence restricts the enumeration to consistent outcomes.
pub struct OutcomeIter<'a, N: PreferenceNet> {
    net: &'a N,
    topo: Vec<VarId>,
    evidence: &'a PartialAssignment,
    heap: BinaryHeap<Reverse<EnumNode>>,
    emitted: usize,
}

impl<'a, N: PreferenceNet> OutcomeIter<'a, N> {
    pub(super) fn new(net: &'a N, evidence: &'a PartialAssignment) -> Self {
        let topo = net.topo_order();
        let mut heap = BinaryHeap::new();
        heap.push(Reverse(EnumNode {
            key: Vec::new(),
            prefix: Vec::new(),
        }));
        OutcomeIter {
            net,
            topo,
            evidence,
            heap,
            emitted: 0,
        }
    }

    /// Number of outcomes emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Converts a topo-order prefix into an outcome indexed by variable id.
    fn prefix_to_outcome(&self, prefix: &[Value]) -> Vec<Value> {
        let mut outcome = vec![Value(0); self.net.num_vars()];
        for (slot, &v) in self.topo.iter().enumerate().take(prefix.len()) {
            outcome[v.idx()] = prefix[slot];
        }
        outcome
    }
}

impl<'a, N: PreferenceNet> Iterator for OutcomeIter<'a, N> {
    type Item = Outcome;

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(Reverse(node)) = self.heap.pop() {
            if node.prefix.len() == self.topo.len() {
                self.emitted += 1;
                return Some(self.prefix_to_outcome(&node.prefix));
            }
            let v = self.topo[node.prefix.len()];
            // Parents of v are all earlier in topo order, hence assigned.
            let partial = self.prefix_to_outcome(&node.prefix);
            let parents = self.net.parent_values(v, &partial);
            let ranking = self.net.ranking(v, &parents);
            match self.evidence.get(v) {
                Some(fixed) => {
                    let mut key = node.key.clone();
                    key.push(ranking.rank_of(fixed));
                    let mut prefix = node.prefix.clone();
                    prefix.push(fixed);
                    self.heap.push(Reverse(EnumNode { key, prefix }));
                }
                None => {
                    for (rank, &val) in ranking.order().iter().enumerate() {
                        let mut key = node.key.clone();
                        key.push(rank as u16);
                        let mut prefix = node.prefix.clone();
                        prefix.push(val);
                        self.heap.push(Reverse(EnumNode { key, prefix }));
                    }
                }
            }
        }
        None
    }
}

/// Convenience: the rank vector of `outcome` in `net`'s topological order.
/// Lower is better; the optimal outcome has the all-zero vector.
pub fn outcome_rank_vector<N: PreferenceNet>(net: &N, outcome: &[Value]) -> Vec<u16> {
    let topo = net.topo_order();
    rank_vector(net, &topo, outcome)
}
