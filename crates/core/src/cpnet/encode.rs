//! Compact binary persistence for CP-networks.
//!
//! The paper stores the preference specification as a static part of the
//! multimedia document inside the object database; this module provides the
//! byte format used when a [`CpNet`] is written into a BLOB by the
//! `rcmo-mediadb` layer.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "CPN1" | u32 nvars
//! per var:  str name | u16 ndom | ndom × str value-name
//! per var:  u16 nparents | nparents × u32 parent-id
//!           u32 nrows | nrows × ( u8 explicit | ndom × u16 value )
//! str := u16 len | len bytes of UTF-8
//! ```

use super::{CpNet, CpTable, Ranking, Value, VarId, Variable};
use crate::error::{CoreError, Result};

const MAGIC: &[u8; 4] = b"CPN1";

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        debug_assert!(s.len() <= u16::MAX as usize);
        self.u16(s.len() as u16);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(CoreError::Codec(format!(
                "unexpected end of stream at offset {}",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn str(&mut self) -> Result<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CoreError::Codec("invalid UTF-8 in string".to_string()))
    }
}

/// Serialises `net` to bytes; see the module-level docs for the layout.
pub fn encode_net(net: &CpNet) -> Vec<u8> {
    let mut w = Writer {
        buf: Vec::with_capacity(256),
    };
    w.buf.extend_from_slice(MAGIC);
    w.u32(net.vars.len() as u32);
    for var in &net.vars {
        w.str(&var.name);
        w.u16(var.domain.len() as u16);
        for d in &var.domain {
            w.str(d);
        }
    }
    for t in &net.tables {
        w.u16(t.parents.len() as u16);
        for p in &t.parents {
            w.u32(p.0);
        }
        w.u32(t.rows.len() as u32);
        for (row, &explicit) in t.rows.iter().zip(&t.explicit) {
            w.u8(u8::from(explicit));
            for v in row.order() {
                w.u16(v.0);
            }
        }
    }
    w.buf
}

/// Decodes bytes produced by [`encode_net`], re-validating all structural
/// invariants (domains, permutations, parent references, row counts).
pub fn decode_net(bytes: &[u8]) -> Result<CpNet> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(CoreError::Codec("bad magic; not a CPN1 stream".to_string()));
    }
    let nvars = r.u32()? as usize;
    let mut vars = Vec::with_capacity(nvars);
    for _ in 0..nvars {
        let name = r.str()?;
        let ndom = r.u16()? as usize;
        if ndom == 0 {
            return Err(CoreError::Codec(format!(
                "variable '{name}' has empty domain"
            )));
        }
        let mut domain = Vec::with_capacity(ndom);
        for _ in 0..ndom {
            domain.push(r.str()?);
        }
        vars.push(Variable { name, domain });
    }
    let mut tables = Vec::with_capacity(nvars);
    for (i, var) in vars.iter().enumerate() {
        let nparents = r.u16()? as usize;
        let mut parents = Vec::with_capacity(nparents);
        for _ in 0..nparents {
            let p = r.u32()?;
            if p as usize >= nvars || p as usize == i {
                return Err(CoreError::Codec(format!(
                    "variable '{}' has invalid parent id {p}",
                    var.name
                )));
            }
            parents.push(VarId(p));
        }
        let parent_domains: Vec<usize> =
            parents.iter().map(|p| vars[p.idx()].domain.len()).collect();
        let expected_rows: usize = parent_domains.iter().product::<usize>().max(1);
        let nrows = r.u32()? as usize;
        if nrows != expected_rows {
            return Err(CoreError::Codec(format!(
                "variable '{}': stream has {nrows} rows, expected {expected_rows}",
                var.name
            )));
        }
        let dom = var.domain.len();
        let mut rows = Vec::with_capacity(nrows);
        let mut explicit = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            explicit.push(r.u8()? != 0);
            let mut order = Vec::with_capacity(dom);
            for _ in 0..dom {
                order.push(Value(r.u16()?));
            }
            rows.push(Ranking::new(order, dom)?);
        }
        tables.push(CpTable {
            parents,
            parent_domains,
            rows,
            explicit,
        });
    }
    if r.pos != bytes.len() {
        return Err(CoreError::Codec(format!(
            "{} trailing bytes after network",
            bytes.len() - r.pos
        )));
    }
    // The wire format carries no cache identity: a decoded net is a fresh
    // instance (fresh uid, revision 0).
    let net = CpNet {
        vars,
        tables,
        uid: super::next_net_uid(),
        revision: 0,
    };
    // Acyclicity is not guaranteed by the wire format; re-check.
    let n = net.len();
    let mut indeg: Vec<usize> = net.tables.iter().map(|t| t.parents.len()).collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, t) in net.tables.iter().enumerate() {
        for p in &t.parents {
            children[p.idx()].push(i);
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0;
    while let Some(v) = queue.pop() {
        seen += 1;
        for &c in &children[v] {
            indeg[c] -= 1;
            if indeg[c] == 0 {
                queue.push(c);
            }
        }
    }
    if seen != n {
        return Err(CoreError::Codec(
            "decoded network contains a cycle".to_string(),
        ));
    }
    Ok(net)
}
