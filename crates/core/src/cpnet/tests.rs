use super::samples::{chain_net, figure2_net, random_net, RandomNetSpec};
use super::*;
use crate::cpnet::reason::outcome_rank_vector;

fn all_outcomes(net: &CpNet) -> Vec<Outcome> {
    let mut outcomes = vec![Vec::new()];
    for i in 0..net.len() {
        let dom = net.domain_size(VarId(i as u32));
        let mut next = Vec::with_capacity(outcomes.len() * dom);
        for o in &outcomes {
            for d in 0..dom as u16 {
                let mut o2 = o.clone();
                o2.push(Value(d));
                next.push(o2);
            }
        }
        outcomes = next;
    }
    outcomes
}

#[test]
fn empty_net_has_empty_outcome() {
    let net = CpNet::new();
    assert!(net.is_empty());
    assert!(net.optimal_outcome().is_empty());
    net.validate().unwrap();
}

#[test]
fn add_variable_rejects_empty_domain() {
    let mut net = CpNet::new();
    assert!(matches!(
        net.add_variable("x", &[]),
        Err(CoreError::BadDomain(_))
    ));
}

#[test]
fn set_parents_rejects_self_and_duplicates() {
    let mut net = CpNet::new();
    let a = net.add_variable("a", &["0", "1"]).unwrap();
    let b = net.add_variable("b", &["0", "1"]).unwrap();
    assert!(matches!(
        net.set_parents(a, &[a]),
        Err(CoreError::CycleDetected(_))
    ));
    assert!(matches!(
        net.set_parents(a, &[b, b]),
        Err(CoreError::BadParentAssignment(_))
    ));
}

#[test]
fn set_parents_rejects_cycle() {
    let mut net = CpNet::new();
    let a = net.add_variable("a", &["0", "1"]).unwrap();
    let b = net.add_variable("b", &["0", "1"]).unwrap();
    let c = net.add_variable("c", &["0", "1"]).unwrap();
    net.set_parents(b, &[a]).unwrap();
    net.set_parents(c, &[b]).unwrap();
    assert!(matches!(
        net.set_parents(a, &[c]),
        Err(CoreError::CycleDetected(_))
    ));
}

#[test]
fn validate_flags_unauthored_rows() {
    let mut net = CpNet::new();
    let a = net.add_variable("a", &["0", "1"]).unwrap();
    let b = net.add_variable("b", &["0", "1"]).unwrap();
    net.set_unconditional(a, &[Value(0), Value(1)]).unwrap();
    net.set_parents(b, &[a]).unwrap();
    net.set_preference(b, &[(a, Value(0))], &[Value(1), Value(0)])
        .unwrap();
    // Row a=1 never authored.
    assert!(matches!(net.validate(), Err(CoreError::Invalid(_))));
    net.set_preference(b, &[(a, Value(1))], &[Value(0), Value(1)])
        .unwrap();
    net.validate().unwrap();
}

#[test]
fn ranking_rejects_non_permutations() {
    assert!(Ranking::new(vec![Value(0), Value(0)], 2).is_err());
    assert!(Ranking::new(vec![Value(0)], 2).is_err());
    assert!(Ranking::new(vec![Value(0), Value(2)], 2).is_err());
    let r = Ranking::new(vec![Value(1), Value(0)], 2).unwrap();
    assert_eq!(r.best(), Value(1));
    assert!(r.prefers(Value(1), Value(0)));
    assert_eq!(r.better_than(Value(0)), &[Value(1)]);
    assert!(r.better_than(Value(1)).is_empty());
}

#[test]
fn figure2_optimal_outcome_matches_paper() {
    let (net, [c1, c2, c3, c4, c5]) = figure2_net();
    let best = net.optimal_outcome();
    // c1 = c1_1 (preferred), c2 = c2_2 (preferred), hence c3 = c3_2,
    // hence c4 = c4_2 and c5 = c5_2.
    assert_eq!(best[c1.idx()], Value(0));
    assert_eq!(best[c2.idx()], Value(1));
    assert_eq!(best[c3.idx()], Value(1));
    assert_eq!(best[c4.idx()], Value(1));
    assert_eq!(best[c5.idx()], Value(1));
}

#[test]
fn figure2_optimal_completion_under_evidence() {
    let (net, [c1, c2, c3, c4, c5]) = figure2_net();
    // Viewer insists on c2 = c2_1. Then c1 = c1_1 stays, c3 row (c1_1, c2_1)
    // prefers c3_1, and the children follow with c4_1, c5_1.
    let mut ev = PartialAssignment::empty(net.len());
    ev.set(c2, Value(0));
    let best = net.optimal_completion(&ev);
    assert_eq!(best[c1.idx()], Value(0));
    assert_eq!(best[c2.idx()], Value(0));
    assert_eq!(best[c3.idx()], Value(0));
    assert_eq!(best[c4.idx()], Value(0));
    assert_eq!(best[c5.idx()], Value(0));
}

#[test]
fn optimal_outcome_has_no_improving_flip() {
    let (net, _) = figure2_net();
    let best = net.optimal_outcome();
    assert!(improving_flips(&net, &best).is_empty());
}

#[test]
fn optimal_outcome_dominates_every_other_outcome() {
    let (net, _) = figure2_net();
    let best = net.optimal_outcome();
    for o in all_outcomes(&net) {
        if o == best {
            continue;
        }
        assert!(
            matches!(
                net.dominates(&best, &o, 10_000),
                FlipSearchOutcome::Dominates(_)
            ),
            "best must dominate {o:?}"
        );
    }
}

#[test]
fn dominance_is_strict() {
    let (net, _) = figure2_net();
    let best = net.optimal_outcome();
    assert_eq!(
        net.dominates(&best, &best, 1_000),
        FlipSearchOutcome::DoesNotDominate
    );
}

#[test]
fn dominance_budget_reports_unknown() {
    let net = chain_net(12, 2, 7);
    let best = net.optimal_outcome();
    let mut worst = best.clone();
    // Flip everything to something non-optimal where possible.
    for v in worst.iter_mut() {
        *v = Value(1 - v.0);
    }
    match net.dominates(&best, &worst, 2) {
        FlipSearchOutcome::Unknown | FlipSearchOutcome::Dominates(_) => {}
        o => panic!("tiny budget should give Unknown (or quick hit), got {o:?}"),
    }
}

#[test]
fn outcome_iter_starts_at_optimum_and_is_exhaustive() {
    let (net, _) = figure2_net();
    let evidence = PartialAssignment::empty(net.len());
    let ordered: Vec<Outcome> = net.outcomes_by_preference(&evidence).collect();
    assert_eq!(ordered.len(), 32);
    assert_eq!(ordered[0], net.optimal_outcome());
    // No duplicates.
    let unique: std::collections::HashSet<_> = ordered.iter().cloned().collect();
    assert_eq!(unique.len(), 32);
}

#[test]
fn outcome_iter_is_linear_extension_of_dominance() {
    let (net, _) = figure2_net();
    let ordered: Vec<Outcome> = net
        .outcomes_by_preference(&PartialAssignment::empty(net.len()))
        .collect();
    // If o_i comes after o_j in the enumeration, o_i must not dominate o_j.
    for (i, oi) in ordered.iter().enumerate() {
        for oj in ordered.iter().take(i) {
            assert_eq!(
                net.dominates(oi, oj, 100_000),
                FlipSearchOutcome::DoesNotDominate,
                "later outcome {oi:?} dominates earlier {oj:?}"
            );
        }
    }
}

#[test]
fn outcome_iter_respects_evidence() {
    let (net, [_, c2, ..]) = figure2_net();
    let mut ev = PartialAssignment::empty(net.len());
    ev.set(c2, Value(0));
    let ordered: Vec<Outcome> = net.outcomes_by_preference(&ev).collect();
    assert_eq!(ordered.len(), 16);
    assert!(ordered.iter().all(|o| o[c2.idx()] == Value(0)));
    assert_eq!(ordered[0], net.optimal_completion(&ev));
}

#[test]
fn rank_vector_of_optimum_is_zero() {
    let (net, _) = figure2_net();
    let best = net.optimal_outcome();
    assert!(outcome_rank_vector(&net, &best).iter().all(|&r| r == 0));
}

#[test]
fn derived_variable_prefers_applied_only_at_trigger() {
    let (mut net, [_, _, c3, ..]) = figure2_net();
    let d = net
        .add_derived_variable(c3, Value(1), "c3'", "segmented", "flat")
        .unwrap();
    net.validate().unwrap();
    // Optimal outcome has c3 = c3_2 (value 1, the trigger) ⇒ segmented.
    let best = net.optimal_outcome();
    assert_eq!(best[d.idx()], Value(0), "segmented preferred at trigger");
    // Under evidence forcing c3 = c3_1, plain is preferred.
    let mut ev = PartialAssignment::empty(net.len());
    ev.set(c3, Value(0));
    let o = net.optimal_completion(&ev);
    assert_eq!(o[d.idx()], Value(1));
}

#[test]
fn remove_variable_slices_child_tables() {
    let (mut net, [c1, c2, c3, c4, _c5]) = figure2_net();
    let _ = (c1, c4);
    // Remove c2, fixing it at c2_1 (value 0). c3's CPT then conditions on
    // c1 only, keeping the rows where c2 = c2_1:
    //   c1_1: c3_1 ≻ c3_2 ; c1_2: c3_2 ≻ c3_1.
    net.remove_variable(c2, Value(0)).unwrap();
    assert_eq!(net.len(), 4);
    net.validate().unwrap();
    let best = net.optimal_outcome();
    // Ids shifted: c1 = 0, c3 = 1, c4 = 2, c5 = 3.
    assert_eq!(best[0], Value(0)); // c1_1
    assert_eq!(best[1], Value(0)); // c3_1 because (c1_1, c2_1) row kept
    assert_eq!(best[2], Value(0)); // c4_1
    assert_eq!(best[3], Value(0)); // c5_1
    let _ = c3;
}

#[test]
fn remove_root_variable_shifts_parent_ids() {
    let mut net = CpNet::new();
    let a = net.add_variable("a", &["0", "1"]).unwrap();
    let b = net.add_variable("b", &["0", "1"]).unwrap();
    let c = net.add_variable("c", &["0", "1"]).unwrap();
    net.set_unconditional(a, &[Value(0), Value(1)]).unwrap();
    net.set_unconditional(b, &[Value(1), Value(0)]).unwrap();
    net.set_parents(c, &[b]).unwrap();
    net.set_preference(c, &[(b, Value(0))], &[Value(0), Value(1)])
        .unwrap();
    net.set_preference(c, &[(b, Value(1))], &[Value(1), Value(0)])
        .unwrap();
    net.remove_variable(a, Value(0)).unwrap();
    net.validate().unwrap();
    // b is now id 0, c id 1, and c's parent must have shifted to b's new id.
    assert_eq!(net.parents(VarId(1)), &[VarId(0)]);
    let best = net.optimal_outcome();
    assert_eq!(best, vec![Value(1), Value(1)]); // b=1 preferred; under b=1, c=1
}

#[test]
fn encode_decode_roundtrip_figure2() {
    let (net, _) = figure2_net();
    let bytes = net.to_bytes();
    let back = CpNet::from_bytes(&bytes).unwrap();
    assert_eq!(back.len(), net.len());
    assert_eq!(back.optimal_outcome(), net.optimal_outcome());
    back.validate().unwrap();
    for i in 0..net.len() {
        let v = VarId(i as u32);
        assert_eq!(back.var_name(v), net.var_name(v));
        assert_eq!(back.parents(v), net.parents(v));
    }
}

#[test]
fn decode_rejects_garbage() {
    assert!(CpNet::from_bytes(b"").is_err());
    assert!(CpNet::from_bytes(b"NOPE").is_err());
    let (net, _) = figure2_net();
    let mut bytes = net.to_bytes();
    bytes.push(0); // trailing byte
    assert!(CpNet::from_bytes(&bytes).is_err());
    let bytes = net.to_bytes();
    assert!(CpNet::from_bytes(&bytes[..bytes.len() - 1]).is_err());
}

#[test]
fn extension_adds_viewer_local_variable() {
    let (net, [_, _, c3, ..]) = figure2_net();
    let mut ext = Extension::new(&net);
    let d = ext
        .add_derived_variable(&net, c3, Value(1), "c3'", "segmented", "flat")
        .unwrap();
    ext.validate().unwrap();
    assert_eq!(d, VarId(5));
    let fused = ExtendedNet::new(&net, &ext).unwrap();
    assert_eq!(fused.num_vars(), 6);
    let best = fused.optimal_completion(&PartialAssignment::empty(6));
    assert_eq!(best[5], Value(0)); // segmented, since c3 = trigger at optimum
                                   // The base network is untouched.
    assert_eq!(net.len(), 5);
}

#[test]
fn extension_rejects_wrong_base() {
    let (net, _) = figure2_net();
    let ext = Extension::new(&net);
    let other = CpNet::new();
    assert!(ExtendedNet::new(&other, &ext).is_err());
}

#[test]
fn extension_cycle_rejected() {
    let (net, _) = figure2_net();
    let mut ext = Extension::new(&net);
    let x = ext.add_variable("x", &["0", "1"]).unwrap();
    let y = ext.add_variable("y", &["0", "1"]).unwrap();
    ext.set_parents(&net, y, &[x]).unwrap();
    assert!(matches!(
        ext.set_parents(&net, x, &[y]),
        Err(CoreError::CycleDetected(_))
    ));
}

#[test]
fn random_nets_validate_and_optimum_is_flip_free() {
    for seed in 0..20 {
        let net = random_net(&RandomNetSpec {
            vars: 12,
            max_domain: 4,
            max_parents: 3,
            seed,
        });
        let best = net.optimal_outcome();
        assert!(
            improving_flips(&net, &best).is_empty(),
            "seed {seed}: optimum has an improving flip"
        );
        let bytes = net.to_bytes();
        let back = CpNet::from_bytes(&bytes).unwrap();
        assert_eq!(back.optimal_outcome(), best, "seed {seed}: codec mismatch");
    }
}

#[test]
fn partial_assignment_helpers() {
    let mut pa = PartialAssignment::empty(3);
    assert_eq!(pa.len_set(), 0);
    pa.set(VarId(1), Value(2));
    assert_eq!(pa.get(VarId(1)), Some(Value(2)));
    assert_eq!(pa.len_set(), 1);
    assert!(pa.consistent_with(&[Value(0), Value(2), Value(0)]));
    assert!(!pa.consistent_with(&[Value(0), Value(1), Value(0)]));
    pa.clear(VarId(1));
    assert_eq!(pa.get(VarId(1)), None);
    let pairs = PartialAssignment::from_pairs(3, &[(VarId(0), Value(1)), (VarId(2), Value(0))]);
    let set: Vec<_> = pairs.iter().collect();
    assert_eq!(set, vec![(VarId(0), Value(1)), (VarId(2), Value(0))]);
}

#[test]
fn describe_outcome_uses_names() {
    let (net, _) = figure2_net();
    let best = net.optimal_outcome();
    let s = net.describe_outcome(&best);
    assert!(s.contains("c1=c1_1"));
    assert!(s.contains("c2=c2_2"));
}

#[test]
fn lookup_by_name() {
    let (net, [c1, ..]) = figure2_net();
    assert_eq!(net.var_by_name("c1"), Some(c1));
    assert_eq!(net.var_by_name("nope"), None);
    assert_eq!(net.value_by_name(c1, "c1_2"), Some(Value(1)));
    assert_eq!(net.value_by_name(c1, "zzz"), None);
}

#[test]
fn table_row_assignment_roundtrip() {
    let (net, [_, _, c3, ..]) = figure2_net();
    let t = net.table(c3).unwrap();
    assert_eq!(t.num_rows(), 4);
    for row in 0..t.num_rows() {
        let assignment = t.row_assignment(row);
        assert_eq!(t.row_index(&assignment), row);
        assert!(t.row_is_explicit(row));
    }
}

/// The tentpole equivalence property: the incremental reconfiguration
/// engine must produce exactly the outcome of a full `optimal_completion`
/// sweep, across randomized acyclic nets, random evidence walks from
/// several interleaved viewers, and structural edits that bump the net's
/// revision mid-walk (the cache-invalidation path).
#[test]
fn reconfig_engine_equals_full_sweep_under_random_walks() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    for seed in 0..8u64 {
        let spec = RandomNetSpec {
            vars: 14,
            max_domain: 3,
            max_parents: 3,
            seed,
        };
        let mut net = random_net(&spec);
        let mut engine = ReconfigEngine::new();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9) ^ 0xA5A5);
        let viewers = ["ada", "lin", "mei"];
        let mut evidence: Vec<PartialAssignment> = viewers
            .iter()
            .map(|_| PartialAssignment::empty(net.len()))
            .collect();
        for step in 0..240 {
            // Random evidence mutation for a random viewer: set or clear
            // one variable.
            let who = rng.gen_range(0..viewers.len());
            let v = VarId(rng.gen_range(0..net.len()) as u32);
            if rng.gen_range(0..4) == 0 {
                evidence[who].clear(v);
            } else {
                let val = rng.gen_range(0..net.domain_size(v)) as u16;
                evidence[who].set(v, Value(val));
            }
            let incremental = engine.completion(&net, viewers[who], &evidence[who]);
            let full = net.optimal_completion(&evidence[who]);
            assert_eq!(
                incremental, full,
                "seed {seed} step {step}: incremental diverged from full sweep"
            );
            // Interleave structural / preference edits that must invalidate
            // every cache the engine holds.
            match step % 60 {
                19 => {
                    // Re-author a random unconditional root's preference.
                    let roots: Vec<VarId> = (0..net.len() as u32)
                        .map(VarId)
                        .filter(|&v| net.parents(v).is_empty())
                        .collect();
                    let r = roots[rng.gen_range(0..roots.len())];
                    let mut order: Vec<Value> = (0..net.domain_size(r) as u16).map(Value).collect();
                    order.reverse();
                    net.set_unconditional(r, &order).unwrap();
                }
                39 => {
                    // Grow the net with a derived operation variable.
                    let v = VarId(rng.gen_range(0..net.len()) as u32);
                    let name = format!("op{step}_{seed}");
                    net.add_derived_variable(v, Value(0), &name, "applied", "plain")
                        .unwrap();
                    for ev in &mut evidence {
                        *ev = PartialAssignment::empty(net.len());
                    }
                }
                59 => {
                    // Shrink it again: remove the newest variable (no one
                    // conditions on it), fixing it to value 0.
                    let last = VarId((net.len() - 1) as u32);
                    net.remove_variable(last, Value(0)).unwrap();
                    for ev in &mut evidence {
                        *ev = PartialAssignment::empty(net.len());
                    }
                }
                _ => {}
            }
        }
        let stats = engine.stats();
        assert!(
            stats.incremental > 0,
            "seed {seed}: the incremental path never ran"
        );
        assert!(
            stats.invalidations > 0,
            "seed {seed}: structural edits never invalidated the cache"
        );
    }
}
