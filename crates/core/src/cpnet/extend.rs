//! Viewer-local CP-network extensions (paper, Section 4.2).
//!
//! When a viewer performs an operation on a component and decides its result
//! is relevant only to herself, the derived variable is *not* merged into the
//! document's CP-network. Instead it is stored in a per-viewer [`Extension`]:
//! "the original CP-network should not be duplicated, and only the new
//! variables with the corresponding CP-tables should be saved separately."
//!
//! [`ExtendedNet`] is a zero-copy view that presents the base network and an
//! extension as one network, so every reasoning algorithm (optimal
//! completion, dominance, ordered enumeration) applies unchanged.

use super::{
    CpNet, CpTable, Outcome, PartialAssignment, PreferenceNet, Ranking, Value, VarId, Variable,
    MAX_CPT_ROWS, MAX_DOMAIN,
};
use crate::error::{CoreError, Result};
use std::collections::HashSet;

/// A set of extra variables layered on top of a base [`CpNet`].
///
/// Extension variables may have base variables and previously added
/// extension variables as parents; base variables never depend on extension
/// variables, so the combined graph stays acyclic by construction (still
/// re-checked on `set_parents`).
#[derive(Debug, Clone)]
pub struct Extension {
    /// Number of variables in the base network this extension targets.
    base_vars: usize,
    vars: Vec<Variable>,
    tables: Vec<CpTable>,
}

impl Extension {
    /// Creates an empty extension for a base network with `base.len()` vars.
    pub fn new(base: &CpNet) -> Self {
        Extension {
            base_vars: base.len(),
            vars: Vec::new(),
            tables: Vec::new(),
        }
    }

    /// Number of extension variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// `true` if the extension adds nothing.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Number of base variables this extension was built against.
    pub fn base_vars(&self) -> usize {
        self.base_vars
    }

    /// Adds an extension variable; its id continues the base numbering.
    pub fn add_variable(&mut self, name: &str, domain: &[&str]) -> Result<VarId> {
        if domain.is_empty() || domain.len() > MAX_DOMAIN {
            return Err(CoreError::BadDomain(format!(
                "extension variable '{name}': domain size {}",
                domain.len()
            )));
        }
        let id = VarId((self.base_vars + self.vars.len()) as u32);
        self.vars.push(Variable {
            name: name.to_string(),
            domain: domain.iter().map(|s| s.to_string()).collect(),
        });
        self.tables.push(CpTable::unconditional(domain.len()));
        Ok(id)
    }

    fn ext_idx(&self, v: VarId) -> Result<usize> {
        let i = v.idx();
        if i < self.base_vars || i >= self.base_vars + self.vars.len() {
            return Err(CoreError::UnknownVariable(v.0));
        }
        Ok(i - self.base_vars)
    }

    fn domain_size_any(&self, base: &CpNet, v: VarId) -> Result<usize> {
        if v.idx() < self.base_vars {
            Ok(base.domain_size(v))
        } else {
            Ok(self.vars[self.ext_idx(v)?].domain.len())
        }
    }

    /// Declares the parents of extension variable `v`.
    ///
    /// Parents may be base variables or other extension variables, as long
    /// as no cycle forms among extension variables.
    pub fn set_parents(&mut self, base: &CpNet, v: VarId, parents: &[VarId]) -> Result<()> {
        let vi = self.ext_idx(v)?;
        let mut seen = HashSet::new();
        let mut parent_domains = Vec::with_capacity(parents.len());
        for &p in parents {
            if p == v {
                return Err(CoreError::CycleDetected(format!(
                    "extension variable '{}' cannot be its own parent",
                    self.vars[vi].name
                )));
            }
            if !seen.insert(p) {
                return Err(CoreError::BadParentAssignment(format!(
                    "duplicate parent {p}"
                )));
            }
            parent_domains.push(self.domain_size_any(base, p)?);
        }
        // Cycle check within extension variables (base vars are sources).
        if self.reaches(v, parents) {
            return Err(CoreError::CycleDetected(format!(
                "setting parents of extension variable '{}' creates a cycle",
                self.vars[vi].name
            )));
        }
        let mut rows = 1usize;
        for &d in &parent_domains {
            rows = rows.saturating_mul(d);
            if rows > MAX_CPT_ROWS {
                return Err(CoreError::BadParentAssignment(format!(
                    "CPT of extension variable '{}' exceeds {MAX_CPT_ROWS} rows",
                    self.vars[vi].name
                )));
            }
        }
        let dom = self.vars[vi].domain.len();
        self.tables[vi] = CpTable {
            parents: parents.to_vec(),
            parent_domains,
            rows: vec![Ranking::identity(dom); rows],
            explicit: vec![false; rows],
        };
        Ok(())
    }

    fn reaches(&self, target: VarId, from: &[VarId]) -> bool {
        let mut stack: Vec<VarId> = from
            .iter()
            .copied()
            .filter(|p| p.idx() >= self.base_vars)
            .collect();
        let mut visited = HashSet::new();
        while let Some(v) = stack.pop() {
            if v == target {
                return true;
            }
            if visited.insert(v) {
                let vi = v.idx() - self.base_vars;
                stack.extend(
                    self.tables[vi]
                        .parents
                        .iter()
                        .copied()
                        .filter(|p| p.idx() >= self.base_vars),
                );
            }
        }
        false
    }

    /// Authors a CPT row of extension variable `v` (same contract as
    /// [`CpNet::set_preference`]).
    pub fn set_preference(
        &mut self,
        v: VarId,
        assignment: &[(VarId, Value)],
        order: &[Value],
    ) -> Result<()> {
        let vi = self.ext_idx(v)?;
        // Borrow the parent list for validation; mutate only once the row
        // index and ranking are known (no copy of the parent set).
        let (row, ranking) = {
            let parents = &self.tables[vi].parents;
            if assignment.len() != parents.len() {
                return Err(CoreError::BadParentAssignment(format!(
                    "extension variable '{}' has {} parents but assignment covers {}",
                    self.vars[vi].name,
                    parents.len(),
                    assignment.len()
                )));
            }
            let mut parent_values = vec![None; parents.len()];
            for &(p, val) in assignment {
                match parents.iter().position(|&q| q == p) {
                    Some(slot) => {
                        if parent_values[slot].replace(val).is_some() {
                            return Err(CoreError::BadParentAssignment(format!(
                                "parent {p} assigned twice"
                            )));
                        }
                    }
                    None => {
                        return Err(CoreError::BadParentAssignment(format!(
                            "{p} is not a parent of extension variable '{}'",
                            self.vars[vi].name
                        )))
                    }
                }
            }
            let parent_values: Vec<Value> = parent_values.into_iter().map(|o| o.unwrap()).collect();
            let dom = self.vars[vi].domain.len();
            let ranking = Ranking::new(order.to_vec(), dom)?;
            (self.tables[vi].row_index(&parent_values), ranking)
        };
        self.tables[vi].rows[row] = ranking;
        self.tables[vi].explicit[row] = true;
        Ok(())
    }

    /// Viewer-local variant of [`CpNet::add_derived_variable`]: adds the
    /// derived operation variable to this extension only.
    pub fn add_derived_variable(
        &mut self,
        base: &CpNet,
        v: VarId,
        trigger: Value,
        name: &str,
        applied_name: &str,
        plain_name: &str,
    ) -> Result<VarId> {
        if v.idx() >= self.base_vars + self.vars.len() {
            return Err(CoreError::UnknownVariable(v.0));
        }
        let parent_dom = self.domain_size_any(base, v)?;
        if trigger.idx() >= parent_dom {
            return Err(CoreError::ValueOutOfRange {
                var: v.0,
                value: trigger.0,
                domain: parent_dom,
            });
        }
        let d = self.add_variable(name, &[applied_name, plain_name])?;
        self.set_parents(base, d, &[v])?;
        for val in 0..parent_dom as u16 {
            let order = if Value(val) == trigger {
                [Value(0), Value(1)]
            } else {
                [Value(1), Value(0)]
            };
            self.set_preference(d, &[(v, Value(val))], &order)?;
        }
        Ok(d)
    }

    /// Validates that every CPT row of the extension was authored.
    pub fn validate(&self) -> Result<()> {
        for (i, t) in self.tables.iter().enumerate() {
            for (r, set) in t.explicit.iter().enumerate() {
                if !set {
                    return Err(CoreError::Invalid(format!(
                        "CPT row {r} of extension variable '{}' was never authored",
                        self.vars[i].name
                    )));
                }
            }
        }
        Ok(())
    }
}

/// A read-only view fusing a base network and a viewer extension into one
/// [`PreferenceNet`]. Variables `0..base.len()` are the base's; the rest are
/// the extension's, in insertion order.
#[derive(Debug, Clone, Copy)]
pub struct ExtendedNet<'a> {
    base: &'a CpNet,
    ext: &'a Extension,
}

impl<'a> ExtendedNet<'a> {
    /// Fuses `base` and `ext`. Fails if `ext` was built for a different
    /// number of base variables.
    pub fn new(base: &'a CpNet, ext: &'a Extension) -> Result<Self> {
        if ext.base_vars != base.len() {
            return Err(CoreError::Invalid(format!(
                "extension built for {} base variables, network has {}",
                ext.base_vars,
                base.len()
            )));
        }
        Ok(ExtendedNet { base, ext })
    }

    /// The base network.
    pub fn base(&self) -> &CpNet {
        self.base
    }

    /// The extension.
    pub fn extension(&self) -> &Extension {
        self.ext
    }

    /// Best outcome over the fused variable set consistent with `evidence`.
    pub fn optimal_completion(&self, evidence: &PartialAssignment) -> Outcome {
        super::reason::optimal_completion(self, evidence)
    }
}

impl<'a> PreferenceNet for ExtendedNet<'a> {
    fn num_vars(&self) -> usize {
        self.base.len() + self.ext.vars.len()
    }

    fn domain_size(&self, v: VarId) -> usize {
        if v.idx() < self.base.len() {
            self.base.domain_size(v)
        } else {
            self.ext.vars[v.idx() - self.base.len()].domain.len()
        }
    }

    fn parents(&self, v: VarId) -> &[VarId] {
        if v.idx() < self.base.len() {
            self.base.parents(v)
        } else {
            &self.ext.tables[v.idx() - self.base.len()].parents
        }
    }

    fn ranking(&self, v: VarId, parent_values: &[Value]) -> &Ranking {
        if v.idx() < self.base.len() {
            self.base.ranking(v, parent_values)
        } else {
            let t = &self.ext.tables[v.idx() - self.base.len()];
            &t.rows[t.row_index(parent_values)]
        }
    }

    fn var_name(&self, v: VarId) -> &str {
        if v.idx() < self.base.len() {
            self.base.var_name(v)
        } else {
            &self.ext.vars[v.idx() - self.base.len()].name
        }
    }

    fn value_name(&self, v: VarId, val: Value) -> &str {
        if v.idx() < self.base.len() {
            self.base.value_name(v, val)
        } else {
            &self.ext.vars[v.idx() - self.base.len()].domain[val.idx()]
        }
    }
}
