//! Ready-made CP-networks: the paper's Figure 2 example and random network
//! generators used by benchmarks and property tests.

use super::{CpNet, Value, VarId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Builds the example CP-network of the paper's Figure 2:
///
/// ```text
/// c1   c2
///   \ /
///   c3
///   / \
/// c4   c5
/// ```
///
/// with CPTs:
/// * `c1`: `c1_1 ≻ c1_2`
/// * `c2`: `c2_2 ≻ c2_1`
/// * `c3`: `(c1_1∧c2_1) ∨ (c1_2∧c2_2) : c3_1 ≻ c3_2`; otherwise `c3_2 ≻ c3_1`
/// * `c4`: `c3_1 : c4_1 ≻ c4_2`; `c3_2 : c4_2 ≻ c4_1`
/// * `c5`: `c3_1 : c5_1 ≻ c5_2`; `c3_2 : c5_2 ≻ c5_1`
///
/// Returns the network and the five variable ids `[c1..c5]`.
pub fn figure2_net() -> (CpNet, [VarId; 5]) {
    let mut net = CpNet::new();
    let c1 = net.add_variable("c1", &["c1_1", "c1_2"]).unwrap();
    let c2 = net.add_variable("c2", &["c2_1", "c2_2"]).unwrap();
    let c3 = net.add_variable("c3", &["c3_1", "c3_2"]).unwrap();
    let c4 = net.add_variable("c4", &["c4_1", "c4_2"]).unwrap();
    let c5 = net.add_variable("c5", &["c5_1", "c5_2"]).unwrap();
    net.set_unconditional(c1, &[Value(0), Value(1)]).unwrap();
    net.set_unconditional(c2, &[Value(1), Value(0)]).unwrap();
    net.set_parents(c3, &[c1, c2]).unwrap();
    net.set_preference(c3, &[(c1, Value(0)), (c2, Value(0))], &[Value(0), Value(1)])
        .unwrap();
    net.set_preference(c3, &[(c1, Value(1)), (c2, Value(1))], &[Value(0), Value(1)])
        .unwrap();
    net.set_preference(c3, &[(c1, Value(0)), (c2, Value(1))], &[Value(1), Value(0)])
        .unwrap();
    net.set_preference(c3, &[(c1, Value(1)), (c2, Value(0))], &[Value(1), Value(0)])
        .unwrap();
    net.set_parents(c4, &[c3]).unwrap();
    net.set_preference(c4, &[(c3, Value(0))], &[Value(0), Value(1)])
        .unwrap();
    net.set_preference(c4, &[(c3, Value(1))], &[Value(1), Value(0)])
        .unwrap();
    net.set_parents(c5, &[c3]).unwrap();
    net.set_preference(c5, &[(c3, Value(0))], &[Value(0), Value(1)])
        .unwrap();
    net.set_preference(c5, &[(c3, Value(1))], &[Value(1), Value(0)])
        .unwrap();
    net.validate().unwrap();
    (net, [c1, c2, c3, c4, c5])
}

/// Parameters for [`random_net`].
#[derive(Debug, Clone, Copy)]
pub struct RandomNetSpec {
    /// Number of variables.
    pub vars: usize,
    /// Maximum domain size (each variable draws from `2..=max_domain`).
    pub max_domain: usize,
    /// Maximum number of parents per variable.
    pub max_parents: usize,
    /// RNG seed, for reproducible benchmarks.
    pub seed: u64,
}

impl Default for RandomNetSpec {
    fn default() -> Self {
        RandomNetSpec {
            vars: 16,
            max_domain: 3,
            max_parents: 2,
            seed: 0x5eed,
        }
    }
}

/// Generates a random valid CP-network: variables are created in index
/// order, each drawing up to `max_parents` parents among the earlier
/// variables (so the result is acyclic), with uniformly random CPT rows.
pub fn random_net(spec: &RandomNetSpec) -> CpNet {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut net = CpNet::new();
    let mut ids: Vec<VarId> = Vec::with_capacity(spec.vars);
    for i in 0..spec.vars {
        let dom = rng.gen_range(2..=spec.max_domain.max(2));
        let names: Vec<String> = (0..dom).map(|d| format!("v{i}_{d}")).collect();
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let v = net
            .add_variable(&format!("v{i}"), &name_refs)
            .expect("domain within limits");
        ids.push(v);
    }
    for (i, &v) in ids.iter().enumerate() {
        let max_p = spec.max_parents.min(i);
        let nparents = if max_p == 0 {
            0
        } else {
            rng.gen_range(0..=max_p)
        };
        let mut pool: Vec<VarId> = ids[..i].to_vec();
        pool.shuffle(&mut rng);
        let parents: Vec<VarId> = pool.into_iter().take(nparents).collect();
        net.set_parents(v, &parents)
            .expect("acyclic by construction");
        let dom = net.variable(v).unwrap().domain().len();
        let nrows = net.table(v).unwrap().num_rows();
        for row in 0..nrows {
            let assignment: Vec<(VarId, Value)> = net
                .table(v)
                .unwrap()
                .row_assignment(row)
                .into_iter()
                .zip(parents.iter().copied())
                .map(|(val, p)| (p, val))
                .collect();
            let mut order: Vec<Value> = (0..dom as u16).map(Value).collect();
            order.shuffle(&mut rng);
            if parents.is_empty() {
                net.set_unconditional(v, &order).unwrap();
            } else {
                net.set_preference(v, &assignment, &order).unwrap();
            }
        }
    }
    net.validate().expect("random net must validate");
    net
}

/// Generates a random *tree* network: variable `vi` (i > 0) has the single
/// parent `v⌊(i-1)/2⌋` (a complete binary tree). The complement of
/// [`chain_net`] for benchmarks: shallow depth, wide fan-out, so a change at
/// an inner node dirties a subtree rather than a suffix.
pub fn tree_net(vars: usize, domain: usize, seed: u64) -> CpNet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = CpNet::new();
    let mut ids: Vec<VarId> = Vec::with_capacity(vars);
    for i in 0..vars {
        let names: Vec<String> = (0..domain).map(|d| format!("v{i}_{d}")).collect();
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let v = net.add_variable(&format!("v{i}"), &name_refs).unwrap();
        if i == 0 {
            let mut order: Vec<Value> = (0..domain as u16).map(Value).collect();
            order.shuffle(&mut rng);
            net.set_unconditional(v, &order).unwrap();
        } else {
            let p = ids[(i - 1) / 2];
            net.set_parents(v, &[p]).unwrap();
            for pv in 0..domain as u16 {
                let mut order: Vec<Value> = (0..domain as u16).map(Value).collect();
                order.shuffle(&mut rng);
                net.set_preference(v, &[(p, Value(pv))], &order).unwrap();
            }
        }
        ids.push(v);
    }
    net.validate().unwrap();
    net
}

/// Generates a random *chain* network `v0 → v1 → … → v(n-1)`; useful for
/// benchmarks where depth (not branching) is the variable of interest.
pub fn chain_net(vars: usize, domain: usize, seed: u64) -> CpNet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = CpNet::new();
    let mut prev: Option<VarId> = None;
    for i in 0..vars {
        let names: Vec<String> = (0..domain).map(|d| format!("v{i}_{d}")).collect();
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let v = net.add_variable(&format!("v{i}"), &name_refs).unwrap();
        if let Some(p) = prev {
            net.set_parents(v, &[p]).unwrap();
            for pv in 0..domain as u16 {
                let mut order: Vec<Value> = (0..domain as u16).map(Value).collect();
                order.shuffle(&mut rng);
                net.set_preference(v, &[(p, Value(pv))], &order).unwrap();
            }
        } else {
            let mut order: Vec<Value> = (0..domain as u16).map(Value).collect();
            order.shuffle(&mut rng);
            net.set_unconditional(v, &order).unwrap();
        }
        prev = Some(v);
    }
    net.validate().unwrap();
    net
}
