//! CP-networks: qualitative, graphical models of conditional preference.
//!
//! A CP-network (Boutilier, Brafman, Hoos & Poole, UAI 1999) is a directed
//! acyclic graph over a set of *variables*. In this system every variable is
//! a component of a multimedia document and its *domain* is the set of
//! alternative presentation forms of that component (flat, segmented, icon,
//! hidden, ...). Each variable `v` carries a *conditional preference table*
//! (CPT): for every assignment to the parents `Π(v)` the table stores a total
//! order over `D(v)`, read under a *ceteris paribus* (all else being equal)
//! assumption.
//!
//! The module provides construction and validation ([`CpNet`]), the two
//! queries the presentation engine needs online — the preferentially optimal
//! outcome and the optimal completion of viewer evidence — and the heavier
//! off-line machinery: dominance testing through improving-flip search and
//! preference-ordered outcome enumeration (used by the prefetch planner).

mod encode;
mod extend;
mod reason;
mod reconfig;
pub mod samples;

pub use encode::{decode_net, encode_net};
pub use extend::{ExtendedNet, Extension};
pub use reason::{
    dominates, improving_flips, optimal_completion, outcome_rank_vector, FlipSearchOutcome,
    OutcomeIter,
};
pub use reconfig::{ReconfigEngine, ReconfigStats};

use crate::error::{CoreError, Result};
use std::collections::HashSet;
use std::fmt;

/// Identifier of a variable inside a [`CpNet`] (a dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    #[inline]
    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A value of a variable: an index into the variable's domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Value(pub u16);

impl Value {
    #[inline]
    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A total order over the domain of one variable, most-preferred first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ranking {
    order: Vec<Value>,
    /// `position[d] = rank of value d` (0 = most preferred).
    position: Vec<u16>,
}

impl Ranking {
    /// Builds a ranking from an explicit order (most preferred first).
    ///
    /// Fails unless `order` is a permutation of `0..domain_size`.
    pub fn new(order: Vec<Value>, domain_size: usize) -> Result<Self> {
        if order.len() != domain_size {
            return Err(CoreError::BadRanking(format!(
                "ranking has {} entries, domain has {domain_size}",
                order.len()
            )));
        }
        let mut position = vec![u16::MAX; domain_size];
        for (rank, v) in order.iter().enumerate() {
            let d = v.idx();
            if d >= domain_size {
                return Err(CoreError::BadRanking(format!(
                    "value {d} out of range for domain of size {domain_size}"
                )));
            }
            if position[d] != u16::MAX {
                return Err(CoreError::BadRanking(format!("value {d} appears twice")));
            }
            position[d] = rank as u16;
        }
        Ok(Ranking { order, position })
    }

    /// The identity ranking `0 ≻ 1 ≻ …` over a domain.
    pub fn identity(domain_size: usize) -> Self {
        let order: Vec<Value> = (0..domain_size as u16).map(Value).collect();
        let position: Vec<u16> = (0..domain_size as u16).collect();
        Ranking { order, position }
    }

    /// Values from most to least preferred.
    #[inline]
    pub fn order(&self) -> &[Value] {
        &self.order
    }

    /// The most preferred value.
    #[inline]
    pub fn best(&self) -> Value {
        self.order[0]
    }

    /// Rank of `v` (0 = most preferred).
    #[inline]
    pub fn rank_of(&self, v: Value) -> u16 {
        self.position[v.idx()]
    }

    /// `true` if `a` is strictly preferred to `b` in this ranking.
    #[inline]
    pub fn prefers(&self, a: Value, b: Value) -> bool {
        self.position[a.idx()] < self.position[b.idx()]
    }

    /// Values strictly preferred to `v`, best first.
    pub fn better_than(&self, v: Value) -> &[Value] {
        &self.order[..self.rank_of(v) as usize]
    }
}

/// A complete assignment: one value per network variable.
pub type Outcome = Vec<Value>;

/// A partial assignment (evidence): `None` means unconstrained.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartialAssignment {
    values: Vec<Option<Value>>,
}

impl PartialAssignment {
    /// An empty assignment over `n` variables.
    pub fn empty(n: usize) -> Self {
        PartialAssignment {
            values: vec![None; n],
        }
    }

    /// Fixes `var` to `value`.
    pub fn set(&mut self, var: VarId, value: Value) {
        if var.idx() >= self.values.len() {
            self.values.resize(var.idx() + 1, None);
        }
        self.values[var.idx()] = Some(value);
    }

    /// Removes the constraint on `var`.
    pub fn clear(&mut self, var: VarId) {
        if var.idx() < self.values.len() {
            self.values[var.idx()] = None;
        }
    }

    /// The constraint on `var`, if any.
    pub fn get(&self, var: VarId) -> Option<Value> {
        self.values.get(var.idx()).copied().flatten()
    }

    /// Number of constrained variables.
    pub fn len_set(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// Iterates over `(var, value)` pairs that are constrained.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, Value)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|val| (VarId(i as u32), val)))
    }

    /// Builds evidence from `(var, value)` pairs over `n` variables.
    pub fn from_pairs(n: usize, pairs: &[(VarId, Value)]) -> Self {
        let mut pa = Self::empty(n);
        for &(v, val) in pairs {
            pa.set(v, val);
        }
        pa
    }

    /// `true` if `outcome` agrees with every constraint.
    pub fn consistent_with(&self, outcome: &[Value]) -> bool {
        self.iter().all(|(v, val)| outcome[v.idx()] == val)
    }

    /// The raw slot vector (index = variable id, `None` = unconstrained).
    /// Used by the reconfiguration engine for cheap change detection and
    /// memo keying.
    pub fn as_slice(&self) -> &[Option<Value>] {
        &self.values
    }
}

/// Conditional preference table of one variable.
///
/// Rows are stored densely, indexed by the mixed-radix encoding of the
/// parent assignment (first parent is the most significant digit).
#[derive(Debug, Clone)]
pub struct CpTable {
    parents: Vec<VarId>,
    /// Domain sizes of the parents, in `parents` order.
    parent_domains: Vec<usize>,
    rows: Vec<Ranking>,
    /// Whether each row was explicitly provided by the author.
    explicit: Vec<bool>,
}

impl CpTable {
    fn unconditional(domain_size: usize) -> Self {
        CpTable {
            parents: Vec::new(),
            parent_domains: Vec::new(),
            rows: vec![Ranking::identity(domain_size)],
            explicit: vec![false],
        }
    }

    /// The parent set `Π(v)`.
    pub fn parents(&self) -> &[VarId] {
        &self.parents
    }

    /// Number of rows (product of parent domain sizes).
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The ranking stored in row `row`.
    pub fn row(&self, row: usize) -> &Ranking {
        &self.rows[row]
    }

    /// Whether row `row` was explicitly authored (vs. a default).
    pub fn row_is_explicit(&self, row: usize) -> bool {
        self.explicit[row]
    }

    fn row_index(&self, parent_values: &[Value]) -> usize {
        debug_assert_eq!(parent_values.len(), self.parents.len());
        let mut idx = 0usize;
        for (val, &dom) in parent_values.iter().zip(&self.parent_domains) {
            debug_assert!(val.idx() < dom);
            idx = idx * dom + val.idx();
        }
        idx
    }

    /// Snapshots all rows as `(parent assignment, ranking)` pairs — used
    /// when a table is re-authored with an extended parent set.
    pub fn clone_rows(&self) -> Vec<(Vec<Value>, Ranking)> {
        (0..self.num_rows())
            .map(|r| (self.row_assignment(r), self.rows[r].clone()))
            .collect()
    }

    /// Decodes row index `row` back into a parent assignment.
    pub fn row_assignment(&self, mut row: usize) -> Vec<Value> {
        let mut vals = vec![Value(0); self.parents.len()];
        for (slot, &dom) in vals.iter_mut().zip(&self.parent_domains).rev() {
            *slot = Value((row % dom) as u16);
            row /= dom;
        }
        vals
    }
}

/// Hard cap on the number of CPT rows per variable (guards against
/// accidentally conditioning on too many parents).
pub const MAX_CPT_ROWS: usize = 1 << 20;

/// Hard cap on domain sizes (values are stored as `u16`).
pub const MAX_DOMAIN: usize = u16::MAX as usize;

/// The interface the reasoning algorithms need; implemented by [`CpNet`]
/// itself and by [`ExtendedNet`] (a base net plus a viewer-local extension).
pub trait PreferenceNet {
    /// Number of variables.
    fn num_vars(&self) -> usize;
    /// Domain size of `v`.
    fn domain_size(&self, v: VarId) -> usize;
    /// Parent set of `v`.
    fn parents(&self, v: VarId) -> &[VarId];
    /// CPT row of `v` under `parent_values` (given in `parents(v)` order).
    fn ranking(&self, v: VarId, parent_values: &[Value]) -> &Ranking;
    /// Human-readable variable name.
    fn var_name(&self, v: VarId) -> &str;
    /// Human-readable value name.
    fn value_name(&self, v: VarId, val: Value) -> &str;

    /// A topological order of the variables (parents before children).
    ///
    /// The default implementation runs Kahn's algorithm; acyclicity is a
    /// validated invariant so it cannot fail on a validated net.
    fn topo_order(&self) -> Vec<VarId> {
        let n = self.num_vars();
        let mut indegree = vec![0usize; n];
        let mut children: Vec<Vec<VarId>> = vec![Vec::new(); n];
        for (i, deg) in indegree.iter_mut().enumerate() {
            let v = VarId(i as u32);
            for &p in self.parents(v) {
                *deg += 1;
                children[p.idx()].push(v);
            }
        }
        let mut queue: Vec<VarId> = (0..n)
            .filter(|&i| indegree[i] == 0)
            .map(|i| VarId(i as u32))
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &c in &children[v.idx()] {
                indegree[c.idx()] -= 1;
                if indegree[c.idx()] == 0 {
                    queue.push(c);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "net contains a cycle");
        order
    }

    /// Collects the current values of `v`'s parents out of a full outcome.
    fn parent_values(&self, v: VarId, outcome: &[Value]) -> Vec<Value> {
        self.parents(v).iter().map(|p| outcome[p.idx()]).collect()
    }
}

/// A variable of the network: a named domain of presentation alternatives.
#[derive(Debug, Clone)]
pub struct Variable {
    name: String,
    domain: Vec<String>,
}

impl Variable {
    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The names of the domain values.
    pub fn domain(&self) -> &[String] {
        &self.domain
    }
}

/// A CP-network: an acyclic graph of variables with conditional preference
/// tables. See the [module documentation](self) for the semantics.
///
/// # Example
///
/// The 5-variable network of the paper's Figure 2:
///
/// ```
/// use rcmo_core::cpnet::{CpNet, Value, PreferenceNet};
///
/// let mut net = CpNet::new();
/// let c1 = net.add_variable("c1", &["c1_1", "c1_2"]).unwrap();
/// let c2 = net.add_variable("c2", &["c2_1", "c2_2"]).unwrap();
/// let c3 = net.add_variable("c3", &["c3_1", "c3_2"]).unwrap();
/// let c4 = net.add_variable("c4", &["c4_1", "c4_2"]).unwrap();
/// let c5 = net.add_variable("c5", &["c5_1", "c5_2"]).unwrap();
/// net.set_unconditional(c1, &[Value(0), Value(1)]).unwrap();
/// net.set_unconditional(c2, &[Value(1), Value(0)]).unwrap();
/// net.set_parents(c3, &[c1, c2]).unwrap();
/// // (c1_1 ∧ c2_1) ∨ (c1_2 ∧ c2_2) : c3_1 ≻ c3_2 ; otherwise c3_2 ≻ c3_1
/// net.set_preference(c3, &[(c1, Value(0)), (c2, Value(0))], &[Value(0), Value(1)]).unwrap();
/// net.set_preference(c3, &[(c1, Value(1)), (c2, Value(1))], &[Value(0), Value(1)]).unwrap();
/// net.set_preference(c3, &[(c1, Value(0)), (c2, Value(1))], &[Value(1), Value(0)]).unwrap();
/// net.set_preference(c3, &[(c1, Value(1)), (c2, Value(0))], &[Value(1), Value(0)]).unwrap();
/// net.set_parents(c4, &[c3]).unwrap();
/// net.set_preference(c4, &[(c3, Value(0))], &[Value(0), Value(1)]).unwrap();
/// net.set_preference(c4, &[(c3, Value(1))], &[Value(1), Value(0)]).unwrap();
/// net.set_parents(c5, &[c3]).unwrap();
/// net.set_preference(c5, &[(c3, Value(0))], &[Value(0), Value(1)]).unwrap();
/// net.set_preference(c5, &[(c3, Value(1))], &[Value(1), Value(0)]).unwrap();
/// net.validate().unwrap();
///
/// // c1 = c1_1, c2 = c2_2 ⇒ c3 = c3_2 ⇒ c4 = c4_2, c5 = c5_2
/// let best = net.optimal_outcome();
/// assert_eq!(best, vec![Value(0), Value(1), Value(1), Value(1), Value(1)]);
/// ```
#[derive(Debug)]
pub struct CpNet {
    vars: Vec<Variable>,
    tables: Vec<CpTable>,
    /// Process-unique identity of this network instance (clones get a fresh
    /// one), paired with `revision` to key caches of derived state.
    uid: u64,
    /// Bumped on every mutation; caches keyed by `(uid, revision)` are
    /// invalidated by any structural or preference edit.
    revision: u64,
}

fn next_net_uid() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Default for CpNet {
    fn default() -> Self {
        CpNet {
            vars: Vec::new(),
            tables: Vec::new(),
            uid: next_net_uid(),
            revision: 0,
        }
    }
}

impl Clone for CpNet {
    fn clone(&self) -> Self {
        // A clone can diverge from the original, so it must not share the
        // cache identity: two nets at the same (uid, revision) would look
        // interchangeable to the reconfiguration engine.
        CpNet {
            vars: self.vars.clone(),
            tables: self.tables.clone(),
            uid: next_net_uid(),
            revision: self.revision,
        }
    }
}

impl CpNet {
    /// Creates an empty network.
    pub fn new() -> Self {
        CpNet::default()
    }

    /// Process-unique identity of this network instance.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Mutation counter: bumped by every edit (variables, parents,
    /// preferences). `(uid(), revision())` keys any cache of derived state.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// `true` if the network has no variables.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Adds a variable with the given domain (value names).
    ///
    /// Its CPT starts unconditional with the identity ranking; use
    /// [`set_unconditional`](Self::set_unconditional) or
    /// [`set_parents`](Self::set_parents) + [`set_preference`](Self::set_preference)
    /// to author real preferences.
    pub fn add_variable(&mut self, name: &str, domain: &[&str]) -> Result<VarId> {
        if domain.is_empty() {
            return Err(CoreError::BadDomain(format!(
                "variable '{name}' has an empty domain"
            )));
        }
        if domain.len() > MAX_DOMAIN {
            return Err(CoreError::BadDomain(format!(
                "variable '{name}' has {} values; max is {MAX_DOMAIN}",
                domain.len()
            )));
        }
        let id = VarId(self.vars.len() as u32);
        self.vars.push(Variable {
            name: name.to_string(),
            domain: domain.iter().map(|s| s.to_string()).collect(),
        });
        self.tables.push(CpTable::unconditional(domain.len()));
        self.revision += 1;
        Ok(id)
    }

    /// Access to a variable's metadata.
    pub fn variable(&self, v: VarId) -> Result<&Variable> {
        self.vars
            .get(v.idx())
            .ok_or(CoreError::UnknownVariable(v.0))
    }

    /// Access to a variable's CPT.
    pub fn table(&self, v: VarId) -> Result<&CpTable> {
        self.tables
            .get(v.idx())
            .ok_or(CoreError::UnknownVariable(v.0))
    }

    /// Looks a variable up by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }

    /// Looks a value up by name within a variable's domain.
    pub fn value_by_name(&self, v: VarId, name: &str) -> Option<Value> {
        self.vars
            .get(v.idx())?
            .domain
            .iter()
            .position(|d| d == name)
            .map(|i| Value(i as u16))
    }

    fn check_var(&self, v: VarId) -> Result<()> {
        if v.idx() >= self.vars.len() {
            return Err(CoreError::UnknownVariable(v.0));
        }
        Ok(())
    }

    fn check_value(&self, v: VarId, val: Value) -> Result<()> {
        self.check_var(v)?;
        let dom = self.vars[v.idx()].domain.len();
        if val.idx() >= dom {
            return Err(CoreError::ValueOutOfRange {
                var: v.0,
                value: val.0,
                domain: dom,
            });
        }
        Ok(())
    }

    /// Declares `Π(v) = parents` and resets `v`'s CPT to default rankings.
    ///
    /// Rejects self-parenting, duplicate parents, parent sets that would
    /// create a directed cycle, and tables that would exceed
    /// [`MAX_CPT_ROWS`].
    pub fn set_parents(&mut self, v: VarId, parents: &[VarId]) -> Result<()> {
        self.check_var(v)?;
        let mut seen = HashSet::new();
        for &p in parents {
            self.check_var(p)?;
            if p == v {
                return Err(CoreError::CycleDetected(format!(
                    "variable '{}' cannot be its own parent",
                    self.vars[v.idx()].name
                )));
            }
            if !seen.insert(p) {
                return Err(CoreError::BadParentAssignment(format!(
                    "duplicate parent {p} for variable '{}'",
                    self.vars[v.idx()].name
                )));
            }
        }
        // Cycle check: would v be reachable from itself through the new edges?
        if self.reaches_any(v, parents) {
            return Err(CoreError::CycleDetected(format!(
                "setting parents of '{}' would create a cycle",
                self.vars[v.idx()].name
            )));
        }
        let parent_domains: Vec<usize> = parents
            .iter()
            .map(|p| self.vars[p.idx()].domain.len())
            .collect();
        let mut rows = 1usize;
        for &d in &parent_domains {
            rows = rows.saturating_mul(d);
            if rows > MAX_CPT_ROWS {
                return Err(CoreError::BadParentAssignment(format!(
                    "CPT of '{}' would exceed {MAX_CPT_ROWS} rows",
                    self.vars[v.idx()].name
                )));
            }
        }
        let dom = self.vars[v.idx()].domain.len();
        self.tables[v.idx()] = CpTable {
            parents: parents.to_vec(),
            parent_domains,
            rows: vec![Ranking::identity(dom); rows],
            explicit: vec![false; rows],
        };
        self.revision += 1;
        Ok(())
    }

    /// `true` if any of `from` can reach `target` through parent edges
    /// (i.e. `target` is an ancestor-to-be of itself).
    fn reaches_any(&self, target: VarId, from: &[VarId]) -> bool {
        let mut stack: Vec<VarId> = from.to_vec();
        let mut visited = HashSet::new();
        while let Some(v) = stack.pop() {
            if v == target {
                return true;
            }
            if visited.insert(v) {
                stack.extend(self.tables[v.idx()].parents.iter().copied());
            }
        }
        false
    }

    /// Authors the CPT row of `v` under the given parent assignment.
    ///
    /// `assignment` must mention exactly the parents of `v` (in any order);
    /// `order` is the full preference order over `D(v)`, most preferred
    /// first.
    pub fn set_preference(
        &mut self,
        v: VarId,
        assignment: &[(VarId, Value)],
        order: &[Value],
    ) -> Result<()> {
        self.check_var(v)?;
        // Validation only needs a shared borrow of the parent list; the row
        // index and ranking are computed before the table is touched, so no
        // copy of the parent set is ever made.
        let (row, ranking) = {
            let parents = &self.tables[v.idx()].parents;
            if assignment.len() != parents.len() {
                return Err(CoreError::BadParentAssignment(format!(
                    "variable '{}' has {} parents but assignment covers {}",
                    self.vars[v.idx()].name,
                    parents.len(),
                    assignment.len()
                )));
            }
            let mut parent_values = vec![None; parents.len()];
            for &(p, val) in assignment {
                self.check_value(p, val)?;
                match parents.iter().position(|&q| q == p) {
                    Some(slot) => {
                        if parent_values[slot].replace(val).is_some() {
                            return Err(CoreError::BadParentAssignment(format!(
                                "parent {p} assigned twice"
                            )));
                        }
                    }
                    None => {
                        return Err(CoreError::BadParentAssignment(format!(
                            "{p} is not a parent of '{}'",
                            self.vars[v.idx()].name
                        )))
                    }
                }
            }
            let parent_values: Vec<Value> = parent_values.into_iter().map(|o| o.unwrap()).collect();
            let dom = self.vars[v.idx()].domain.len();
            let ranking = Ranking::new(order.to_vec(), dom)?;
            (self.tables[v.idx()].row_index(&parent_values), ranking)
        };
        self.tables[v.idx()].rows[row] = ranking;
        self.tables[v.idx()].explicit[row] = true;
        self.revision += 1;
        Ok(())
    }

    /// Authors an unconditional preference for a parentless variable.
    pub fn set_unconditional(&mut self, v: VarId, order: &[Value]) -> Result<()> {
        self.check_var(v)?;
        if !self.tables[v.idx()].parents.is_empty() {
            return Err(CoreError::BadParentAssignment(format!(
                "variable '{}' has parents; use set_preference",
                self.vars[v.idx()].name
            )));
        }
        let dom = self.vars[v.idx()].domain.len();
        let ranking = Ranking::new(order.to_vec(), dom)?;
        self.tables[v.idx()].rows[0] = ranking;
        self.tables[v.idx()].explicit[0] = true;
        self.revision += 1;
        Ok(())
    }

    /// Validates the network: acyclic (guaranteed by construction, but
    /// re-checked), every CPT row a permutation (guaranteed by
    /// construction), and every row explicitly authored.
    ///
    /// A network with default (identity) rows is still usable — the
    /// presentation engine treats document order as the fallback preference —
    /// but `validate` is strict so authoring omissions surface in tests.
    pub fn validate(&self) -> Result<()> {
        // Acyclicity via Kahn (topo_order asserts in debug; do it for real).
        let n = self.len();
        let mut indeg = vec![0usize; n];
        for t in &self.tables {
            for p in &t.parents {
                if p.idx() >= n {
                    return Err(CoreError::Invalid(format!("dangling parent {p}")));
                }
            }
        }
        for (i, t) in self.tables.iter().enumerate() {
            indeg[i] = t.parents.len();
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, t) in self.tables.iter().enumerate() {
            for p in &t.parents {
                children[p.idx()].push(i);
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &c in &children[v] {
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    queue.push(c);
                }
            }
        }
        if seen != n {
            return Err(CoreError::CycleDetected(
                "network graph contains a cycle".to_string(),
            ));
        }
        for (i, t) in self.tables.iter().enumerate() {
            for (r, set) in t.explicit.iter().enumerate() {
                if !set {
                    return Err(CoreError::Invalid(format!(
                        "CPT row {r} of variable '{}' was never authored",
                        self.vars[i].name
                    )));
                }
            }
        }
        Ok(())
    }

    /// The preferentially optimal outcome: a topological sweep assigning
    /// every variable its most preferred value given its parents.
    pub fn optimal_outcome(&self) -> Outcome {
        static LAT: rcmo_obs::LazyHistogram = rcmo_obs::LazyHistogram::new(
            "core.cpnet.optimal_outcome.us",
            rcmo_obs::bounds::LATENCY_US,
        );
        let _t = LAT.start_timer();
        reason::optimal_completion(self, &PartialAssignment::empty(self.len()))
    }

    /// The best outcome consistent with `evidence` (the paper's
    /// "best completion of π"): evidence values are projected onto the
    /// network before the top-down sweep.
    pub fn optimal_completion(&self, evidence: &PartialAssignment) -> Outcome {
        static LAT: rcmo_obs::LazyHistogram = rcmo_obs::LazyHistogram::new(
            "core.cpnet.optimal_completion.us",
            rcmo_obs::bounds::LATENCY_US,
        );
        let _t = LAT.start_timer();
        reason::optimal_completion(self, evidence)
    }

    /// Dominance query: does `better ≻ worse` hold in the CP-net order?
    ///
    /// Runs an improving-flip search from `worse` towards `better` with a
    /// budget of `max_nodes` visited outcomes. See
    /// [`reason::dominates`](FlipSearchOutcome).
    pub fn dominates(
        &self,
        better: &[Value],
        worse: &[Value],
        max_nodes: usize,
    ) -> FlipSearchOutcome {
        reason::dominates(self, better, worse, max_nodes)
    }

    /// Enumerates outcomes from most to least preferred (a linear extension
    /// of the CP-net partial order), optionally restricted by evidence.
    ///
    /// The iterator borrows `evidence` for its lifetime (no copy is made).
    pub fn outcomes_by_preference<'a>(
        &'a self,
        evidence: &'a PartialAssignment,
    ) -> OutcomeIter<'a, Self> {
        OutcomeIter::new(self, evidence)
    }

    /// Removes variable `v`, fixing its value to `fix` in every child's CPT.
    ///
    /// The policy of the paper's Section 4.2 for component removal: children
    /// keep only the CPT rows in which the removed component took the value
    /// it had at removal time. Variable ids above `v` shift down by one.
    pub fn remove_variable(&mut self, v: VarId, fix: Value) -> Result<()> {
        self.check_value(v, fix)?;
        let vi = v.idx();
        // Rebuild every table that conditions on v.
        for i in 0..self.tables.len() {
            if i == vi {
                continue;
            }
            if let Some(slot) = self.tables[i].parents.iter().position(|&p| p == v) {
                // Take the old table so its rankings can be *moved* into the
                // rebuilt table (each surviving row is referenced exactly
                // once: the kept rows are those where parent `slot` = `fix`).
                let old = std::mem::replace(&mut self.tables[i], CpTable::unconditional(1));
                let mut old_rows: Vec<Option<Ranking>> = old.rows.into_iter().map(Some).collect();
                let old_domains = old.parent_domains;
                let mut new_parents = old.parents;
                new_parents.remove(slot);
                let mut new_domains = old_domains.clone();
                new_domains.remove(slot);
                let new_rows: usize = new_domains.iter().product::<usize>().max(1);
                let mut rows = Vec::with_capacity(new_rows);
                let mut explicit = Vec::with_capacity(new_rows);
                for r in 0..new_rows {
                    // Decode r under new_domains, splice `fix` back at `slot`,
                    // re-encode under old domains.
                    let mut vals = Vec::with_capacity(new_domains.len() + 1);
                    let mut rr = r;
                    let mut digits = vec![Value(0); new_domains.len()];
                    for (d, &dom) in digits.iter_mut().zip(&new_domains).rev() {
                        *d = Value((rr % dom) as u16);
                        rr /= dom;
                    }
                    vals.extend_from_slice(&digits[..slot]);
                    vals.push(fix);
                    vals.extend_from_slice(&digits[slot..]);
                    let mut old_idx = 0usize;
                    for (val, &dom) in vals.iter().zip(&old_domains) {
                        old_idx = old_idx * dom + val.idx();
                    }
                    rows.push(old_rows[old_idx].take().expect("row referenced once"));
                    explicit.push(old.explicit[old_idx]);
                }
                self.tables[i] = CpTable {
                    parents: new_parents,
                    parent_domains: new_domains,
                    rows,
                    explicit,
                };
            }
        }
        self.vars.remove(vi);
        self.tables.remove(vi);
        // Shift ids in every parent list.
        for t in &mut self.tables {
            for p in &mut t.parents {
                if p.idx() > vi {
                    *p = VarId(p.0 - 1);
                }
            }
        }
        self.revision += 1;
        Ok(())
    }

    /// Adds the Section-4.2 *derived operation variable*: a new binary
    /// variable `name` with domain `[applied_name, plain_name]`, single
    /// parent `v`, preferring `applied` exactly when `v = trigger` (the
    /// presentation form the component had when the viewer performed the
    /// operation) and `plain` otherwise.
    pub fn add_derived_variable(
        &mut self,
        v: VarId,
        trigger: Value,
        name: &str,
        applied_name: &str,
        plain_name: &str,
    ) -> Result<VarId> {
        self.check_value(v, trigger)?;
        let d = self.add_variable(name, &[applied_name, plain_name])?;
        self.set_parents(d, &[v])?;
        let dom = self.vars[v.idx()].domain.len();
        for val in 0..dom as u16 {
            let order = if Value(val) == trigger {
                [Value(0), Value(1)]
            } else {
                [Value(1), Value(0)]
            };
            self.set_preference(d, &[(v, Value(val))], &order)?;
        }
        Ok(d)
    }

    /// Renders an outcome with variable/value names, for logs and examples.
    pub fn describe_outcome(&self, outcome: &[Value]) -> String {
        let mut parts = Vec::with_capacity(outcome.len());
        for (i, val) in outcome.iter().enumerate() {
            let var = &self.vars[i];
            let name = var
                .domain
                .get(val.idx())
                .map(|s| s.as_str())
                .unwrap_or("<?>");
            parts.push(format!("{}={}", var.name, name));
        }
        parts.join(", ")
    }

    /// Serialises the network to a compact binary form.
    pub fn to_bytes(&self) -> Vec<u8> {
        encode::encode_net(self)
    }

    /// Reconstructs a network serialised with [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        encode::decode_net(bytes)
    }
}

impl PreferenceNet for CpNet {
    fn num_vars(&self) -> usize {
        self.vars.len()
    }

    fn domain_size(&self, v: VarId) -> usize {
        self.vars[v.idx()].domain.len()
    }

    fn parents(&self, v: VarId) -> &[VarId] {
        &self.tables[v.idx()].parents
    }

    fn ranking(&self, v: VarId, parent_values: &[Value]) -> &Ranking {
        let t = &self.tables[v.idx()];
        &t.rows[t.row_index(parent_values)]
    }

    fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.idx()].name
    }

    fn value_name(&self, v: VarId, val: Value) -> &str {
        &self.vars[v.idx()].domain[val.idx()]
    }
}

#[cfg(test)]
mod tests;
