//! Incremental reconfiguration of optimal completions.
//!
//! The paper's online loop recomputes the optimal completion of the viewer's
//! evidence on every interaction — a full topological sweep per click, per
//! room member. CP-net semantics make most of that work redundant: under a
//! ceteris paribus reading, a variable's swept value depends only on its own
//! evidence and its parents' values, so when evidence changes at a set `D`
//! of variables, only `D` and its descendants (the *dirty cone*) can change
//! value (Boutilier et al., JAIR 2004). [`ReconfigEngine`] exploits this:
//!
//! * the topological order and child adjacency of the net are computed once
//!   per `(uid, revision)` and reused across queries;
//! * per viewer, the previous `(evidence, outcome)` pair is cached, and an
//!   evidence change recomputes only the dirty cone over the cached outcome;
//! * identical evidence (from any viewer) is answered from a bounded
//!   evidence-keyed memo, counted by `core.reconfig.memo.{hit,miss}.count`;
//! * any mutation of the net bumps its revision (see [`CpNet::revision`]),
//!   which drops every cache and falls back to a full sweep.

use super::{CpNet, Outcome, PartialAssignment, PreferenceNet, Value, VarId};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Maximum number of distinct evidence keys retained in the memo. Evidence
/// in a room clusters heavily (members converge on the same choices), so a
/// small bound captures nearly all reuse while capping memory.
const MEMO_CAPACITY: usize = 256;

/// Associativity of the memo: each evidence key maps to one set of
/// `MEMO_WAYS` slots and evicts the least recently touched slot of that set.
/// A hash map with global LRU was measured to cost more per miss (two full
/// key hashes, an eviction scan, and an allocation) than the sweep the memo
/// avoids on paper-sized nets; the set-associative layout does one
/// fingerprint, two slot compares, and reuses the victim's buffers.
const MEMO_WAYS: usize = 2;
const MEMO_SETS: usize = MEMO_CAPACITY / MEMO_WAYS;

/// FNV-1a, fixed-key. Viewer names are short strings hashed on the hot
/// path; SipHash's setup cost would rival the sweep being avoided. The
/// integer-write overrides fold each fixed-width write into a single
/// xor-multiply round instead of one per byte.
struct Fnv(u64);

const FNV_PRIME: u64 = 0x100_0000_01b3;

/// 64-bit FNV-1a over the evidence slots, one round per slot (`None` and
/// `Some(v)` map to distinct non-overlapping lanes).
fn fingerprint(key: &[Option<Value>]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for s in key {
        let lane = match s {
            Some(val) => val.0 as u64 + 1,
            None => 0,
        };
        h = (h ^ lane).wrapping_mul(FNV_PRIME);
    }
    h
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.0 = (self.0 ^ i as u64).wrapping_mul(FNV_PRIME);
    }

    fn write_u16(&mut self, i: u16) {
        self.0 = (self.0 ^ i as u64).wrapping_mul(FNV_PRIME);
    }

    fn write_u32(&mut self, i: u32) {
        self.0 = (self.0 ^ i as u64).wrapping_mul(FNV_PRIME);
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0 ^ i).wrapping_mul(FNV_PRIME);
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<Fnv>>;

/// The evidence slots, used both as memo key and for change detection.
type EvidenceKey = Vec<Option<Value>>;

#[derive(Debug, Clone)]
struct MemoSlot {
    key: EvidenceKey,
    outcome: Outcome,
    /// Logical timestamp of the last hit or insert (set-local LRU eviction).
    touched: u64,
}

#[derive(Debug, Clone)]
struct ViewerState {
    evidence: EvidenceKey,
    outcome: Outcome,
}

/// Counters of the engine's cache behaviour, for reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReconfigStats {
    /// Queries answered from the evidence memo.
    pub memo_hits: u64,
    /// Queries that had to compute (incrementally or fully).
    pub memo_misses: u64,
    /// Computations that ran the dirty-cone incremental path.
    pub incremental: u64,
    /// Computations that ran a full topological sweep.
    pub full_sweeps: u64,
    /// Cache generations dropped because the net's revision moved.
    pub invalidations: u64,
}

impl ReconfigStats {
    /// Hit rate of the evidence memo in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }
}

/// Incremental optimal-completion engine over one [`CpNet`] at a time.
///
/// The engine follows whatever net it is queried with: when the net's
/// identity or revision differs from the cached one (a structural or
/// preference edit, or a different document), every cache is dropped and the
/// topology is rebuilt. Queries for evidence already seen are answered from
/// the memo; queries from a viewer with cached state recompute only the
/// dirty cone; everything else runs the classic full sweep.
#[derive(Debug, Default)]
pub struct ReconfigEngine {
    /// `(uid, revision)` the cached topology and outcomes belong to.
    key: Option<(u64, u64)>,
    /// Topological order (parents before children).
    topo: Vec<VarId>,
    /// Child adjacency: `children[v]` = variables with `v` as parent.
    children: Vec<Vec<VarId>>,
    /// Last `(evidence, outcome)` per viewer.
    viewers: FnvMap<String, ViewerState>,
    /// Evidence-keyed outcome memo: [`MEMO_SETS`] sets of [`MEMO_WAYS`]
    /// slots, set-major (`memo[set * MEMO_WAYS + way]`), empty until the
    /// first insert.
    memo: Vec<Option<MemoSlot>>,
    /// Logical clock for memo recency.
    tick: u64,
    stats: ReconfigStats,
    /// Reusable buffers — `completion` is the per-click hot path and must
    /// not allocate for lookups, change detection, or cone traversal.
    scratch_key: EvidenceKey,
    scratch_dirty: Vec<bool>,
    scratch_pvals: Vec<Value>,
}

impl ReconfigEngine {
    /// Creates an engine with empty caches.
    pub fn new() -> Self {
        ReconfigEngine::default()
    }

    /// Cache behaviour counters since construction.
    pub fn stats(&self) -> ReconfigStats {
        self.stats
    }

    /// The best outcome consistent with `evidence`, equal to
    /// [`CpNet::optimal_completion`] but served incrementally where the
    /// caches allow. `viewer` keys the per-viewer previous outcome.
    pub fn completion(
        &mut self,
        net: &CpNet,
        viewer: &str,
        evidence: &PartialAssignment,
    ) -> Outcome {
        static MEMO_HITS: rcmo_obs::LazyCounter =
            rcmo_obs::LazyCounter::new("core.reconfig.memo.hit.count");
        static MEMO_MISSES: rcmo_obs::LazyCounter =
            rcmo_obs::LazyCounter::new("core.reconfig.memo.miss.count");

        self.sync_topology(net);
        self.tick += 1;

        self.scratch_key.clear();
        self.scratch_key.extend_from_slice(evidence.as_slice());
        self.scratch_key.resize(net.len(), None);

        let fp = fingerprint(&self.scratch_key);
        let base = (fp as usize % MEMO_SETS) * MEMO_WAYS;
        for way in base..base + MEMO_WAYS {
            if let Some(Some(slot)) = self.memo.get_mut(way) {
                if slot.key == self.scratch_key {
                    slot.touched = self.tick;
                    self.stats.memo_hits += 1;
                    MEMO_HITS.inc();
                    let outcome = slot.outcome.clone();
                    Self::remember(&mut self.viewers, viewer, &self.scratch_key, &outcome);
                    return outcome;
                }
            }
        }
        self.stats.memo_misses += 1;
        MEMO_MISSES.inc();

        let has_prev = self
            .viewers
            .get(viewer)
            .is_some_and(|p| p.outcome.len() == net.len());
        let outcome = if has_prev {
            static INC_LAT: rcmo_obs::LazyHistogram = rcmo_obs::LazyHistogram::new(
                "core.reconfig.incremental.us",
                rcmo_obs::bounds::LATENCY_US,
            );
            let _t = INC_LAT.start_timer();
            self.stats.incremental += 1;
            // The cone is recomputed directly on the viewer's cached outcome
            // — off-cone slots never move, so nothing is copied besides the
            // final owned return value.
            let Self {
                viewers,
                topo,
                children,
                scratch_key,
                scratch_dirty,
                scratch_pvals,
                ..
            } = self;
            let state = viewers.get_mut(viewer).expect("checked above");
            Self::incremental(
                net,
                topo,
                children,
                &state.evidence,
                &mut state.outcome,
                scratch_key,
                scratch_dirty,
                scratch_pvals,
            );
            state.evidence.clear();
            state.evidence.extend_from_slice(scratch_key);
            state.outcome.clone()
        } else {
            static FULL_LAT: rcmo_obs::LazyHistogram =
                rcmo_obs::LazyHistogram::new("core.reconfig.full.us", rcmo_obs::bounds::LATENCY_US);
            let _t = FULL_LAT.start_timer();
            self.stats.full_sweeps += 1;
            let outcome = net.optimal_completion(evidence);
            Self::remember(&mut self.viewers, viewer, &self.scratch_key, &outcome);
            outcome
        };
        self.memoize(base, &outcome);
        outcome
    }

    /// Rebuilds the topology and drops every cache when the net the engine
    /// is queried with is not the one the caches were built for.
    fn sync_topology(&mut self, net: &CpNet) {
        let key = (net.uid(), net.revision());
        if self.key == Some(key) {
            return;
        }
        if self.key.is_some() {
            self.stats.invalidations += 1;
        }
        self.key = Some(key);
        self.topo = net.topo_order();
        let n = net.len();
        let mut children: Vec<Vec<VarId>> = vec![Vec::new(); n];
        for i in 0..n {
            let v = VarId(i as u32);
            for &p in net.parents(v) {
                children[p.idx()].push(v);
            }
        }
        self.children = children;
        self.viewers.clear();
        self.memo.clear();
    }

    /// Dirty-cone recomputation, in place over the viewer's cached
    /// `outcome`: seed the dirty set with the variables whose evidence slot
    /// changed, then walk the precomputed topological order recomputing
    /// dirty variables only, marking children dirty whenever a value
    /// actually changes. Variables outside the cone keep their cached
    /// values, which the sweep would have reproduced (a swept value depends
    /// only on own evidence and parent values, both unchanged off-cone).
    #[allow(clippy::too_many_arguments)]
    fn incremental(
        net: &CpNet,
        topo: &[VarId],
        children: &[Vec<VarId>],
        old_evidence: &[Option<Value>],
        outcome: &mut Outcome,
        evidence: &[Option<Value>],
        dirty: &mut Vec<bool>,
        pvals: &mut Vec<Value>,
    ) {
        let n = net.len();
        dirty.clear();
        dirty.resize(n, false);
        for i in 0..n {
            if old_evidence.get(i).copied().flatten() != evidence[i] {
                dirty[i] = true;
            }
        }
        for &v in topo {
            if !dirty[v.idx()] {
                continue;
            }
            let new_val = match evidence[v.idx()] {
                Some(val) => val,
                None => {
                    pvals.clear();
                    pvals.extend(net.parents(v).iter().map(|p| outcome[p.idx()]));
                    net.ranking(v, pvals).best()
                }
            };
            if new_val != outcome[v.idx()] {
                outcome[v.idx()] = new_val;
                for &c in &children[v.idx()] {
                    dirty[c.idx()] = true;
                }
            }
        }
    }

    /// Updates the viewer's cached `(evidence, outcome)` pair, reusing the
    /// existing buffers for returning viewers.
    fn remember(
        viewers: &mut FnvMap<String, ViewerState>,
        viewer: &str,
        evidence: &[Option<Value>],
        outcome: &Outcome,
    ) {
        match viewers.get_mut(viewer) {
            Some(state) => {
                state.evidence.clear();
                state.evidence.extend_from_slice(evidence);
                state.outcome.clone_from(outcome);
            }
            None => {
                viewers.insert(
                    viewer.to_string(),
                    ViewerState {
                        evidence: evidence.to_vec(),
                        outcome: outcome.clone(),
                    },
                );
            }
        }
    }

    /// Inserts `(scratch_key, outcome)` into the memo set starting at
    /// `base`, filling an empty way or evicting the set's least recently
    /// touched slot. Occupied victims keep their buffers (`clone_from`), so
    /// a steady-state insert does not allocate.
    fn memoize(&mut self, base: usize, outcome: &Outcome) {
        if self.memo.is_empty() {
            self.memo.resize_with(MEMO_CAPACITY, || None);
        }
        let victim = (base..base + MEMO_WAYS)
            .min_by_key(|&w| self.memo[w].as_ref().map_or(0, |s| s.touched))
            .expect("set is non-empty");
        match &mut self.memo[victim] {
            Some(slot) => {
                slot.key.clone_from(&self.scratch_key);
                slot.outcome.clone_from(outcome);
                slot.touched = self.tick;
            }
            empty => {
                *empty = Some(MemoSlot {
                    key: self.scratch_key.clone(),
                    outcome: outcome.clone(),
                    touched: self.tick,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpnet::samples::{chain_net, figure2_net};

    #[test]
    fn matches_full_sweep_on_figure2() {
        let (net, vars) = figure2_net();
        let mut engine = ReconfigEngine::new();
        let mut ev = PartialAssignment::empty(net.len());
        assert_eq!(
            engine.completion(&net, "a", &ev),
            net.optimal_completion(&ev)
        );
        ev.set(vars[0], Value(1));
        assert_eq!(
            engine.completion(&net, "a", &ev),
            net.optimal_completion(&ev)
        );
        ev.set(vars[2], Value(0));
        assert_eq!(
            engine.completion(&net, "a", &ev),
            net.optimal_completion(&ev)
        );
        ev.clear(vars[0]);
        assert_eq!(
            engine.completion(&net, "a", &ev),
            net.optimal_completion(&ev)
        );
        let s = engine.stats();
        assert_eq!(s.full_sweeps, 1, "only the first query sweeps fully");
        assert_eq!(s.incremental, 3);
    }

    #[test]
    fn memo_serves_repeated_evidence() {
        let net = chain_net(12, 2, 7);
        let mut engine = ReconfigEngine::new();
        let mut ev = PartialAssignment::empty(net.len());
        ev.set(VarId(3), Value(1));
        let first = engine.completion(&net, "a", &ev);
        let second = engine.completion(&net, "b", &ev);
        assert_eq!(first, second);
        let s = engine.stats();
        assert_eq!(s.memo_hits, 1);
        assert_eq!(s.memo_misses, 1);
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
    }

    #[test]
    fn revision_bump_invalidates() {
        let mut net = chain_net(8, 2, 9);
        let mut engine = ReconfigEngine::new();
        let ev = PartialAssignment::empty(net.len());
        let before = engine.completion(&net, "a", &ev);
        // Flip the root's unconditional preference: the cached outcome is
        // stale for the whole chain.
        let flipped = vec![Value(1 - before[0].0), Value(before[0].0)];
        net.set_unconditional(VarId(0), &flipped).unwrap();
        let after = engine.completion(&net, "a", &ev);
        assert_eq!(after, net.optimal_completion(&ev));
        assert_ne!(before[0], after[0]);
        assert_eq!(engine.stats().invalidations, 1);
        assert_eq!(engine.stats().full_sweeps, 2, "no stale incremental path");
    }

    #[test]
    fn clones_do_not_share_cache_identity() {
        let net = chain_net(6, 2, 11);
        let clone = net.clone();
        assert_ne!(net.uid(), clone.uid());
        let mut engine = ReconfigEngine::new();
        let ev = PartialAssignment::empty(net.len());
        engine.completion(&net, "a", &ev);
        // Querying the clone must not reuse the original's caches.
        engine.completion(&clone, "a", &ev);
        assert_eq!(engine.stats().invalidations, 1);
    }
}
