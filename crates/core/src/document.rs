//! The multimedia document model (paper, Sections 4 and 5.1).
//!
//! A multimedia document is a hierarchical, tree-like structure of
//! *components*: internal nodes are `CompositeMultimediaComponent`s (which
//! can only be *presented* or *hidden* — a binary domain), leaves are
//! `PrimitiveMultimediaComponent`s whose domain is an arbitrary list of
//! `MMPresentation` alternatives (flat image, segmented image, icon, text,
//! audio clip, hidden, ...). The document carries a [`CpNet`] whose variable
//! `i` is component `i`; the CP-net's conditional preference tables encode
//! the *author's* knowledge of how the content should be shown.
//!
//! Construction keeps the two structures in lock-step: adding a component
//! adds a CP-net variable with a sensible default preference (prefer the
//! first form when the hierarchy parent is presented, prefer the hidden form
//! — if one exists — when the parent is hidden); authors then override rows
//! through [`MultimediaDocument::author_parents`] and
//! [`MultimediaDocument::author_preference`].

use crate::cpnet::{CpNet, PreferenceNet, Value, VarId};
use crate::error::{CoreError, Result};

/// Identifier of a component within one document (a dense index; component
/// `i` is CP-net variable `i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub u32);

impl ComponentId {
    #[inline]
    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }

    /// The CP-net variable carrying this component's presentation domain.
    #[inline]
    pub fn var(self) -> VarId {
        VarId(self.0)
    }
}

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cmp{}", self.0)
    }
}

/// Where a component's actual media bytes live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MediaRef {
    /// No payload (structural nodes, test results rendered from metadata).
    None,
    /// Payload carried inline with the document.
    Inline(Vec<u8>),
    /// Payload stored in the multimedia database; the id is the row id in
    /// the per-type object table (see `rcmo-mediadb`).
    Stored {
        /// Media type name as registered in `MULTIMEDIA_OBJECTS_TABLE`.
        media_type: String,
        /// Row id within that type's object table.
        object_id: u64,
    },
}

impl MediaRef {
    /// Size of inline payload, if any.
    pub fn inline_len(&self) -> usize {
        match self {
            MediaRef::Inline(b) => b.len(),
            _ => 0,
        }
    }
}

/// The kind of one presentation alternative (`MMPresentation` subclasses in
/// the paper's Figure 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormKind {
    /// The component is not shown at all.
    Hidden,
    /// Shown as a small icon that can be expanded.
    Icon,
    /// Full flat rendering (plain image / full text / full player).
    Flat,
    /// Segmented rendering of an image.
    Segmented,
    /// Image at a reduced resolution level (0 = full resolution; each level
    /// halves both dimensions — see `rcmo-codec`).
    Resolution(u8),
    /// Text rendering (e.g. a transcript of an audio fragment).
    Text,
    /// Audio playback.
    Audio,
    /// Anything else; the string names the renderer.
    Custom(String),
}

/// One presentation alternative of a component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PresentationForm {
    /// Display name ("flat", "segmented", "icon", ...).
    pub name: String,
    /// Renderer category.
    pub kind: FormKind,
    /// Bytes that must reach the client to render this form (drives the
    /// prefetch planner and the bandwidth-aware presentation policy).
    pub cost_bytes: u64,
}

impl PresentationForm {
    /// Convenience constructor.
    pub fn new(name: &str, kind: FormKind, cost_bytes: u64) -> Self {
        PresentationForm {
            name: name.to_string(),
            kind,
            cost_bytes,
        }
    }

    /// The canonical hidden form (zero transfer cost).
    pub fn hidden() -> Self {
        PresentationForm::new("hidden", FormKind::Hidden, 0)
    }
}

/// Composite vs. primitive (Figure 6's two `MultimediaComponent` subclasses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentKind {
    /// Internal node; binary domain (presented / hidden).
    Composite,
    /// Leaf node; arbitrary presentation domain.
    Primitive,
}

/// Domain index of a composite's "presented" value.
pub const COMPOSITE_PRESENTED: Value = Value(0);
/// Domain index of a composite's "hidden" value.
pub const COMPOSITE_HIDDEN: Value = Value(1);

#[derive(Debug, Clone)]
struct ComponentNode {
    name: String,
    parent: Option<ComponentId>,
    children: Vec<ComponentId>,
    kind: ComponentKind,
    media: MediaRef,
    forms: Vec<PresentationForm>,
}

/// A variable of the document's CP-net that is *not* a component: the
/// derived variables created when a viewer performs an operation on a
/// component (paper, Section 4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivedVar {
    /// The CP-net variable id.
    pub var: VarId,
    /// The component the operation was performed on.
    pub component: ComponentId,
    /// The operation name ("segmentation", "zoom", ...).
    pub operation: String,
    /// The component's form index at the time of the operation (the
    /// trigger value of the derived CPT).
    pub trigger_form: usize,
}

/// A hierarchically structured multimedia document plus its author-preference
/// CP-network (the `MultimediaDocument` class of Figure 6).
#[derive(Debug, Clone)]
pub struct MultimediaDocument {
    title: String,
    nodes: Vec<ComponentNode>,
    net: CpNet,
    derived: Vec<DerivedVar>,
}

impl MultimediaDocument {
    /// Creates a document whose root is a composite named `title`.
    ///
    /// The root is unconditionally preferred presented.
    pub fn new(title: &str) -> Self {
        let mut net = CpNet::new();
        let root_var = net
            .add_variable(title, &["presented", "hidden"])
            .expect("binary domain is valid");
        net.set_unconditional(root_var, &[COMPOSITE_PRESENTED, COMPOSITE_HIDDEN])
            .expect("identity order is valid");
        MultimediaDocument {
            title: title.to_string(),
            nodes: vec![ComponentNode {
                name: title.to_string(),
                parent: None,
                children: Vec::new(),
                kind: ComponentKind::Composite,
                media: MediaRef::None,
                forms: vec![
                    PresentationForm::new("presented", FormKind::Flat, 0),
                    PresentationForm::hidden(),
                ],
            }],
            net,
            derived: Vec::new(),
        }
    }

    /// The document title (the root component's name).
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The root component.
    pub fn root(&self) -> ComponentId {
        ComponentId(0)
    }

    /// Number of components (excluding derived operation variables).
    pub fn num_components(&self) -> usize {
        self.nodes.len()
    }

    /// The underlying CP-network (components plus derived variables).
    pub fn net(&self) -> &CpNet {
        &self.net
    }

    /// Derived (operation) variables currently merged into the global net.
    pub fn derived_vars(&self) -> &[DerivedVar] {
        &self.derived
    }

    fn node(&self, c: ComponentId) -> Result<&ComponentNode> {
        self.nodes
            .get(c.idx())
            .ok_or(CoreError::UnknownComponent(c.0))
    }

    /// Component display name.
    pub fn name(&self, c: ComponentId) -> Result<&str> {
        Ok(&self.node(c)?.name)
    }

    /// Composite or primitive.
    pub fn kind(&self, c: ComponentId) -> Result<ComponentKind> {
        Ok(self.node(c)?.kind)
    }

    /// The component's media payload reference.
    pub fn media(&self, c: ComponentId) -> Result<&MediaRef> {
        Ok(&self.node(c)?.media)
    }

    /// Presentation alternatives (the component's domain).
    pub fn forms(&self, c: ComponentId) -> Result<&[PresentationForm]> {
        Ok(&self.node(c)?.forms)
    }

    /// Children in insertion order.
    pub fn children(&self, c: ComponentId) -> Result<&[ComponentId]> {
        Ok(&self.node(c)?.children)
    }

    /// The hierarchy parent (`None` for the root).
    pub fn parent(&self, c: ComponentId) -> Result<Option<ComponentId>> {
        Ok(self.node(c)?.parent)
    }

    /// Index of the component's hidden form, if it has one.
    pub fn hidden_form(&self, c: ComponentId) -> Result<Option<usize>> {
        Ok(self
            .node(c)?
            .forms
            .iter()
            .position(|f| f.kind == FormKind::Hidden))
    }

    /// Looks a component up by name (first match in id order).
    pub fn component_by_name(&self, name: &str) -> Option<ComponentId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| ComponentId(i as u32))
    }

    /// Depth-first (pre-order) traversal from the root.
    pub fn iter_depth_first(&self) -> Vec<ComponentId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root()];
        while let Some(c) = stack.pop() {
            out.push(c);
            let node = &self.nodes[c.idx()];
            for &child in node.children.iter().rev() {
                stack.push(child);
            }
        }
        out
    }

    /// Adds an internal (composite) component under `parent`.
    pub fn add_composite(&mut self, parent: ComponentId, name: &str) -> Result<ComponentId> {
        self.add_node(
            parent,
            name,
            ComponentKind::Composite,
            MediaRef::None,
            vec![
                PresentationForm::new("presented", FormKind::Flat, 0),
                PresentationForm::hidden(),
            ],
        )
    }

    /// Adds a leaf (primitive) component under `parent` with the given
    /// presentation alternatives (at least one).
    pub fn add_primitive(
        &mut self,
        parent: ComponentId,
        name: &str,
        media: MediaRef,
        forms: Vec<PresentationForm>,
    ) -> Result<ComponentId> {
        if forms.is_empty() {
            return Err(CoreError::BadStructure(format!(
                "primitive '{name}' needs at least one presentation form"
            )));
        }
        self.add_node(parent, name, ComponentKind::Primitive, media, forms)
    }

    fn add_node(
        &mut self,
        parent: ComponentId,
        name: &str,
        kind: ComponentKind,
        media: MediaRef,
        forms: Vec<PresentationForm>,
    ) -> Result<ComponentId> {
        let pnode = self.node(parent)?;
        if pnode.kind != ComponentKind::Composite {
            return Err(CoreError::BadStructure(format!(
                "cannot add '{name}' under primitive component '{}'",
                pnode.name
            )));
        }
        if !self.derived.is_empty() {
            // Keeping component ids == variable ids requires components to
            // precede derived variables; the presentation engine re-merges
            // derived variables after structural edits.
            return Err(CoreError::UpdateRejected(
                "flush derived variables before structural edits (see PresentationEngine::rebase)"
                    .to_string(),
            ));
        }
        let id = ComponentId(self.nodes.len() as u32);
        let form_names: Vec<&str> = forms.iter().map(|f| f.name.as_str()).collect();
        let var = self.net.add_variable(name, &form_names)?;
        debug_assert_eq!(var, id.var());
        // Default author preference: condition on the hierarchy parent.
        self.net.set_parents(var, &[parent.var()])?;
        let hidden = forms.iter().position(|f| f.kind == FormKind::Hidden);
        let ndom = forms.len() as u16;
        let default_order: Vec<Value> = (0..ndom).map(Value).collect();
        let hidden_first: Vec<Value> = match hidden {
            Some(h) => {
                let mut order = vec![Value(h as u16)];
                order.extend((0..ndom).map(Value).filter(|v| v.idx() != h));
                order
            }
            None => default_order.clone(),
        };
        self.net
            .set_preference(var, &[(parent.var(), COMPOSITE_PRESENTED)], &default_order)?;
        self.net
            .set_preference(var, &[(parent.var(), COMPOSITE_HIDDEN)], &hidden_first)?;
        self.nodes.push(ComponentNode {
            name: name.to_string(),
            parent: Some(parent),
            children: Vec::new(),
            kind,
            media,
            forms,
        });
        self.nodes[parent.idx()].children.push(id);
        Ok(id)
    }

    /// Re-authors the CP-net parent set of `c` (which other components'
    /// presentation affects the preference over `c`'s forms). Resets `c`'s
    /// CPT rows to defaults; author every row with
    /// [`author_preference`](Self::author_preference) afterwards.
    pub fn author_parents(&mut self, c: ComponentId, parents: &[ComponentId]) -> Result<()> {
        self.node(c)?;
        for &p in parents {
            self.node(p)?;
        }
        let vars: Vec<VarId> = parents.iter().map(|p| p.var()).collect();
        self.net.set_parents(c.var(), &vars)?;
        Ok(())
    }

    /// Authors one CPT row: under `assignment` (form index per CP-net parent
    /// component), the preference over `c`'s forms is `order` (form indices,
    /// most preferred first).
    pub fn author_preference(
        &mut self,
        c: ComponentId,
        assignment: &[(ComponentId, usize)],
        order: &[usize],
    ) -> Result<()> {
        self.node(c)?;
        let pairs: Vec<(VarId, Value)> = assignment
            .iter()
            .map(|&(p, form)| (p.var(), Value(form as u16)))
            .collect();
        let values: Vec<Value> = order.iter().map(|&f| Value(f as u16)).collect();
        if pairs.is_empty() {
            self.net.set_unconditional(c.var(), &values)
        } else {
            self.net.set_preference(c.var(), &pairs, &values)
        }
    }

    /// Removes a leaf component (no children), fixing its value to
    /// `fix_form` in any CPT that conditioned on it (Section 4.2's removal
    /// policy). All component ids greater than `c` shift down by one; the
    /// returned vector maps old ids to new ids (`None` for the removed one).
    pub fn remove_component(
        &mut self,
        c: ComponentId,
        fix_form: usize,
    ) -> Result<Vec<Option<ComponentId>>> {
        let node = self.node(c)?;
        if node.parent.is_none() {
            return Err(CoreError::UpdateRejected(
                "cannot remove the document root".to_string(),
            ));
        }
        if !node.children.is_empty() {
            return Err(CoreError::UpdateRejected(format!(
                "component '{}' still has {} children",
                node.name,
                node.children.len()
            )));
        }
        if !self.derived.is_empty() {
            return Err(CoreError::UpdateRejected(
                "flush derived variables before structural edits".to_string(),
            ));
        }
        if fix_form >= node.forms.len() {
            return Err(CoreError::ValueOutOfRange {
                var: c.0,
                value: fix_form as u16,
                domain: node.forms.len(),
            });
        }
        let parent = node.parent.expect("checked above");
        self.net.remove_variable(c.var(), Value(fix_form as u16))?;
        self.nodes[parent.idx()].children.retain(|&ch| ch != c);
        self.nodes.remove(c.idx());
        let removed = c.idx();
        let shift = |id: ComponentId| -> ComponentId {
            if id.idx() > removed {
                ComponentId(id.0 - 1)
            } else {
                id
            }
        };
        for n in &mut self.nodes {
            if let Some(p) = n.parent {
                n.parent = Some(shift(p));
            }
            for ch in &mut n.children {
                *ch = shift(*ch);
            }
        }
        let old_len = self.nodes.len() + 1;
        Ok((0..old_len as u32)
            .map(|i| {
                if i as usize == removed {
                    None
                } else {
                    Some(shift(ComponentId(i)))
                }
            })
            .collect())
    }

    /// Merges a derived operation variable into the **global** CP-net
    /// (Section 4.2: the viewer "decided the result of her operation
    /// emphasises something important to most potential viewers").
    ///
    /// Returns the new variable's id. The variable prefers the operated form
    /// exactly when component `c` is presented in `trigger_form`.
    pub fn add_global_operation(
        &mut self,
        c: ComponentId,
        trigger_form: usize,
        operation: &str,
    ) -> Result<VarId> {
        let node = self.node(c)?;
        if trigger_form >= node.forms.len() {
            return Err(CoreError::ValueOutOfRange {
                var: c.0,
                value: trigger_form as u16,
                domain: node.forms.len(),
            });
        }
        let name = format!("{}'{}", node.name, operation);
        let applied = format!("{operation} applied");
        let var = self.net.add_derived_variable(
            c.var(),
            Value(trigger_form as u16),
            &name,
            &applied,
            "plain",
        )?;
        self.derived.push(DerivedVar {
            var,
            component: c,
            operation: operation.to_string(),
            trigger_form,
        });
        Ok(var)
    }

    /// Removes every derived (operation) variable from the global net, in
    /// reverse insertion order. Used before structural edits and when the
    /// interaction server consolidates a session.
    pub fn drop_derived_variables(&mut self) -> Result<()> {
        while let Some(d) = self.derived.pop() {
            // Derived variables are always sinks (nothing conditions on
            // them), so the fix value is irrelevant.
            self.net.remove_variable(d.var, Value(0))?;
        }
        Ok(())
    }

    /// Adds a *tuning variable* (paper, Section 4.4, first alternative): a
    /// free CP-net variable that is not a component — e.g. measured
    /// bandwidth bands or client buffer classes — on which component
    /// preferences can then be conditioned via
    /// [`author_parents_raw`](Self::author_parents_raw). Its unconditional
    /// preference order is the given level order (first = assumed default).
    pub fn add_tuning_variable(&mut self, name: &str, levels: &[&str]) -> Result<VarId> {
        let var = self.net.add_variable(name, levels)?;
        let order: Vec<Value> = (0..levels.len() as u16).map(Value).collect();
        self.net.set_unconditional(var, &order)?;
        self.derived.push(DerivedVar {
            var,
            component: self.root(),
            operation: format!("tuning:{name}"),
            trigger_form: 0,
        });
        Ok(var)
    }

    /// Automatically conditions every expensive component on a tuning
    /// variable — the paper's §4.4 first alternative, where "model extension
    /// can be done automatically, according to some predefined ordering
    /// templates".
    ///
    /// For each primitive whose cheapest↔dearest form spread exceeds
    /// `min_spread_bytes`, the component's CPT is extended with `tuning` as
    /// an additional parent:
    /// * under tuning level 0 (the unconstrained band) every row keeps the
    ///   author's original ranking;
    /// * under each constrained level `k ≥ 1`, *visible* forms are
    ///   reordered by transfer cost ascending (ties broken by the author's
    ///   rank) and hidden forms come last — the template degrades to cheaper
    ///   renditions before suppressing content altogether.
    ///
    /// Returns the components that were re-authored.
    pub fn auto_condition_on_tuning(
        &mut self,
        tuning: VarId,
        min_spread_bytes: u64,
    ) -> Result<Vec<ComponentId>> {
        if tuning.idx() < self.num_components() || tuning.idx() >= self.net.len() {
            return Err(CoreError::UnknownVariable(tuning.0));
        }
        let levels = self.net.domain_size(tuning);
        let mut touched = Vec::new();
        for i in 0..self.nodes.len() {
            let c = ComponentId(i as u32);
            if self.nodes[i].kind != ComponentKind::Primitive {
                continue;
            }
            let costs: Vec<u64> = self.nodes[i].forms.iter().map(|f| f.cost_bytes).collect();
            let spread = costs.iter().max().unwrap_or(&0) - costs.iter().min().unwrap_or(&0);
            if spread < min_spread_bytes {
                continue;
            }
            // Snapshot the existing CPT.
            let old_parents = self.net.parents(c.var()).to_vec();
            if old_parents.contains(&tuning) {
                continue; // already conditioned
            }
            let old_table = self.net.table(c.var())?.clone_rows();
            let mut new_parents = old_parents.clone();
            new_parents.push(tuning);
            self.net.set_parents(c.var(), &new_parents)?;
            for (assignment, ranking) in &old_table {
                // Level 0: the author's order, untouched.
                let mut pairs: Vec<(VarId, Value)> = old_parents
                    .iter()
                    .copied()
                    .zip(assignment.iter().copied())
                    .collect();
                pairs.push((tuning, Value(0)));
                self.net.set_preference(c.var(), &pairs, ranking.order())?;
                // Constrained levels: cheapest visible form first (author
                // rank as tiebreak); hiding is the last resort.
                let hidden: Vec<bool> = self.nodes[i]
                    .forms
                    .iter()
                    .map(|f| f.kind == FormKind::Hidden)
                    .collect();
                let mut by_cost: Vec<Value> = ranking.order().to_vec();
                by_cost.sort_by_key(|v| (hidden[v.idx()], costs[v.idx()], ranking.rank_of(*v)));
                for level in 1..levels as u16 {
                    let mut pairs: Vec<(VarId, Value)> = old_parents
                        .iter()
                        .copied()
                        .zip(assignment.iter().copied())
                        .collect();
                    pairs.push((tuning, Value(level)));
                    self.net.set_preference(c.var(), &pairs, &by_cost)?;
                }
            }
            touched.push(c);
        }
        Ok(touched)
    }

    /// Raw variant of [`author_parents`](Self::author_parents) accepting any
    /// CP-net variables (components, derived variables, tuning variables).
    pub fn author_parents_raw(&mut self, c: ComponentId, parents: &[VarId]) -> Result<()> {
        self.node(c)?;
        self.net.set_parents(c.var(), parents)
    }

    /// Raw variant of [`author_preference`](Self::author_preference) over
    /// CP-net variables and values.
    pub fn author_preference_raw(
        &mut self,
        c: ComponentId,
        assignment: &[(VarId, Value)],
        order: &[Value],
    ) -> Result<()> {
        self.node(c)?;
        if assignment.is_empty() {
            self.net.set_unconditional(c.var(), order)
        } else {
            self.net.set_preference(c.var(), assignment, order)
        }
    }

    /// Total inline payload bytes across all components.
    pub fn total_inline_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.media.inline_len()).sum()
    }

    /// Sum of the worst-case (most expensive form) transfer cost per
    /// component — an upper bound used to size client buffers.
    pub fn max_transfer_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.forms.iter().map(|f| f.cost_bytes).max().unwrap_or(0))
            .sum()
    }

    /// Validates structural invariants and the CP-net:
    /// components form a tree rooted at 0; composite domains are exactly
    /// presented/hidden; every component's CP-net domain size equals its
    /// form count; the net validates.
    pub fn validate(&self) -> Result<()> {
        if self.nodes.is_empty() {
            return Err(CoreError::BadStructure("document has no root".to_string()));
        }
        if self.nodes[0].parent.is_some() {
            return Err(CoreError::BadStructure("root has a parent".to_string()));
        }
        let mut seen = vec![false; self.nodes.len()];
        for c in self.iter_depth_first() {
            if seen[c.idx()] {
                return Err(CoreError::BadStructure(format!(
                    "component {c} reachable twice"
                )));
            }
            seen[c.idx()] = true;
        }
        if seen.iter().any(|&s| !s) {
            return Err(CoreError::BadStructure(
                "unreachable components exist".to_string(),
            ));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            let c = ComponentId(i as u32);
            match n.kind {
                ComponentKind::Composite => {
                    if n.forms.len() != 2
                        || n.forms[1].kind != FormKind::Hidden
                        || n.forms[0].kind == FormKind::Hidden
                    {
                        return Err(CoreError::BadStructure(format!(
                            "composite '{}' must have exactly presented+hidden forms",
                            n.name
                        )));
                    }
                }
                ComponentKind::Primitive => {
                    if !n.children.is_empty() {
                        return Err(CoreError::BadStructure(format!(
                            "primitive '{}' has children",
                            n.name
                        )));
                    }
                }
            }
            if self.net.domain_size(c.var()) != n.forms.len() {
                return Err(CoreError::BadStructure(format!(
                    "component '{}' has {} forms but CP-net domain {}",
                    n.name,
                    n.forms.len(),
                    self.net.domain_size(c.var())
                )));
            }
            for ch in &n.children {
                if self.node(*ch)?.parent != Some(c) {
                    return Err(CoreError::BadStructure(format!(
                        "child link {ch} does not point back to {c}"
                    )));
                }
            }
        }
        self.net.validate()
    }

    /// Renders the hierarchy as an indented outline (the left pane of the
    /// paper's Figure 5 client GUI).
    pub fn outline(&self) -> String {
        let mut out = String::new();
        self.outline_rec(self.root(), 0, &mut out);
        out
    }

    fn outline_rec(&self, c: ComponentId, depth: usize, out: &mut String) {
        let node = &self.nodes[c.idx()];
        for _ in 0..depth {
            out.push_str("  ");
        }
        let tag = match node.kind {
            ComponentKind::Composite => "+",
            ComponentKind::Primitive => "-",
        };
        out.push_str(&format!(
            "{tag} {} ({} forms)\n",
            node.name,
            node.forms.len()
        ));
        for &ch in &node.children {
            self.outline_rec(ch, depth + 1, out);
        }
    }

    /// Serialises the document (structure + CP-net) to bytes for BLOB
    /// storage in the multimedia database.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(1024);
        buf.extend_from_slice(b"MMD1");
        write_str(&mut buf, &self.title);
        buf.extend_from_slice(&(self.nodes.len() as u32).to_le_bytes());
        for n in &self.nodes {
            write_str(&mut buf, &n.name);
            buf.extend_from_slice(&n.parent.map(|p| p.0 + 1).unwrap_or(0).to_le_bytes());
            buf.push(match n.kind {
                ComponentKind::Composite => 0,
                ComponentKind::Primitive => 1,
            });
            match &n.media {
                MediaRef::None => buf.push(0),
                MediaRef::Inline(bytes) => {
                    buf.push(1);
                    buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                    buf.extend_from_slice(bytes);
                }
                MediaRef::Stored {
                    media_type,
                    object_id,
                } => {
                    buf.push(2);
                    write_str(&mut buf, media_type);
                    buf.extend_from_slice(&object_id.to_le_bytes());
                }
            }
            buf.extend_from_slice(&(n.forms.len() as u16).to_le_bytes());
            for f in &n.forms {
                write_str(&mut buf, &f.name);
                write_form_kind(&mut buf, &f.kind);
                buf.extend_from_slice(&f.cost_bytes.to_le_bytes());
            }
        }
        let net_bytes = self.net.to_bytes();
        buf.extend_from_slice(&(net_bytes.len() as u32).to_le_bytes());
        buf.extend_from_slice(&net_bytes);
        buf.extend_from_slice(&(self.derived.len() as u32).to_le_bytes());
        for d in &self.derived {
            buf.extend_from_slice(&d.var.0.to_le_bytes());
            buf.extend_from_slice(&d.component.0.to_le_bytes());
            write_str(&mut buf, &d.operation);
            buf.extend_from_slice(&(d.trigger_form as u32).to_le_bytes());
        }
        buf
    }

    /// Reconstructs a document serialised with [`to_bytes`](Self::to_bytes)
    /// and re-validates it.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        if r.take(4)? != b"MMD1" {
            return Err(CoreError::Codec(
                "bad magic; not an MMD1 stream".to_string(),
            ));
        }
        let title = r.str()?;
        let ncomponents = r.u32()? as usize;
        let mut nodes = Vec::with_capacity(ncomponents);
        for _ in 0..ncomponents {
            let name = r.str()?;
            let parent_raw = r.u32()?;
            let parent = if parent_raw == 0 {
                None
            } else {
                Some(ComponentId(parent_raw - 1))
            };
            let kind = match r.u8()? {
                0 => ComponentKind::Composite,
                1 => ComponentKind::Primitive,
                k => return Err(CoreError::Codec(format!("bad component kind {k}"))),
            };
            let media = match r.u8()? {
                0 => MediaRef::None,
                1 => {
                    let len = r.u32()? as usize;
                    MediaRef::Inline(r.take(len)?.to_vec())
                }
                2 => MediaRef::Stored {
                    media_type: r.str()?,
                    object_id: r.u64()?,
                },
                m => return Err(CoreError::Codec(format!("bad media tag {m}"))),
            };
            let nforms = r.u16()? as usize;
            let mut forms = Vec::with_capacity(nforms);
            for _ in 0..nforms {
                let fname = r.str()?;
                let kind = read_form_kind(&mut r)?;
                let cost = r.u64()?;
                forms.push(PresentationForm {
                    name: fname,
                    kind,
                    cost_bytes: cost,
                });
            }
            nodes.push(ComponentNode {
                name,
                parent,
                children: Vec::new(),
                kind,
                media,
                forms,
            });
        }
        // Rebuild child lists from parent links, preserving id order.
        for i in 0..nodes.len() {
            if let Some(p) = nodes[i].parent {
                if p.idx() >= nodes.len() {
                    return Err(CoreError::Codec(format!("dangling parent {p}")));
                }
                let child = ComponentId(i as u32);
                nodes[p.idx()].children.push(child);
            }
        }
        let net_len = r.u32()? as usize;
        let net = CpNet::from_bytes(r.take(net_len)?)?;
        let nderived = r.u32()? as usize;
        let mut derived = Vec::with_capacity(nderived);
        for _ in 0..nderived {
            let var = VarId(r.u32()?);
            let component = ComponentId(r.u32()?);
            let operation = r.str()?;
            let trigger_form = r.u32()? as usize;
            derived.push(DerivedVar {
                var,
                component,
                operation,
                trigger_form,
            });
        }
        r.expect_end()?;
        let doc = MultimediaDocument {
            title,
            nodes,
            net,
            derived,
        };
        doc.validate()?;
        Ok(doc)
    }
}

fn write_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u16).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn write_form_kind(buf: &mut Vec<u8>, kind: &FormKind) {
    match kind {
        FormKind::Hidden => buf.push(0),
        FormKind::Icon => buf.push(1),
        FormKind::Flat => buf.push(2),
        FormKind::Segmented => buf.push(3),
        FormKind::Resolution(level) => {
            buf.push(4);
            buf.push(*level);
        }
        FormKind::Text => buf.push(5),
        FormKind::Audio => buf.push(6),
        FormKind::Custom(name) => {
            buf.push(7);
            write_str(buf, name);
        }
    }
}

fn read_form_kind(r: &mut ByteReader<'_>) -> Result<FormKind> {
    Ok(match r.u8()? {
        0 => FormKind::Hidden,
        1 => FormKind::Icon,
        2 => FormKind::Flat,
        3 => FormKind::Segmented,
        4 => FormKind::Resolution(r.u8()?),
        5 => FormKind::Text,
        6 => FormKind::Audio,
        7 => FormKind::Custom(r.str()?),
        k => return Err(CoreError::Codec(format!("bad form kind {k}"))),
    })
}

/// Minimal little-endian byte reader shared by the document codec.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(CoreError::Codec(format!(
                "unexpected end of stream at offset {}",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    fn str(&mut self) -> Result<String> {
        let len = self.u16()? as usize;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| CoreError::Codec("invalid UTF-8".to_string()))
    }
    fn expect_end(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(CoreError::Codec(format!(
                "{} trailing bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> (MultimediaDocument, ComponentId, ComponentId, ComponentId) {
        let mut doc = MultimediaDocument::new("Patient record");
        let images = doc.add_composite(doc.root(), "Images").unwrap();
        let ct = doc
            .add_primitive(
                images,
                "CT image",
                MediaRef::Stored {
                    media_type: "Image".to_string(),
                    object_id: 7,
                },
                vec![
                    PresentationForm::new("flat", FormKind::Flat, 512 * 1024),
                    PresentationForm::new("segmented", FormKind::Segmented, 600 * 1024),
                    PresentationForm::hidden(),
                ],
            )
            .unwrap();
        let xray = doc
            .add_primitive(
                images,
                "X-ray",
                MediaRef::None,
                vec![
                    PresentationForm::new("flat", FormKind::Flat, 256 * 1024),
                    PresentationForm::new("icon", FormKind::Icon, 4 * 1024),
                    PresentationForm::hidden(),
                ],
            )
            .unwrap();
        (doc, images, ct, xray)
    }

    #[test]
    fn new_document_validates() {
        let doc = MultimediaDocument::new("doc");
        doc.validate().unwrap();
        assert_eq!(doc.num_components(), 1);
        assert_eq!(doc.kind(doc.root()).unwrap(), ComponentKind::Composite);
    }

    #[test]
    fn build_hierarchy_and_validate() {
        let (doc, images, ct, xray) = sample_doc();
        doc.validate().unwrap();
        assert_eq!(doc.children(doc.root()).unwrap(), &[images]);
        assert_eq!(doc.children(images).unwrap(), &[ct, xray]);
        assert_eq!(doc.parent(ct).unwrap(), Some(images));
        assert_eq!(doc.num_components(), 4);
        assert_eq!(doc.iter_depth_first(), vec![doc.root(), images, ct, xray]);
    }

    #[test]
    fn cannot_add_under_primitive() {
        let (mut doc, _, ct, _) = sample_doc();
        assert!(matches!(
            doc.add_composite(ct, "bad"),
            Err(CoreError::BadStructure(_))
        ));
    }

    #[test]
    fn primitive_needs_forms() {
        let mut doc = MultimediaDocument::new("doc");
        assert!(doc
            .add_primitive(doc.root(), "x", MediaRef::None, vec![])
            .is_err());
    }

    #[test]
    fn default_preference_hides_under_hidden_parent() {
        let (doc, images, ct, _) = sample_doc();
        // Force the Images composite hidden; the CT's best response is its
        // hidden form by the default authoring policy.
        let mut ev = crate::cpnet::PartialAssignment::empty(doc.num_components());
        ev.set(images.var(), COMPOSITE_HIDDEN);
        let o = doc.net().optimal_completion(&ev);
        let hidden = doc.hidden_form(ct).unwrap().unwrap();
        assert_eq!(o[ct.var().idx()], Value(hidden as u16));
    }

    #[test]
    fn author_preference_overrides_default() {
        let (mut doc, images, ct, xray) = sample_doc();
        // Author: when the CT is segmented, prefer the X-ray iconified.
        doc.author_parents(xray, &[images, ct]).unwrap();
        for ct_form in 0..3 {
            let order: &[usize] = if ct_form == 1 { &[1, 0, 2] } else { &[0, 1, 2] };
            doc.author_preference(xray, &[(images, 0), (ct, ct_form)], order)
                .unwrap();
            doc.author_preference(xray, &[(images, 1), (ct, ct_form)], &[2, 0, 1])
                .unwrap();
        }
        doc.validate().unwrap();
        let mut ev = crate::cpnet::PartialAssignment::empty(doc.num_components());
        ev.set(ct.var(), Value(1)); // viewer chose segmented CT
        let o = doc.net().optimal_completion(&ev);
        assert_eq!(o[xray.var().idx()], Value(1), "x-ray iconified");
    }

    #[test]
    fn remove_leaf_component_shifts_ids() {
        let (mut doc, images, ct, xray) = sample_doc();
        let remap = doc.remove_component(ct, 2).unwrap();
        doc.validate().unwrap();
        assert_eq!(doc.num_components(), 3);
        assert_eq!(remap[ct.idx()], None);
        assert_eq!(remap[xray.idx()], Some(ComponentId(xray.0 - 1)));
        assert_eq!(remap[images.idx()], Some(images));
        let new_xray = remap[xray.idx()].unwrap();
        assert_eq!(doc.name(new_xray).unwrap(), "X-ray");
        assert_eq!(doc.children(images).unwrap(), &[new_xray]);
    }

    #[test]
    fn remove_rejects_root_and_internal() {
        let (mut doc, images, _, _) = sample_doc();
        assert!(doc.remove_component(doc.root(), 0).is_err());
        assert!(doc.remove_component(images, 0).is_err());
    }

    #[test]
    fn global_operation_adds_derived_variable() {
        let (mut doc, _, ct, _) = sample_doc();
        let var = doc.add_global_operation(ct, 0, "segmentation").unwrap();
        assert_eq!(doc.derived_vars().len(), 1);
        assert_eq!(doc.net().len(), 5);
        doc.validate().unwrap();
        // When the CT shows flat (form 0, the trigger), the derived variable
        // prefers "applied".
        let mut ev = crate::cpnet::PartialAssignment::empty(doc.net().len());
        ev.set(ct.var(), Value(0));
        let o = doc.net().optimal_completion(&ev);
        assert_eq!(o[var.idx()], Value(0));
    }

    #[test]
    fn structural_edit_rejected_with_pending_derived_vars() {
        let (mut doc, images, ct, _) = sample_doc();
        doc.add_global_operation(ct, 0, "zoom").unwrap();
        assert!(matches!(
            doc.add_composite(images, "More"),
            Err(CoreError::UpdateRejected(_))
        ));
        assert!(matches!(
            doc.remove_component(ct, 0),
            Err(CoreError::UpdateRejected(_))
        ));
    }

    #[test]
    fn document_roundtrip() {
        let (mut doc, _, ct, _) = sample_doc();
        doc.add_global_operation(ct, 1, "segmentation").unwrap();
        let bytes = doc.to_bytes();
        let back = MultimediaDocument::from_bytes(&bytes).unwrap();
        assert_eq!(back.title(), doc.title());
        assert_eq!(back.num_components(), doc.num_components());
        assert_eq!(back.derived_vars(), doc.derived_vars());
        assert_eq!(back.net().optimal_outcome(), doc.net().optimal_outcome());
        assert_eq!(back.outline(), doc.outline());
    }

    #[test]
    fn roundtrip_rejects_corruption() {
        let (doc, ..) = sample_doc();
        let bytes = doc.to_bytes();
        assert!(MultimediaDocument::from_bytes(&bytes[..10]).is_err());
        let mut broken = bytes.clone();
        broken[0] = b'X';
        assert!(MultimediaDocument::from_bytes(&broken).is_err());
    }

    #[test]
    fn outline_renders_hierarchy() {
        let (doc, ..) = sample_doc();
        let outline = doc.outline();
        assert!(outline.contains("+ Patient record"));
        assert!(outline.contains("  + Images"));
        assert!(outline.contains("    - CT image (3 forms)"));
    }

    #[test]
    fn auto_condition_on_tuning_applies_cost_template() {
        let (mut doc, images, ct, xray) = sample_doc();
        let bw = doc
            .add_tuning_variable("bandwidth", &["high", "low"])
            .unwrap();
        let touched = doc.auto_condition_on_tuning(bw, 10_000).unwrap();
        // Both primitives have a large cost spread; composites never touched.
        assert_eq!(touched, vec![ct, xray]);
        doc.validate().unwrap();
        // High bandwidth: the author's original preference survives.
        let mut ev = crate::cpnet::PartialAssignment::empty(doc.net().len());
        ev.set(bw, Value(0));
        ev.set(images.var(), COMPOSITE_PRESENTED);
        let o = doc.net().optimal_completion(&ev);
        assert_eq!(o[ct.var().idx()], Value(0), "flat CT under high bandwidth");
        // Low bandwidth: the cheapest *visible* form wins; the X-ray's
        // 4 KiB icon beats its 256 KiB flat, and hiding stays last.
        ev.set(bw, Value(1));
        let o = doc.net().optimal_completion(&ev);
        assert_eq!(o[xray.var().idx()], Value(1), "icon under low bandwidth");
        // The CT's cheapest visible form is its flat (512 KiB < segmented).
        assert_eq!(o[ct.var().idx()], Value(0));
        // Re-running is a no-op (already conditioned).
        assert!(doc.auto_condition_on_tuning(bw, 10_000).unwrap().is_empty());
        // A bogus tuning id (a component) is rejected.
        assert!(doc.auto_condition_on_tuning(ct.var(), 0).is_err());
    }

    #[test]
    fn auto_condition_skips_small_spreads() {
        let mut doc = MultimediaDocument::new("doc");
        doc.add_primitive(
            doc.root(),
            "note",
            MediaRef::None,
            vec![
                PresentationForm::new("flat", FormKind::Text, 1_000),
                PresentationForm::new("icon", FormKind::Icon, 900),
            ],
        )
        .unwrap();
        let bw = doc.add_tuning_variable("bw", &["high", "low"]).unwrap();
        assert!(doc.auto_condition_on_tuning(bw, 10_000).unwrap().is_empty());
        doc.validate().unwrap();
    }

    #[test]
    fn transfer_byte_accounting() {
        let (doc, ..) = sample_doc();
        assert_eq!(doc.total_inline_bytes(), 0);
        assert_eq!(doc.max_transfer_bytes(), 600 * 1024 + 256 * 1024);
    }
}
