//! Preference-based pre-fetching of document components (paper, Section 4.4;
//! Domshlak & Shimony, *Predicting Likely Components in CP-net based
//! Multimedia Systems*, TR CS-01-09).
//!
//! Bandwidth and client buffer limits prevent downloading a whole document
//! ahead of time, so the system downloads "components most likely to be
//! requested by the user, using the user's buffer as a cache". The CP-net is
//! qualitative — it orders presentations but assigns no probabilities — so
//! likelihood is *derived from the preference order*: the presentation
//! engine enumerates outcomes from most to least preferred
//! ([`crate::cpnet::CpNet::outcomes_by_preference`]), consistent with the
//! viewer's current choices, and a geometric decay converts ranks into
//! weights (the most preferred completions are the ones a rational author
//! expects viewers to end up in). The weight of a `(component, form)` pair
//! is the decayed mass of outcomes in which the component is shown in that
//! form; a greedy value-per-byte rule then fills the client buffer.

use crate::cpnet::PartialAssignment;
use crate::document::{ComponentId, FormKind, MultimediaDocument};
use crate::error::Result;

/// Tuning knobs of the prefetch planner.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchConfig {
    /// How many of the most preferred outcomes to aggregate over. Larger
    /// values smooth the score landscape at enumeration cost.
    pub top_k: usize,
    /// Geometric decay applied per outcome rank (`weight(rank) = decay^rank`).
    /// Must be in `(0, 1]`; `1.0` weighs the top-k outcomes uniformly.
    pub decay: f64,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            top_k: 32,
            decay: 0.8,
        }
    }
}

/// The prefetch-worthiness of presenting one component in one form.
#[derive(Debug, Clone, PartialEq)]
pub struct FormScore {
    /// The component.
    pub component: ComponentId,
    /// The form index within that component.
    pub form: usize,
    /// Decayed preference mass (higher = more likely to be requested).
    pub score: f64,
    /// Bytes required to deliver this form.
    pub cost_bytes: u64,
}

/// One planned transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetchItem {
    /// The component to prefetch.
    pub component: ComponentId,
    /// The form to prefetch.
    pub form: usize,
    /// The score that earned it a slot.
    pub score: f64,
    /// Its transfer cost.
    pub cost_bytes: u64,
}

/// The set of transfers chosen to fill a client buffer.
#[derive(Debug, Clone, Default)]
pub struct PrefetchPlan {
    /// Planned transfers, highest value-per-byte first.
    pub items: Vec<PrefetchItem>,
    /// Total bytes of the plan (never exceeds the buffer size given).
    pub total_bytes: u64,
}

impl PrefetchPlan {
    /// `true` if `(component, form)` is in the plan.
    pub fn contains(&self, component: ComponentId, form: usize) -> bool {
        self.items
            .iter()
            .any(|i| i.component == component && i.form == form)
    }
}

/// Computes preference-derived request likelihoods and buffer plans.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrefetchPlanner {
    cfg: PrefetchConfig,
}

impl PrefetchPlanner {
    /// Creates a planner with the given configuration.
    pub fn new(cfg: PrefetchConfig) -> Self {
        PrefetchPlanner { cfg }
    }

    /// Scores every `(component, form)` pair of `doc` under the viewer's
    /// current `evidence`. Hidden forms score zero (nothing to transfer);
    /// scores of the remaining forms are the decayed preference mass of the
    /// top-k outcomes that present the component in that form *visibly*
    /// (i.e. not inside a hidden composite).
    pub fn scores(
        &self,
        doc: &MultimediaDocument,
        evidence: &PartialAssignment,
    ) -> Result<Vec<FormScore>> {
        let ncomp = doc.num_components();
        // score[c][f]
        let mut score: Vec<Vec<f64>> = (0..ncomp)
            .map(|i| {
                vec![
                    0.0;
                    doc.forms(ComponentId(i as u32))
                        .map(|f| f.len())
                        .unwrap_or(0)
                ]
            })
            .collect();
        let mut weight = 1.0f64;
        for (rank, outcome) in doc
            .net()
            .outcomes_by_preference(evidence)
            .take(self.cfg.top_k)
            .enumerate()
        {
            if rank > 0 {
                weight *= self.cfg.decay;
            }
            // Visibility pass over the hierarchy for this outcome.
            let mut visible = vec![false; ncomp];
            for c in doc.iter_depth_first() {
                let form = outcome[c.idx()].idx();
                let own = doc.forms(c)?[form].kind != FormKind::Hidden;
                let parent_ok = doc.parent(c)?.map(|p| visible[p.idx()]).unwrap_or(true);
                visible[c.idx()] = own && parent_ok;
                if visible[c.idx()] {
                    score[c.idx()][form] += weight;
                }
            }
        }
        let mut out = Vec::new();
        for (i, per_form) in score.into_iter().enumerate() {
            let c = ComponentId(i as u32);
            let forms = doc.forms(c)?;
            for (f, s) in per_form.into_iter().enumerate() {
                if s > 0.0 && forms[f].kind != FormKind::Hidden {
                    out.push(FormScore {
                        component: c,
                        form: f,
                        score: s,
                        cost_bytes: forms[f].cost_bytes,
                    });
                }
            }
        }
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(out)
    }

    /// Greedily fills a buffer of `buffer_bytes` with the highest
    /// value-per-byte forms. Zero-cost forms are always included.
    pub fn plan(
        &self,
        doc: &MultimediaDocument,
        evidence: &PartialAssignment,
        buffer_bytes: u64,
    ) -> Result<PrefetchPlan> {
        let mut scored = self.scores(doc, evidence)?;
        scored.sort_by(|a, b| {
            let ra = a.score / (a.cost_bytes.max(1) as f64);
            let rb = b.score / (b.cost_bytes.max(1) as f64);
            rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut plan = PrefetchPlan::default();
        for s in scored {
            if s.cost_bytes == 0 || plan.total_bytes + s.cost_bytes <= buffer_bytes {
                plan.total_bytes += s.cost_bytes;
                plan.items.push(PrefetchItem {
                    component: s.component,
                    form: s.form,
                    score: s.score,
                    cost_bytes: s.cost_bytes,
                });
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{MediaRef, PresentationForm};

    fn doc_with_two_images() -> (MultimediaDocument, ComponentId, ComponentId) {
        let mut doc = MultimediaDocument::new("record");
        let ct = doc
            .add_primitive(
                doc.root(),
                "CT",
                MediaRef::None,
                vec![
                    PresentationForm::new("flat", FormKind::Flat, 100_000),
                    PresentationForm::new("segmented", FormKind::Segmented, 150_000),
                    PresentationForm::hidden(),
                ],
            )
            .unwrap();
        let xray = doc
            .add_primitive(
                doc.root(),
                "X-ray",
                MediaRef::None,
                vec![
                    PresentationForm::new("flat", FormKind::Flat, 80_000),
                    PresentationForm::hidden(),
                ],
            )
            .unwrap();
        doc.validate().unwrap();
        (doc, ct, xray)
    }

    #[test]
    fn scores_prefer_the_optimal_presentation() {
        let (doc, ct, _) = doc_with_two_images();
        let planner = PrefetchPlanner::default();
        let ev = PartialAssignment::empty(doc.net().len());
        let scores = planner.scores(&doc, &ev).unwrap();
        // The optimal outcome shows CT flat; that pair must score highest
        // among CT's forms.
        let flat = scores
            .iter()
            .find(|s| s.component == ct && s.form == 0)
            .expect("flat CT scored");
        let seg = scores.iter().find(|s| s.component == ct && s.form == 1);
        if let Some(seg) = seg {
            assert!(flat.score > seg.score);
        }
    }

    #[test]
    fn hidden_forms_never_scored() {
        let (doc, _, _) = doc_with_two_images();
        let planner = PrefetchPlanner::default();
        let ev = PartialAssignment::empty(doc.net().len());
        for s in planner.scores(&doc, &ev).unwrap() {
            assert_ne!(
                doc.forms(s.component).unwrap()[s.form].kind,
                FormKind::Hidden
            );
        }
    }

    #[test]
    fn plan_respects_buffer() {
        let (doc, _, _) = doc_with_two_images();
        let planner = PrefetchPlanner::default();
        let ev = PartialAssignment::empty(doc.net().len());
        let plan = planner.plan(&doc, &ev, 120_000).unwrap();
        assert!(plan.total_bytes <= 120_000);
        assert!(!plan.items.is_empty());
        let unlimited = planner.plan(&doc, &ev, u64::MAX).unwrap();
        assert!(unlimited.items.len() >= plan.items.len());
    }

    #[test]
    fn evidence_shifts_scores() {
        let (doc, ct, _) = doc_with_two_images();
        let planner = PrefetchPlanner::default();
        let mut ev = PartialAssignment::empty(doc.net().len());
        ev.set(ct.var(), crate::cpnet::Value(1)); // viewer wants segmented
        let scores = planner.scores(&doc, &ev).unwrap();
        let seg = scores
            .iter()
            .find(|s| s.component == ct && s.form == 1)
            .expect("segmented scored");
        let flat = scores.iter().find(|s| s.component == ct && s.form == 0);
        assert!(flat.is_none() || flat.unwrap().score < seg.score);
    }

    #[test]
    fn zero_cost_forms_always_planned() {
        let mut doc = MultimediaDocument::new("r");
        let note = doc
            .add_primitive(
                doc.root(),
                "note",
                MediaRef::None,
                vec![PresentationForm::new("flat", FormKind::Text, 0)],
            )
            .unwrap();
        doc.validate().unwrap();
        let planner = PrefetchPlanner::default();
        let ev = PartialAssignment::empty(doc.net().len());
        let plan = planner.plan(&doc, &ev, 0).unwrap();
        assert!(plan.contains(note, 0));
        assert_eq!(plan.total_bytes, 0);
    }
}
