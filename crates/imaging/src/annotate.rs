//! Annotation overlays: the text and line elements conference partners draw
//! on an image.
//!
//! The paper's IP module supports "deleting of text elements and line
//! elements", which only makes sense if annotations are *vector objects
//! layered over* the pixels rather than burned into them. An
//! [`AnnotatedImage`] is a base [`GrayImage`] plus a list of elements, each
//! with a stable [`ElementId`] so a partner can delete someone else's marker;
//! [`AnnotatedImage::render`] rasterises the current state (with a built-in
//! 5×7 bitmap font for text).

use crate::image::{GrayImage, ImagingError, Result};

/// Stable identifier of one overlay element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElementId(pub u64);

/// A text annotation at a pixel position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextElement {
    /// Anchor x (left edge of the first glyph).
    pub x: usize,
    /// Anchor y (top edge).
    pub y: usize,
    /// The text (rendered in upper-case 5×7 glyphs).
    pub text: String,
    /// Glyph intensity (255 = white ink).
    pub intensity: u8,
    /// Integer scale factor (1 = 5×7 pixels per glyph).
    pub scale: usize,
}

/// A straight line annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineElement {
    /// Start point.
    pub x0: i64,
    /// Start point.
    pub y0: i64,
    /// End point.
    pub x1: i64,
    /// End point.
    pub y1: i64,
    /// Ink intensity.
    pub intensity: u8,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Element {
    Text(TextElement),
    Line(LineElement),
}

/// An image plus its editable annotation overlay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotatedImage {
    base: GrayImage,
    elements: Vec<(ElementId, Element)>,
    next_id: u64,
}

impl AnnotatedImage {
    /// Wraps a base image with an empty overlay.
    pub fn new(base: GrayImage) -> Self {
        AnnotatedImage {
            base,
            elements: Vec::new(),
            next_id: 1,
        }
    }

    /// The unannotated pixels.
    pub fn base(&self) -> &GrayImage {
        &self.base
    }

    /// Number of overlay elements.
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// Ids of all elements, in insertion order.
    pub fn element_ids(&self) -> Vec<ElementId> {
        self.elements.iter().map(|(id, _)| *id).collect()
    }

    fn alloc(&mut self) -> ElementId {
        let id = ElementId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Adds a text element ("when one user writes some text on an image ...
    /// the others can see the text").
    pub fn add_text(&mut self, text: TextElement) -> ElementId {
        let id = self.alloc();
        self.elements.push((id, Element::Text(text)));
        id
    }

    /// Adds a line element.
    pub fn add_line(&mut self, line: LineElement) -> ElementId {
        let id = self.alloc();
        self.elements.push((id, Element::Line(line)));
        id
    }

    /// Deletes an element by id (the IP module's delete operation).
    pub fn delete_element(&mut self, id: ElementId) -> Result<()> {
        let before = self.elements.len();
        self.elements.retain(|(eid, _)| *eid != id);
        if self.elements.len() == before {
            return Err(ImagingError::OutOfBounds(format!(
                "no overlay element {}",
                id.0
            )));
        }
        Ok(())
    }

    /// Rasterises base + overlay into a fresh image.
    pub fn render(&self) -> GrayImage {
        static LAT: rcmo_obs::LazyHistogram =
            rcmo_obs::LazyHistogram::new("imaging.render.us", rcmo_obs::bounds::LATENCY_US);
        let _t = LAT.start_timer();
        let mut out = self.base.clone();
        for (_, e) in &self.elements {
            match e {
                Element::Text(t) => draw_text(&mut out, t),
                Element::Line(l) => draw_line(&mut out, l),
            }
        }
        out
    }

    /// Serialises base + overlay for change propagation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"AIM1");
        let base = self.base.to_bytes();
        out.extend_from_slice(&(base.len() as u32).to_le_bytes());
        out.extend_from_slice(&base);
        out.extend_from_slice(&self.overlay_to_bytes());
        out
    }

    /// Serialises only the overlay (elements + id counter) — the compact
    /// form stored next to an image whose pixels live elsewhere.
    pub fn overlay_to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.next_id.to_le_bytes());
        out.extend_from_slice(&(self.elements.len() as u32).to_le_bytes());
        for (id, e) in &self.elements {
            out.extend_from_slice(&id.0.to_le_bytes());
            match e {
                Element::Text(t) => {
                    out.push(0);
                    out.extend_from_slice(&(t.x as u32).to_le_bytes());
                    out.extend_from_slice(&(t.y as u32).to_le_bytes());
                    out.push(t.intensity);
                    out.extend_from_slice(&(t.scale as u32).to_le_bytes());
                    out.extend_from_slice(&(t.text.len() as u32).to_le_bytes());
                    out.extend_from_slice(t.text.as_bytes());
                }
                Element::Line(l) => {
                    out.push(1);
                    for v in [l.x0, l.y0, l.x1, l.y1] {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                    out.push(l.intensity);
                }
            }
        }
        out
    }

    /// Reverses [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<AnnotatedImage> {
        if bytes.len() < 8 || &bytes[..4] != b"AIM1" {
            return Err(ImagingError::Codec("not an AIM1 stream".to_string()));
        }
        let base_len = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
        if 8 + base_len > bytes.len() {
            return Err(ImagingError::Codec("truncated AIM1 stream".to_string()));
        }
        let base = GrayImage::from_bytes(&bytes[8..8 + base_len])?;
        Self::from_parts(base, &bytes[8 + base_len..])
    }

    /// Reassembles an image from its pixels and an overlay produced by
    /// [`overlay_to_bytes`](Self::overlay_to_bytes).
    pub fn from_parts(base: GrayImage, overlay: &[u8]) -> Result<AnnotatedImage> {
        struct Cur<'a> {
            b: &'a [u8],
            pos: usize,
        }
        impl<'a> Cur<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8]> {
                if self.pos + n > self.b.len() {
                    return Err(ImagingError::Codec("truncated overlay".to_string()));
                }
                let s = &self.b[self.pos..self.pos + n];
                self.pos += n;
                Ok(s)
            }
        }
        let mut cur = Cur { b: overlay, pos: 0 };
        let next_id = u64::from_le_bytes(cur.take(8)?.try_into().unwrap());
        let count = u32::from_le_bytes(cur.take(4)?.try_into().unwrap()) as usize;
        let mut elements = Vec::with_capacity(count);
        for _ in 0..count {
            let id = ElementId(u64::from_le_bytes(cur.take(8)?.try_into().unwrap()));
            match cur.take(1)?[0] {
                0 => {
                    let x = u32::from_le_bytes(cur.take(4)?.try_into().unwrap()) as usize;
                    let y = u32::from_le_bytes(cur.take(4)?.try_into().unwrap()) as usize;
                    let intensity = cur.take(1)?[0];
                    let scale = u32::from_le_bytes(cur.take(4)?.try_into().unwrap()) as usize;
                    let len = u32::from_le_bytes(cur.take(4)?.try_into().unwrap()) as usize;
                    let text = String::from_utf8(cur.take(len)?.to_vec())
                        .map_err(|_| ImagingError::Codec("invalid UTF-8 text".to_string()))?;
                    elements.push((
                        id,
                        Element::Text(TextElement {
                            x,
                            y,
                            text,
                            intensity,
                            scale,
                        }),
                    ));
                }
                1 => {
                    let mut vals = [0i64; 4];
                    for v in &mut vals {
                        *v = i64::from_le_bytes(cur.take(8)?.try_into().unwrap());
                    }
                    let intensity = cur.take(1)?[0];
                    elements.push((
                        id,
                        Element::Line(LineElement {
                            x0: vals[0],
                            y0: vals[1],
                            x1: vals[2],
                            y1: vals[3],
                            intensity,
                        }),
                    ));
                }
                t => return Err(ImagingError::Codec(format!("bad element tag {t}"))),
            }
        }
        if cur.pos != overlay.len() {
            return Err(ImagingError::Codec("trailing bytes".to_string()));
        }
        Ok(AnnotatedImage {
            base,
            elements,
            next_id,
        })
    }
}

/// Bresenham line drawing.
fn draw_line(img: &mut GrayImage, l: &LineElement) {
    let (mut x0, mut y0, x1, y1) = (l.x0, l.y0, l.x1, l.y1);
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut e = dx + dy;
    loop {
        if x0 >= 0 && y0 >= 0 {
            img.set(x0 as usize, y0 as usize, l.intensity);
        }
        if x0 == x1 && y0 == y1 {
            break;
        }
        let e2 = 2 * e;
        if e2 >= dy {
            e += dy;
            x0 += sx;
        }
        if e2 <= dx {
            e += dx;
            y0 += sy;
        }
    }
}

fn draw_text(img: &mut GrayImage, t: &TextElement) {
    let scale = t.scale.max(1);
    let mut cursor = t.x;
    for ch in t.text.chars() {
        let glyph = glyph_for(ch.to_ascii_uppercase());
        for (row, bits) in glyph.iter().enumerate() {
            for col in 0..5 {
                if bits & (1 << (4 - col)) != 0 {
                    for dy in 0..scale {
                        for dx in 0..scale {
                            img.set(
                                cursor + col * scale + dx,
                                t.y + row * scale + dy,
                                t.intensity,
                            );
                        }
                    }
                }
            }
        }
        cursor += 6 * scale; // 5 columns + 1 space
    }
}

/// 5×7 bitmap glyphs for A–Z, 0–9 and a few symbols; unknown characters
/// render as a filled box.
fn glyph_for(ch: char) -> [u8; 7] {
    match ch {
        'A' => [0x0E, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11],
        'B' => [0x1E, 0x11, 0x11, 0x1E, 0x11, 0x11, 0x1E],
        'C' => [0x0E, 0x11, 0x10, 0x10, 0x10, 0x11, 0x0E],
        'D' => [0x1E, 0x11, 0x11, 0x11, 0x11, 0x11, 0x1E],
        'E' => [0x1F, 0x10, 0x10, 0x1E, 0x10, 0x10, 0x1F],
        'F' => [0x1F, 0x10, 0x10, 0x1E, 0x10, 0x10, 0x10],
        'G' => [0x0E, 0x11, 0x10, 0x17, 0x11, 0x11, 0x0F],
        'H' => [0x11, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11],
        'I' => [0x0E, 0x04, 0x04, 0x04, 0x04, 0x04, 0x0E],
        'J' => [0x07, 0x02, 0x02, 0x02, 0x02, 0x12, 0x0C],
        'K' => [0x11, 0x12, 0x14, 0x18, 0x14, 0x12, 0x11],
        'L' => [0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x1F],
        'M' => [0x11, 0x1B, 0x15, 0x15, 0x11, 0x11, 0x11],
        'N' => [0x11, 0x19, 0x15, 0x13, 0x11, 0x11, 0x11],
        'O' => [0x0E, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0E],
        'P' => [0x1E, 0x11, 0x11, 0x1E, 0x10, 0x10, 0x10],
        'Q' => [0x0E, 0x11, 0x11, 0x11, 0x15, 0x12, 0x0D],
        'R' => [0x1E, 0x11, 0x11, 0x1E, 0x14, 0x12, 0x11],
        'S' => [0x0F, 0x10, 0x10, 0x0E, 0x01, 0x01, 0x1E],
        'T' => [0x1F, 0x04, 0x04, 0x04, 0x04, 0x04, 0x04],
        'U' => [0x11, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0E],
        'V' => [0x11, 0x11, 0x11, 0x11, 0x11, 0x0A, 0x04],
        'W' => [0x11, 0x11, 0x11, 0x15, 0x15, 0x1B, 0x11],
        'X' => [0x11, 0x11, 0x0A, 0x04, 0x0A, 0x11, 0x11],
        'Y' => [0x11, 0x11, 0x0A, 0x04, 0x04, 0x04, 0x04],
        'Z' => [0x1F, 0x01, 0x02, 0x04, 0x08, 0x10, 0x1F],
        '0' => [0x0E, 0x11, 0x13, 0x15, 0x19, 0x11, 0x0E],
        '1' => [0x04, 0x0C, 0x04, 0x04, 0x04, 0x04, 0x0E],
        '2' => [0x0E, 0x11, 0x01, 0x02, 0x04, 0x08, 0x1F],
        '3' => [0x1F, 0x02, 0x04, 0x02, 0x01, 0x11, 0x0E],
        '4' => [0x02, 0x06, 0x0A, 0x12, 0x1F, 0x02, 0x02],
        '5' => [0x1F, 0x10, 0x1E, 0x01, 0x01, 0x11, 0x0E],
        '6' => [0x06, 0x08, 0x10, 0x1E, 0x11, 0x11, 0x0E],
        '7' => [0x1F, 0x01, 0x02, 0x04, 0x08, 0x08, 0x08],
        '8' => [0x0E, 0x11, 0x11, 0x0E, 0x11, 0x11, 0x0E],
        '9' => [0x0E, 0x11, 0x11, 0x0F, 0x01, 0x02, 0x0C],
        ' ' => [0x00; 7],
        '.' => [0x00, 0x00, 0x00, 0x00, 0x00, 0x0C, 0x0C],
        ',' => [0x00, 0x00, 0x00, 0x00, 0x0C, 0x04, 0x08],
        '-' => [0x00, 0x00, 0x00, 0x1F, 0x00, 0x00, 0x00],
        '+' => [0x00, 0x04, 0x04, 0x1F, 0x04, 0x04, 0x00],
        ':' => [0x00, 0x0C, 0x0C, 0x00, 0x0C, 0x0C, 0x00],
        '!' => [0x04, 0x04, 0x04, 0x04, 0x04, 0x00, 0x04],
        '?' => [0x0E, 0x11, 0x01, 0x02, 0x04, 0x00, 0x04],
        _ => [0x1F; 7],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> GrayImage {
        GrayImage::new(64, 64).unwrap()
    }

    #[test]
    fn add_and_render_text() {
        let mut ai = AnnotatedImage::new(base());
        ai.add_text(TextElement {
            x: 2,
            y: 2,
            text: "CT".to_string(),
            intensity: 255,
            scale: 1,
        });
        let r = ai.render();
        let lit = r.pixels().iter().filter(|&&p| p == 255).count();
        assert!(lit > 10, "glyphs drew {lit} pixels");
        // Base image untouched.
        assert!(ai.base().pixels().iter().all(|&p| p == 0));
    }

    #[test]
    fn add_and_render_line() {
        let mut ai = AnnotatedImage::new(base());
        ai.add_line(LineElement {
            x0: 0,
            y0: 0,
            x1: 63,
            y1: 63,
            intensity: 200,
        });
        let r = ai.render();
        for d in [0usize, 10, 30, 63] {
            assert_eq!(r.get(d, d), 200);
        }
    }

    #[test]
    fn delete_restores_pixels() {
        let mut ai = AnnotatedImage::new(base());
        let id = ai.add_line(LineElement {
            x0: 0,
            y0: 5,
            x1: 63,
            y1: 5,
            intensity: 99,
        });
        assert_eq!(ai.render().get(30, 5), 99);
        ai.delete_element(id).unwrap();
        assert_eq!(ai.render().get(30, 5), 0);
        assert!(ai.delete_element(id).is_err(), "double delete rejected");
    }

    #[test]
    fn element_ids_are_stable_and_unique() {
        let mut ai = AnnotatedImage::new(base());
        let a = ai.add_text(TextElement {
            x: 0,
            y: 0,
            text: "A".into(),
            intensity: 255,
            scale: 1,
        });
        let b = ai.add_line(LineElement {
            x0: 0,
            y0: 0,
            x1: 1,
            y1: 1,
            intensity: 1,
        });
        assert_ne!(a, b);
        ai.delete_element(a).unwrap();
        let c = ai.add_text(TextElement {
            x: 0,
            y: 0,
            text: "C".into(),
            intensity: 255,
            scale: 1,
        });
        assert_ne!(b, c, "ids are never reused");
        assert_eq!(ai.element_ids(), vec![b, c]);
    }

    #[test]
    fn line_clipping_is_safe() {
        let mut ai = AnnotatedImage::new(base());
        ai.add_line(LineElement {
            x0: -20,
            y0: -20,
            x1: 100,
            y1: 100,
            intensity: 50,
        });
        let r = ai.render(); // no panic
        assert_eq!(r.get(10, 10), 50);
    }

    #[test]
    fn scaled_text_is_larger() {
        let mut small = AnnotatedImage::new(base());
        small.add_text(TextElement {
            x: 0,
            y: 0,
            text: "X".into(),
            intensity: 255,
            scale: 1,
        });
        let mut big = AnnotatedImage::new(base());
        big.add_text(TextElement {
            x: 0,
            y: 0,
            text: "X".into(),
            intensity: 255,
            scale: 3,
        });
        let count = |im: &GrayImage| im.pixels().iter().filter(|&&p| p == 255).count();
        assert_eq!(count(&big.render()), 9 * count(&small.render()));
    }

    #[test]
    fn byte_roundtrip() {
        let mut ai = AnnotatedImage::new(base());
        ai.add_text(TextElement {
            x: 3,
            y: 4,
            text: "HI!".into(),
            intensity: 250,
            scale: 2,
        });
        ai.add_line(LineElement {
            x0: 1,
            y0: 2,
            x1: 60,
            y1: 9,
            intensity: 7,
        });
        let bytes = ai.to_bytes();
        let back = AnnotatedImage::from_bytes(&bytes).unwrap();
        assert_eq!(back, ai);
        assert!(AnnotatedImage::from_bytes(&bytes[..20]).is_err());
        assert!(AnnotatedImage::from_bytes(b"XXXX").is_err());
    }
}
