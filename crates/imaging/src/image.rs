//! 8-bit grayscale raster images.

use std::fmt;

/// Errors raised by image operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ImagingError {
    /// Width/height of zero or a dimension mismatch.
    BadDimensions(String),
    /// A rectangle fell outside the image bounds.
    OutOfBounds(String),
    /// A serialized image failed to decode.
    Codec(String),
}

impl fmt::Display for ImagingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImagingError::BadDimensions(m) => write!(f, "bad dimensions: {m}"),
            ImagingError::OutOfBounds(m) => write!(f, "out of bounds: {m}"),
            ImagingError::Codec(m) => write!(f, "image codec: {m}"),
        }
    }
}

impl std::error::Error for ImagingError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ImagingError>;

/// An 8-bit grayscale image stored row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl GrayImage {
    /// A black image of the given size.
    pub fn new(width: usize, height: usize) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImagingError::BadDimensions(format!("{width}x{height}")));
        }
        Ok(GrayImage {
            width,
            height,
            pixels: vec![0; width * height],
        })
    }

    /// Builds an image from a per-pixel function.
    pub fn from_fn(width: usize, height: usize, f: impl Fn(usize, usize) -> u8) -> Result<Self> {
        let mut img = GrayImage::new(width, height)?;
        for y in 0..height {
            for x in 0..width {
                img.pixels[y * width + x] = f(x, y);
            }
        }
        Ok(img)
    }

    /// Wraps raw row-major pixels.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<u8>) -> Result<Self> {
        if width == 0 || height == 0 || pixels.len() != width * height {
            return Err(ImagingError::BadDimensions(format!(
                "{width}x{height} with {} pixels",
                pixels.len()
            )));
        }
        Ok(GrayImage {
            width,
            height,
            pixels,
        })
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The raw pixel buffer (row-major).
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Pixel at `(x, y)`; panics out of bounds (checked in debug).
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.pixels[y * self.width + x]
    }

    /// Sets pixel `(x, y)` if inside the image (silently ignores outside —
    /// convenient for raster drawing).
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x] = v;
        }
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f64 {
        self.pixels.iter().map(|&p| p as f64).sum::<f64>() / self.pixels.len() as f64
    }

    /// 256-bin histogram.
    pub fn histogram(&self) -> [u64; 256] {
        let mut h = [0u64; 256];
        for &p in &self.pixels {
            h[p as usize] += 1;
        }
        h
    }

    /// Copies out the rectangle `(x, y, w, h)`.
    pub fn crop(&self, x: usize, y: usize, w: usize, h: usize) -> Result<GrayImage> {
        if w == 0 || h == 0 {
            return Err(ImagingError::BadDimensions(format!("{w}x{h}")));
        }
        if x + w > self.width || y + h > self.height {
            return Err(ImagingError::OutOfBounds(format!(
                "crop ({x},{y},{w},{h}) from {}x{}",
                self.width, self.height
            )));
        }
        let mut out = GrayImage::new(w, h)?;
        for row in 0..h {
            let src = (y + row) * self.width + x;
            let dst = row * w;
            out.pixels[dst..dst + w].copy_from_slice(&self.pixels[src..src + w]);
        }
        Ok(out)
    }

    /// Nearest-neighbour resize.
    pub fn resize_nearest(&self, w: usize, h: usize) -> Result<GrayImage> {
        let mut out = GrayImage::new(w, h)?;
        for y in 0..h {
            let sy = y * self.height / h;
            for x in 0..w {
                let sx = x * self.width / w;
                out.pixels[y * w + x] = self.get(sx, sy);
            }
        }
        Ok(out)
    }

    /// Bilinear resize (the quality path used for zoom).
    pub fn resize_bilinear(&self, w: usize, h: usize) -> Result<GrayImage> {
        let mut out = GrayImage::new(w, h)?;
        let sx_max = (self.width - 1) as f64;
        let sy_max = (self.height - 1) as f64;
        for y in 0..h {
            let fy = if h == 1 {
                0.0
            } else {
                y as f64 * sy_max / (h - 1) as f64
            };
            let y0 = fy.floor() as usize;
            let y1 = (y0 + 1).min(self.height - 1);
            let dy = fy - y0 as f64;
            for x in 0..w {
                let fx = if w == 1 {
                    0.0
                } else {
                    x as f64 * sx_max / (w - 1) as f64
                };
                let x0 = fx.floor() as usize;
                let x1 = (x0 + 1).min(self.width - 1);
                let dx = fx - x0 as f64;
                let p00 = self.get(x0, y0) as f64;
                let p10 = self.get(x1, y0) as f64;
                let p01 = self.get(x0, y1) as f64;
                let p11 = self.get(x1, y1) as f64;
                let v = p00 * (1.0 - dx) * (1.0 - dy)
                    + p10 * dx * (1.0 - dy)
                    + p01 * (1.0 - dx) * dy
                    + p11 * dx * dy;
                out.pixels[y * w + x] = v.round().clamp(0.0, 255.0) as u8;
            }
        }
        Ok(out)
    }

    /// The paper's zoom operation: magnify the selected region to the full
    /// image size with bilinear interpolation.
    pub fn zoom(&self, x: usize, y: usize, w: usize, h: usize) -> Result<GrayImage> {
        self.crop(x, y, w, h)?
            .resize_bilinear(self.width, self.height)
    }

    /// Halves both dimensions by 2×2 averaging (resolution pyramids).
    pub fn downsample2x(&self) -> Result<GrayImage> {
        let w = (self.width / 2).max(1);
        let h = (self.height / 2).max(1);
        let mut out = GrayImage::new(w, h)?;
        for y in 0..h {
            for x in 0..w {
                let x0 = (2 * x).min(self.width - 1);
                let x1 = (2 * x + 1).min(self.width - 1);
                let y0 = (2 * y).min(self.height - 1);
                let y1 = (2 * y + 1).min(self.height - 1);
                let sum = self.get(x0, y0) as u32
                    + self.get(x1, y0) as u32
                    + self.get(x0, y1) as u32
                    + self.get(x1, y1) as u32;
                out.pixels[y * w + x] = (sum / 4) as u8;
            }
        }
        Ok(out)
    }

    /// Serialises to bytes (magic + dims + raw pixels) for BLOB storage.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.pixels.len());
        out.extend_from_slice(b"GIM1");
        out.extend_from_slice(&(self.width as u32).to_le_bytes());
        out.extend_from_slice(&(self.height as u32).to_le_bytes());
        out.extend_from_slice(&self.pixels);
        out
    }

    /// Reverses [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<GrayImage> {
        if bytes.len() < 12 || &bytes[..4] != b"GIM1" {
            return Err(ImagingError::Codec("not a GIM1 stream".to_string()));
        }
        let w = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
        let h = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
        if bytes.len() != 12 + w * h {
            return Err(ImagingError::Codec(format!(
                "expected {} pixel bytes, found {}",
                w * h,
                bytes.len() - 12
            )));
        }
        GrayImage::from_pixels(w, h, bytes[12..].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(w: usize, h: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| ((x + y) % 256) as u8).unwrap()
    }

    #[test]
    fn construction_and_bounds() {
        assert!(GrayImage::new(0, 5).is_err());
        assert!(GrayImage::from_pixels(2, 2, vec![0; 3]).is_err());
        let img = gradient(8, 4);
        assert_eq!(img.width(), 8);
        assert_eq!(img.height(), 4);
        assert_eq!(img.get(3, 2), 5);
    }

    #[test]
    fn set_ignores_out_of_bounds() {
        let mut img = GrayImage::new(4, 4).unwrap();
        img.set(10, 10, 255); // no panic
        img.set(1, 1, 7);
        assert_eq!(img.get(1, 1), 7);
    }

    #[test]
    fn crop_extracts_subimage() {
        let img = gradient(10, 10);
        let c = img.crop(2, 3, 4, 5).unwrap();
        assert_eq!(c.width(), 4);
        assert_eq!(c.height(), 5);
        assert_eq!(c.get(0, 0), img.get(2, 3));
        assert_eq!(c.get(3, 4), img.get(5, 7));
        assert!(img.crop(8, 8, 4, 4).is_err());
        assert!(img.crop(0, 0, 0, 1).is_err());
    }

    #[test]
    fn resize_nearest_identity() {
        let img = gradient(6, 6);
        assert_eq!(img.resize_nearest(6, 6).unwrap(), img);
    }

    #[test]
    fn resize_bilinear_preserves_constant_images() {
        let img = GrayImage::from_fn(7, 5, |_, _| 99).unwrap();
        let big = img.resize_bilinear(20, 13).unwrap();
        assert!(big.pixels().iter().all(|&p| p == 99));
    }

    #[test]
    fn zoom_magnifies_region() {
        let img = GrayImage::from_fn(16, 16, |x, _| if x < 8 { 0 } else { 200 }).unwrap();
        let z = img.zoom(8, 0, 8, 16).unwrap();
        assert_eq!(z.width(), 16);
        assert_eq!(z.height(), 16);
        // The zoomed right half is all bright.
        assert!(z.pixels().iter().all(|&p| p > 150));
    }

    #[test]
    fn downsample_averages() {
        let img = GrayImage::from_fn(4, 4, |x, y| ((x % 2) * 100 + (y % 2) * 100) as u8).unwrap();
        let d = img.downsample2x().unwrap();
        assert_eq!(d.width(), 2);
        assert_eq!(d.height(), 2);
        // Each 2x2 block is {0,100,100,200} → mean 100.
        assert!(d.pixels().iter().all(|&p| p == 100));
    }

    #[test]
    fn histogram_and_mean() {
        let img = GrayImage::from_fn(4, 1, |x, _| (x as u8) * 10).unwrap();
        let h = img.histogram();
        assert_eq!(h[0], 1);
        assert_eq!(h[10], 1);
        assert_eq!(h[30], 1);
        assert!((img.mean() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn byte_roundtrip() {
        let img = gradient(33, 17);
        let bytes = img.to_bytes();
        assert_eq!(GrayImage::from_bytes(&bytes).unwrap(), img);
        assert!(GrayImage::from_bytes(&bytes[..10]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(GrayImage::from_bytes(&bad).is_err());
        assert!(GrayImage::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }
}
