//! # rcmo-imaging — raster images, phantoms, annotations, segmentation
//!
//! The substrate for the paper's image-processing module and the synthetic
//! replacement for its medical image sources:
//!
//! * [`image`] — 8-bit grayscale raster images with resampling (zoom is the
//!   first operation the paper's IP module lists).
//! * [`phantom`] — Shepp-Logan-style CT phantoms and X-ray-like projections,
//!   the stand-ins for the paper's clinical images (with ground truth).
//! * [`annotate`] — vector overlays: text and line elements drawn *onto* an
//!   image by conference partners, which can later be deleted ("deleting of
//!   text elements and line elements") without damaging the pixels.
//! * [`segment`] — Otsu thresholding, connected components, and the
//!   "segmentation grid with possibility to fill different segments ...
//!   with different colors or patterns".
//! * [`metrics`] — MSE/PSNR used by the codec evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotate;
pub mod image;
pub mod metrics;
pub mod phantom;
pub mod segment;

pub use annotate::{AnnotatedImage, ElementId, LineElement, TextElement};
pub use image::{GrayImage, ImagingError};
pub use metrics::{mse, psnr};
pub use phantom::{ct_phantom, xray_projection};
pub use segment::{segment_image, SegmentFill, Segmentation};
