//! Synthetic medical images: CT phantoms and X-ray-like projections.
//!
//! The paper demonstrates on real CT/X-ray images we do not have; a
//! Shepp-Logan-style ellipse phantom is the standard synthetic stand-in in
//! the tomography literature. It exercises the same pipeline (smooth
//! regions, sharp organ boundaries, small high-contrast lesions) and — being
//! parametric — gives segmentation and compression experiments ground truth.

use crate::image::{GrayImage, Result};

/// One ellipse of a phantom: centre, semi-axes and rotation in normalised
/// coordinates (`[-1, 1]`), plus an additive intensity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ellipse {
    /// Centre x in `[-1, 1]`.
    pub cx: f64,
    /// Centre y in `[-1, 1]`.
    pub cy: f64,
    /// Semi-axis along x.
    pub rx: f64,
    /// Semi-axis along y.
    pub ry: f64,
    /// Rotation in radians.
    pub theta: f64,
    /// Additive intensity contribution (can be negative).
    pub intensity: f64,
}

impl Ellipse {
    /// `true` if the normalised point lies inside the ellipse.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        let (s, c) = self.theta.sin_cos();
        let dx = x - self.cx;
        let dy = y - self.cy;
        let xr = dx * c + dy * s;
        let yr = -dx * s + dy * c;
        (xr / self.rx).powi(2) + (yr / self.ry).powi(2) <= 1.0
    }
}

/// The ellipse set of the standard head phantom (Shepp & Logan 1974,
/// contrast-stretched variant so structures are visible in 8 bits).
pub fn head_ellipses() -> Vec<Ellipse> {
    vec![
        Ellipse {
            cx: 0.0,
            cy: 0.0,
            rx: 0.69,
            ry: 0.92,
            theta: 0.0,
            intensity: 1.0,
        },
        Ellipse {
            cx: 0.0,
            cy: -0.0184,
            rx: 0.6624,
            ry: 0.874,
            theta: 0.0,
            intensity: -0.8,
        },
        Ellipse {
            cx: 0.22,
            cy: 0.0,
            rx: 0.11,
            ry: 0.31,
            theta: -0.3141,
            intensity: -0.2,
        },
        Ellipse {
            cx: -0.22,
            cy: 0.0,
            rx: 0.16,
            ry: 0.41,
            theta: 0.3141,
            intensity: -0.2,
        },
        Ellipse {
            cx: 0.0,
            cy: 0.35,
            rx: 0.21,
            ry: 0.25,
            theta: 0.0,
            intensity: 0.1,
        },
        Ellipse {
            cx: 0.0,
            cy: 0.1,
            rx: 0.046,
            ry: 0.046,
            theta: 0.0,
            intensity: 0.1,
        },
        Ellipse {
            cx: 0.0,
            cy: -0.1,
            rx: 0.046,
            ry: 0.046,
            theta: 0.0,
            intensity: 0.1,
        },
        Ellipse {
            cx: -0.08,
            cy: -0.605,
            rx: 0.046,
            ry: 0.023,
            theta: 0.0,
            intensity: 0.1,
        },
        Ellipse {
            cx: 0.0,
            cy: -0.605,
            rx: 0.023,
            ry: 0.023,
            theta: 0.0,
            intensity: 0.1,
        },
        Ellipse {
            cx: 0.06,
            cy: -0.605,
            rx: 0.023,
            ry: 0.046,
            theta: 0.0,
            intensity: 0.1,
        },
    ]
}

/// Renders a CT phantom of the given size. `lesions` extra small bright
/// ellipses are scattered deterministically from `seed` (the "interesting
/// findings" segmentation should isolate).
pub fn ct_phantom(size: usize, lesions: usize, seed: u64) -> Result<GrayImage> {
    let mut ellipses = head_ellipses();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..lesions {
        let cx = (next() - 0.5) * 0.8;
        let cy = (next() - 0.5) * 0.8;
        let r = 0.02 + next() * 0.05;
        ellipses.push(Ellipse {
            cx,
            cy,
            rx: r,
            ry: r * (0.7 + next() * 0.6),
            theta: next() * std::f64::consts::PI,
            intensity: 0.55 + next() * 0.35,
        });
    }
    GrayImage::from_fn(size, size, |px, py| {
        let x = 2.0 * px as f64 / (size - 1) as f64 - 1.0;
        let y = 2.0 * py as f64 / (size - 1) as f64 - 1.0;
        let mut v = 0.0;
        for e in &ellipses {
            if e.contains(x, y) {
                v += e.intensity;
            }
        }
        (v.clamp(0.0, 1.3) / 1.3 * 255.0).round() as u8
    })
}

/// A 1-D "X-ray" of the phantom: parallel-beam projection along the image
/// columns, rendered back into an image strip for display. This mimics the
/// correlated X-ray image a medical record stores next to the CT slice.
pub fn xray_projection(ct: &GrayImage, strip_height: usize) -> Result<GrayImage> {
    let w = ct.width();
    let mut sums = vec![0u64; w];
    for y in 0..ct.height() {
        for (x, sum) in sums.iter_mut().enumerate() {
            *sum += ct.get(x, y) as u64;
        }
    }
    let max = *sums.iter().max().unwrap_or(&1).max(&1);
    GrayImage::from_fn(w, strip_height.max(1), |x, _| (sums[x] * 255 / max) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phantom_has_head_structure() {
        let img = ct_phantom(128, 0, 0).unwrap();
        // Corners (outside the skull) are black; centre is mid-gray.
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(127, 127), 0);
        let centre = img.get(64, 64);
        assert!(centre > 10 && centre < 200, "centre = {centre}");
        // The skull rim is brighter than the brain interior.
        let rim = img.get(64, 6);
        assert!(rim > centre, "rim {rim} vs centre {centre}");
    }

    #[test]
    fn phantom_is_deterministic_per_seed() {
        let a = ct_phantom(64, 3, 7).unwrap();
        let b = ct_phantom(64, 3, 7).unwrap();
        let c = ct_phantom(64, 3, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn lesions_add_bright_pixels() {
        let clean = ct_phantom(128, 0, 1).unwrap();
        let sick = ct_phantom(128, 5, 1).unwrap();
        assert!(sick.mean() > clean.mean(), "lesions raise mean intensity");
        let bright = |im: &GrayImage| im.pixels().iter().filter(|&&p| p > 150).count();
        assert!(bright(&sick) > bright(&clean));
    }

    #[test]
    fn ellipse_containment() {
        let e = Ellipse {
            cx: 0.0,
            cy: 0.0,
            rx: 0.5,
            ry: 0.25,
            theta: 0.0,
            intensity: 1.0,
        };
        assert!(e.contains(0.0, 0.0));
        assert!(e.contains(0.49, 0.0));
        assert!(!e.contains(0.0, 0.3));
        // Rotated by 90°, the axes swap.
        let r = Ellipse {
            theta: std::f64::consts::FRAC_PI_2,
            ..e
        };
        assert!(r.contains(0.0, 0.45));
        assert!(!r.contains(0.45, 0.0));
    }

    #[test]
    fn xray_projection_profile() {
        let ct = ct_phantom(96, 0, 0).unwrap();
        let xr = xray_projection(&ct, 16).unwrap();
        assert_eq!(xr.width(), 96);
        assert_eq!(xr.height(), 16);
        // Edges (outside the head) project to ~0, the middle to the max.
        assert!(xr.get(0, 0) < 10);
        let mid = xr.get(48, 0);
        assert!(mid > 100, "mid projection {mid}");
        // All rows identical (it is a strip).
        for x in 0..96 {
            assert_eq!(xr.get(x, 0), xr.get(x, 15));
        }
    }
}
