//! Image segmentation: Otsu thresholding, connected components, and the
//! paper's "segmentation grid with possibility to fill different segments of
//! the segmentation with different colors or patterns".

use crate::image::{GrayImage, ImagingError, Result};

/// How a segment is filled when the segmentation is rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentFill {
    /// Keep the original pixels.
    Original,
    /// Flat fill with an intensity.
    Solid(u8),
    /// Checkerboard of two intensities with the given cell size.
    Checker(u8, u8, u8),
    /// Diagonal stripes of two intensities with the given period.
    Stripes(u8, u8, u8),
}

/// A labelling of every pixel into segments `0..num_segments` (label 0 is
/// background) plus per-segment fill styles.
#[derive(Debug, Clone)]
pub struct Segmentation {
    width: usize,
    height: usize,
    labels: Vec<u32>,
    num_segments: usize,
    fills: Vec<SegmentFill>,
}

impl Segmentation {
    /// The number of segments, including background segment 0.
    pub fn num_segments(&self) -> usize {
        self.num_segments
    }

    /// The label of pixel `(x, y)`.
    pub fn label(&self, x: usize, y: usize) -> u32 {
        self.labels[y * self.width + x]
    }

    /// Pixel count of a segment.
    pub fn segment_size(&self, label: u32) -> usize {
        self.labels.iter().filter(|&&l| l == label).count()
    }

    /// Sets the fill style of one segment.
    pub fn set_fill(&mut self, label: u32, fill: SegmentFill) -> Result<()> {
        let idx = label as usize;
        if idx >= self.num_segments {
            return Err(ImagingError::OutOfBounds(format!(
                "segment {label} of {}",
                self.num_segments
            )));
        }
        self.fills[idx] = fill;
        Ok(())
    }

    /// Renders the segmentation over the source image, applying fills and
    /// drawing a 1-pixel boundary grid between different labels (the
    /// paper's "segmentation grid").
    pub fn render(&self, source: &GrayImage, grid_intensity: u8) -> Result<GrayImage> {
        if source.width() != self.width || source.height() != self.height {
            return Err(ImagingError::BadDimensions(format!(
                "segmentation {}x{} vs image {}x{}",
                self.width,
                self.height,
                source.width(),
                source.height()
            )));
        }
        let mut out = GrayImage::new(self.width, self.height)?;
        for y in 0..self.height {
            for x in 0..self.width {
                let label = self.label(x, y) as usize;
                let v = match self.fills[label] {
                    SegmentFill::Original => source.get(x, y),
                    SegmentFill::Solid(v) => v,
                    SegmentFill::Checker(a, b, cell) => {
                        let cell = cell.max(1) as usize;
                        if ((x / cell) + (y / cell)).is_multiple_of(2) {
                            a
                        } else {
                            b
                        }
                    }
                    SegmentFill::Stripes(a, b, period) => {
                        let period = period.max(1) as usize;
                        if ((x + y) / period).is_multiple_of(2) {
                            a
                        } else {
                            b
                        }
                    }
                };
                out.set(x, y, v);
            }
        }
        // Boundary grid: a pixel whose right or lower neighbour has a
        // different label is a boundary pixel.
        for y in 0..self.height {
            for x in 0..self.width {
                let l = self.label(x, y);
                let boundary = (x + 1 < self.width && self.label(x + 1, y) != l)
                    || (y + 1 < self.height && self.label(x, y + 1) != l);
                if boundary {
                    out.set(x, y, grid_intensity);
                }
            }
        }
        Ok(out)
    }
}

/// Otsu's threshold: maximises between-class variance over the histogram.
#[allow(clippy::needless_range_loop)] // t is both index and threshold value
pub fn otsu_threshold(img: &GrayImage) -> u8 {
    let hist = img.histogram();
    let total: u64 = hist.iter().sum();
    let sum_all: f64 = hist
        .iter()
        .enumerate()
        .map(|(i, &c)| i as f64 * c as f64)
        .sum();
    let mut sum_b = 0.0f64;
    let mut w_b = 0u64;
    let mut best = 0u8;
    let mut best_var = -1.0f64;
    for t in 0..256usize {
        w_b += hist[t];
        if w_b == 0 {
            continue;
        }
        let w_f = total - w_b;
        if w_f == 0 {
            break;
        }
        sum_b += t as f64 * hist[t] as f64;
        let m_b = sum_b / w_b as f64;
        let m_f = (sum_all - sum_b) / w_f as f64;
        let var = w_b as f64 * w_f as f64 * (m_b - m_f) * (m_b - m_f);
        if var > best_var {
            best_var = var;
            best = t as u8;
        }
    }
    best
}

/// Segments an image: Otsu threshold, then 4-connected components of the
/// foreground, labelled `1..`; background keeps label 0. Components smaller
/// than `min_size` pixels are merged into the background.
pub fn segment_image(img: &GrayImage, min_size: usize) -> Segmentation {
    static LAT: rcmo_obs::LazyHistogram =
        rcmo_obs::LazyHistogram::new("imaging.segment.us", rcmo_obs::bounds::LATENCY_US);
    let _t = LAT.start_timer();
    let threshold = otsu_threshold(img);
    let w = img.width();
    let h = img.height();
    let mut labels = vec![0u32; w * h];
    let mut next = 1u32;
    for start in 0..w * h {
        if labels[start] != 0 || img.pixels()[start] <= threshold {
            continue;
        }
        // BFS flood fill.
        let mut member = Vec::new();
        let mut queue = vec![start];
        labels[start] = next;
        while let Some(p) = queue.pop() {
            member.push(p);
            let (x, y) = (p % w, p / w);
            let mut push = |q: usize| {
                if labels[q] == 0 && img.pixels()[q] > threshold {
                    labels[q] = next;
                    queue.push(q);
                }
            };
            if x > 0 {
                push(p - 1);
            }
            if x + 1 < w {
                push(p + 1);
            }
            if y > 0 {
                push(p - w);
            }
            if y + 1 < h {
                push(p + w);
            }
        }
        if member.len() < min_size {
            for p in member {
                labels[p] = 0;
            }
        } else {
            next += 1;
        }
    }
    let num_segments = next as usize;
    Segmentation {
        width: w,
        height: h,
        labels,
        num_segments,
        fills: vec![SegmentFill::Original; num_segments],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phantom::ct_phantom;

    fn two_blobs() -> GrayImage {
        GrayImage::from_fn(32, 32, |x, y| {
            let in_a = (4..10).contains(&x) && (4..10).contains(&y);
            let in_b = (20..30).contains(&x) && (20..30).contains(&y);
            if in_a || in_b {
                220
            } else {
                10
            }
        })
        .unwrap()
    }

    #[test]
    fn otsu_separates_bimodal() {
        let img = two_blobs();
        let t = otsu_threshold(&img);
        assert!((10..220).contains(&t), "threshold {t}");
    }

    #[test]
    fn two_components_found() {
        let seg = segment_image(&two_blobs(), 4);
        assert_eq!(seg.num_segments(), 3, "background + 2 blobs");
        assert_ne!(seg.label(5, 5), 0);
        assert_ne!(seg.label(25, 25), 0);
        assert_ne!(seg.label(5, 5), seg.label(25, 25));
        assert_eq!(seg.label(0, 0), 0);
        assert_eq!(seg.segment_size(seg.label(5, 5)), 36);
    }

    #[test]
    fn min_size_filters_specks() {
        let mut img = two_blobs();
        img.set(0, 31, 255); // a single bright pixel
        let seg = segment_image(&img, 4);
        assert_eq!(seg.num_segments(), 3, "speck merged into background");
        assert_eq!(seg.label(0, 31), 0);
    }

    #[test]
    fn fills_and_grid_render() {
        let img = two_blobs();
        let mut seg = segment_image(&img, 4);
        let a = seg.label(5, 5);
        let b = seg.label(25, 25);
        seg.set_fill(a, SegmentFill::Solid(140)).unwrap();
        seg.set_fill(b, SegmentFill::Checker(0, 255, 2)).unwrap();
        let r = seg.render(&img, 77).unwrap();
        // Interior of A: solid fill.
        assert_eq!(r.get(6, 6), 140);
        // Interior of B: checkerboard values only.
        let v = r.get(24, 24);
        assert!(v == 0 || v == 255 || v == 77);
        // Background keeps original pixels.
        assert_eq!(r.get(15, 15), 10);
        // Boundary pixels take the grid intensity somewhere around A.
        assert_eq!(r.get(9, 6), 77);
        assert!(seg.set_fill(99, SegmentFill::Original).is_err());
    }

    #[test]
    fn render_rejects_dimension_mismatch() {
        let seg = segment_image(&two_blobs(), 4);
        let other = GrayImage::new(8, 8).unwrap();
        assert!(seg.render(&other, 255).is_err());
    }

    #[test]
    fn phantom_segments_contain_lesions() {
        let img = ct_phantom(128, 4, 3).unwrap();
        let seg = segment_image(&img, 6);
        assert!(
            seg.num_segments() >= 2,
            "found {} segments",
            seg.num_segments()
        );
        // Foreground coverage is a small fraction of the head.
        let fg: usize = (1..seg.num_segments() as u32)
            .map(|l| seg.segment_size(l))
            .sum();
        assert!(fg > 0 && fg < 128 * 128 / 2);
    }

    #[test]
    fn stripes_fill_renders_two_intensities() {
        let img = two_blobs();
        let mut seg = segment_image(&img, 4);
        let a = seg.label(5, 5);
        seg.set_fill(a, SegmentFill::Stripes(10, 240, 2)).unwrap();
        let r = seg.render(&img, 1).unwrap();
        let mut seen = std::collections::HashSet::new();
        for y in 5..9 {
            for x in 5..9 {
                seen.insert(r.get(x, y));
            }
        }
        assert!(seen.contains(&10) && seen.contains(&240));
    }
}
