//! Quality metrics used by the compression experiments.

use crate::image::GrayImage;

/// Mean squared error between two equally sized images.
///
/// # Panics
/// Panics if the images have different dimensions (a programming error in
/// an experiment harness, not a recoverable condition).
pub fn mse(a: &GrayImage, b: &GrayImage) -> f64 {
    assert_eq!(a.width(), b.width(), "width mismatch");
    assert_eq!(a.height(), b.height(), "height mismatch");
    let sum: f64 = a
        .pixels()
        .iter()
        .zip(b.pixels())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum();
    sum / a.pixels().len() as f64
}

/// Peak signal-to-noise ratio in dB (peak = 255). Identical images give
/// `f64::INFINITY`.
pub fn psnr(a: &GrayImage, b: &GrayImage) -> f64 {
    let m = mse(a, b);
    if m == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / m).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images() {
        let a = GrayImage::from_fn(8, 8, |x, y| (x * y) as u8).unwrap();
        assert_eq!(mse(&a, &a), 0.0);
        assert!(psnr(&a, &a).is_infinite());
    }

    #[test]
    fn known_mse() {
        let a = GrayImage::from_fn(4, 1, |_, _| 10).unwrap();
        let b = GrayImage::from_fn(4, 1, |_, _| 13).unwrap();
        assert!((mse(&a, &b) - 9.0).abs() < 1e-12);
        let p = psnr(&a, &b);
        // 10 log10(255^2 / 9) ≈ 38.59 dB
        assert!((p - 38.588).abs() < 0.01, "psnr {p}");
    }

    #[test]
    fn psnr_orders_by_quality() {
        let a = GrayImage::from_fn(16, 16, |x, _| (x * 16) as u8).unwrap();
        let slightly =
            GrayImage::from_fn(16, 16, |x, _| ((x * 16) as u8).saturating_add(1)).unwrap();
        let badly = GrayImage::from_fn(16, 16, |x, _| ((x * 16) as u8).saturating_add(30)).unwrap();
        assert!(psnr(&a, &slightly) > psnr(&a, &badly));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn dimension_mismatch_panics() {
        let a = GrayImage::new(4, 4).unwrap();
        let b = GrayImage::new(5, 4).unwrap();
        let _ = mse(&a, &b);
    }
}
