//! Shared rooms: membership, per-viewer presentation sessions, the in-room
//! object registry, freeze/release, and delta broadcast.

use crate::error::{Result, ServerError};
use crate::events::{Action, Delta, RoomEvent, TriggerCondition};
use crate::resync::{ChangeLog, Resync, RoomSnapshot, SequencedEvent, DEFAULT_CHANGE_LOG_CAPACITY};
use crossbeam::channel::Sender;
use rcmo_core::{
    MultimediaDocument, Presentation, PresentationEngine, ViewerChoice, ViewerSession,
};
use rcmo_imaging::AnnotatedImage;
use rcmo_obs::{bounds, Counter, Histogram, Metrics, Registry};
use std::collections::HashMap;

/// Identifier of a room.
pub type RoomId = u64;

/// Identifier of a shared object inside a room (the multimedia database id
/// of the underlying image object).
pub type SharedObjectId = u64;

/// Aggregate propagation statistics of a room: a typed view over the
/// room's metrics registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoomStats {
    /// Events delivered (events × recipients). Only *successful* sends
    /// count; failed sends land in `delivery_failures`.
    pub events_delivered: u64,
    /// Total bytes delivered (approximate wire size × recipients).
    pub bytes_delivered: u64,
    /// Events appended to the room's change buffer.
    pub changes_logged: u64,
    /// Sends that failed because the member's receiver was gone.
    pub delivery_failures: u64,
    /// Members removed after their connection was detected dead.
    pub members_reaped: u64,
}

impl RoomStats {
    /// Reads the room counters out of a metrics registry.
    pub fn from_registry(obs: &Registry) -> Self {
        RoomStats {
            events_delivered: obs.read_counter("server.room.delivered.count"),
            bytes_delivered: obs.read_counter("server.room.delivered.bytes"),
            changes_logged: obs.read_counter("server.room.logged.count"),
            delivery_failures: obs.read_counter("server.room.delivery_failure.count"),
            members_reaped: obs.read_counter("server.room.reaped.count"),
        }
    }
}

#[derive(Debug)]
struct Member {
    name: String,
    sender: Sender<SequencedEvent>,
}

/// A shared room. All access goes through the
/// [`InteractionServer`](crate::server::InteractionServer), which wraps
/// every room in its own `Arc<Mutex<Room>>`
/// ([`RoomHandle`](crate::server::RoomHandle)) — `&mut self` here is
/// exclusive by construction, and independent rooms are mutated fully in
/// parallel.
#[derive(Debug)]
pub struct Room {
    /// Room id.
    pub id: RoomId,
    /// Display name.
    pub name: String,
    /// The multimedia database id of the room's document.
    pub document_id: u64,
    pub(crate) doc: MultimediaDocument,
    members: Vec<Member>,
    sessions: HashMap<String, ViewerSession>,
    /// The presentation last broadcast per viewer; the baseline the next
    /// `PresentationChanged` deltas are computed against.
    last_presentations: HashMap<String, Presentation>,
    objects: HashMap<SharedObjectId, AnnotatedImage>,
    freezes: HashMap<SharedObjectId, String>,
    /// The "large memory buffer which maintains the changes made on the
    /// changed objects" — a bounded ring (see [`ChangeLog`]).
    change_log: ChangeLog,
    engine: PresentationEngine,
    obs: Registry,
    delivered: Counter,
    delivered_bytes: Counter,
    logged: Counter,
    delivery_failures: Counter,
    reaped: Counter,
    broadcast_lat: Histogram,
    resync_lat: Histogram,
    resync_replays: Counter,
    resync_snapshots: Counter,
    triggers: Vec<(u64, String, TriggerCondition)>,
    next_trigger: u64,
}

impl Room {
    pub(crate) fn new(
        id: RoomId,
        name: &str,
        document_id: u64,
        doc: MultimediaDocument,
        parent: &Registry,
    ) -> Room {
        let obs = Registry::with_parent(parent);
        let delivered = obs.counter("server.room.delivered.count");
        let delivered_bytes = obs.counter("server.room.delivered.bytes");
        let logged = obs.counter("server.room.logged.count");
        let delivery_failures = obs.counter("server.room.delivery_failure.count");
        let reaped = obs.counter("server.room.reaped.count");
        let broadcast_lat = obs.histogram("server.room.broadcast.us", bounds::LATENCY_US);
        let resync_lat = obs.histogram("server.room.resync.us", bounds::LATENCY_US);
        let resync_replays = obs.counter("server.room.resync.replay.count");
        let resync_snapshots = obs.counter("server.room.resync.snapshot.count");
        Room {
            id,
            name: name.to_string(),
            document_id,
            doc,
            members: Vec::new(),
            sessions: HashMap::new(),
            last_presentations: HashMap::new(),
            objects: HashMap::new(),
            freezes: HashMap::new(),
            change_log: ChangeLog::new(DEFAULT_CHANGE_LOG_CAPACITY),
            engine: PresentationEngine::new(),
            obs,
            delivered,
            delivered_bytes,
            logged,
            delivery_failures,
            reaped,
            broadcast_lat,
            resync_lat,
            resync_replays,
            resync_snapshots,
            triggers: Vec::new(),
            next_trigger: 1,
        }
    }

    /// Current members.
    pub fn member_names(&self) -> Vec<&str> {
        self.members.iter().map(|m| m.name.as_str()).collect()
    }

    /// Propagation statistics.
    pub fn stats(&self) -> RoomStats {
        self.metrics()
    }

    /// The room's bounded change buffer.
    pub fn change_log(&self) -> &ChangeLog {
        &self.change_log
    }

    /// Re-bounds the change buffer (shrinking evicts the oldest events).
    pub(crate) fn set_change_log_capacity(&mut self, capacity: usize) {
        self.change_log.set_capacity(capacity);
    }

    /// The shared document.
    pub fn document(&self) -> &MultimediaDocument {
        &self.doc
    }

    /// Logs `event` (assigning its sequence number) and sends it to every
    /// member. Returns the names of members whose connection proved dead —
    /// the caller (`broadcast`) reaps them.
    fn deliver(&mut self, event: RoomEvent) -> Vec<String> {
        let sequenced = self.change_log.push(event);
        self.logged.inc();
        let size = sequenced.event.encoded_len() as u64;
        let mut dead = Vec::new();
        for m in &self.members {
            if m.sender.send(sequenced.clone()).is_ok() {
                self.delivered.inc();
                self.delivered_bytes.add(size);
            } else {
                // The receiver is gone: a crashed or disconnected client.
                self.delivery_failures.inc();
                dead.push(m.name.clone());
            }
        }
        dead
    }

    /// Broadcasts an event to every member, appends it to the change
    /// buffer, and reaps any member whose connection turns out to be dead
    /// (their freezes are released, and `Released`/`Left` events are
    /// propagated — which may in turn expose further dead members).
    fn broadcast(&mut self, event: RoomEvent) {
        let _t = self.broadcast_lat.start_timer_owned();
        let mut dead = self.deliver(event);
        while let Some(user) = dead.pop() {
            let before = self.members.len();
            self.members.retain(|m| m.name != user);
            if self.members.len() == before {
                continue; // already reaped this round
            }
            self.sessions.remove(&user);
            self.last_presentations.remove(&user);
            self.reaped.inc();
            let released: Vec<SharedObjectId> = self
                .freezes
                .iter()
                .filter(|(_, holder)| holder.as_str() == user)
                .map(|(&o, _)| o)
                .collect();
            for object in released {
                self.freezes.remove(&object);
                dead.extend(self.deliver(RoomEvent::Released {
                    object,
                    by: user.clone(),
                }));
            }
            dead.extend(self.deliver(RoomEvent::Left { user }));
        }
    }

    pub(crate) fn join(&mut self, user: &str, sender: Sender<SequencedEvent>) -> Result<()> {
        if self.members.iter().any(|m| m.name == user) {
            return Err(ServerError::AlreadyJoined(user.to_string()));
        }
        self.members.push(Member {
            name: user.to_string(),
            sender,
        });
        self.sessions
            .insert(user.to_string(), ViewerSession::new(user));
        self.broadcast(RoomEvent::Joined {
            user: user.to_string(),
        });
        Ok(())
    }

    pub(crate) fn leave(&mut self, user: &str) -> Result<()> {
        let before = self.members.len();
        self.members.retain(|m| m.name != user);
        if self.members.len() == before {
            return Err(ServerError::NotInRoom {
                user: user.to_string(),
                room: self.id,
            });
        }
        self.sessions.remove(user);
        self.last_presentations.remove(user);
        // Freezes held by the leaver are released.
        let released: Vec<SharedObjectId> = self
            .freezes
            .iter()
            .filter(|(_, holder)| holder.as_str() == user)
            .map(|(&o, _)| o)
            .collect();
        for object in released {
            self.freezes.remove(&object);
            self.broadcast(RoomEvent::Released {
                object,
                by: user.to_string(),
            });
        }
        self.broadcast(RoomEvent::Left {
            user: user.to_string(),
        });
        Ok(())
    }

    /// Reconnects `user` with a fresh event channel and computes what they
    /// missed since `last_seen` (the highest sequence number the client
    /// observed before disconnecting; `0` for "nothing").
    ///
    /// Within the replay horizon the client receives the exact missed tail
    /// and converges to the identical total event order; beyond it, a
    /// [`RoomSnapshot`] of the room's current state (the fold of every
    /// evicted event). If the member had already been reaped, they rejoin
    /// — partners see a `Joined` event, and the join itself is part of the
    /// replayed order for everyone *else*, never for the resyncing client
    /// (their catch-up is computed first).
    pub(crate) fn resync(
        &mut self,
        user: &str,
        sender: Sender<SequencedEvent>,
        last_seen: u64,
    ) -> Result<Resync> {
        let _t = self.resync_lat.start_timer_owned();
        // Catch-up is computed before any rejoin event so the client never
        // replays its own reconnection.
        let catch_up = match self.change_log.events_since(last_seen) {
            Some(events) => {
                self.resync_replays.add(events.len() as u64);
                Resync::Events(events)
            }
            None => {
                self.resync_snapshots.inc();
                Resync::Snapshot(self.snapshot())
            }
        };
        if let Some(m) = self.members.iter_mut().find(|m| m.name == user) {
            // Still considered a member (dead connection not yet detected):
            // swap in the live channel silently.
            m.sender = sender;
        } else {
            self.members.push(Member {
                name: user.to_string(),
                sender,
            });
            self.sessions
                .entry(user.to_string())
                .or_insert_with(|| ViewerSession::new(user));
            self.broadcast(RoomEvent::Joined {
                user: user.to_string(),
            });
        }
        Ok(catch_up)
    }

    /// The room's current state as a catch-up snapshot, reflecting every
    /// event through `change_log.last_seq()`.
    pub(crate) fn snapshot(&self) -> RoomSnapshot {
        let mut objects: Vec<(SharedObjectId, Vec<u8>)> = self
            .objects
            .iter()
            .map(|(&id, img)| (id, img.to_bytes()))
            .collect();
        objects.sort_by_key(|(id, _)| *id);
        let mut freezes: Vec<(SharedObjectId, String)> = self
            .freezes
            .iter()
            .map(|(&o, holder)| (o, holder.clone()))
            .collect();
        freezes.sort_by_key(|(o, _)| *o);
        RoomSnapshot {
            seq: self.change_log.last_seq(),
            document: self.doc.to_bytes(),
            objects,
            freezes,
            members: self.members.iter().map(|m| m.name.clone()).collect(),
        }
    }

    pub(crate) fn require_member(&self, user: &str) -> Result<()> {
        if self.members.iter().any(|m| m.name == user) {
            Ok(())
        } else {
            Err(ServerError::NotInRoom {
                user: user.to_string(),
                room: self.id,
            })
        }
    }

    fn check_not_frozen_by_other(&self, object: SharedObjectId, user: &str) -> Result<()> {
        match self.freezes.get(&object) {
            Some(holder) if holder != user => Err(ServerError::Frozen {
                object,
                holder: holder.clone(),
            }),
            _ => Ok(()),
        }
    }

    /// Registers an object (a working copy of a database image) in the room.
    pub(crate) fn insert_object(&mut self, id: SharedObjectId, image: AnnotatedImage) {
        self.objects.insert(id, image);
    }

    /// Read access to a shared object.
    pub fn object(&self, id: SharedObjectId) -> Result<&AnnotatedImage> {
        self.objects.get(&id).ok_or(ServerError::UnknownObject(id))
    }

    /// Removes an object from the room ("changed objects are saved and
    /// discarded from the room as soon as they are not needed").
    pub(crate) fn take_object(&mut self, id: SharedObjectId) -> Result<AnnotatedImage> {
        self.objects
            .remove(&id)
            .ok_or(ServerError::UnknownObject(id))
    }

    /// The viewer's current presentation of the room document.
    pub fn presentation_for(&self, user: &str) -> Result<Presentation> {
        let session = self.sessions.get(user).ok_or(ServerError::NotInRoom {
            user: user.to_string(),
            room: self.id,
        })?;
        Ok(self.engine.presentation_for(&self.doc, session)?)
    }

    /// Registers a dynamic event trigger owned by `user`; returns its id.
    pub(crate) fn add_trigger(&mut self, user: &str, condition: TriggerCondition) -> Result<u64> {
        self.require_member(user)?;
        let id = self.next_trigger;
        self.next_trigger += 1;
        self.triggers.push((id, user.to_string(), condition));
        Ok(id)
    }

    /// Removes a trigger; only its owner may do so.
    pub(crate) fn remove_trigger(&mut self, user: &str, id: u64) -> Result<()> {
        match self.triggers.iter().position(|(tid, _, _)| *tid == id) {
            Some(i) if self.triggers[i].1 == user => {
                self.triggers.remove(i);
                Ok(())
            }
            Some(_) => Err(ServerError::Invalid(format!(
                "trigger {id} is not owned by '{user}'"
            ))),
            None => Err(ServerError::Invalid(format!("no trigger {id}"))),
        }
    }

    /// Registered triggers (id, owner).
    pub fn triggers(&self) -> Vec<(u64, &str)> {
        self.triggers
            .iter()
            .map(|(id, owner, _)| (*id, owner.as_str()))
            .collect()
    }

    /// Scans retained events with sequence number ≥ `from_seq` and fires
    /// matching triggers. Trigger events themselves are never matched (no
    /// cascades).
    fn fire_triggers(&mut self, from_seq: u64) {
        let mut fired: Vec<RoomEvent> = Vec::new();
        for sequenced in self.change_log.retained_from(from_seq) {
            let event = &sequenced.event;
            if matches!(event, RoomEvent::TriggerFired { .. }) {
                continue;
            }
            for (id, owner, condition) in &self.triggers {
                if condition.matches(event) {
                    fired.push(RoomEvent::TriggerFired {
                        trigger: *id,
                        owner: owner.clone(),
                        cause: format!("{event:?}"),
                    });
                }
            }
        }
        for event in fired {
            self.broadcast(event);
        }
    }

    /// Applies a client action, propagating the resulting deltas. This is
    /// the server's core dispatch (the paper's "use case: updating the
    /// presentation", Fig. 4b, plus the object operations of §3).
    pub(crate) fn act(&mut self, user: &str, action: Action) -> Result<()> {
        self.require_member(user)?;
        let log_start = self.change_log.last_seq() + 1;
        let result = self.act_inner(user, action);
        if result.is_ok() {
            self.fire_triggers(log_start);
        }
        result
    }

    fn act_inner(&mut self, user: &str, action: Action) -> Result<()> {
        match action {
            Action::Choose { component, form } => {
                {
                    let session = self.sessions.get_mut(user).expect("member has session");
                    session.choose(&self.doc, ViewerChoice { component, form })?;
                }
                self.broadcast(RoomEvent::ChoiceMade {
                    user: user.to_string(),
                    component,
                    form: Some(form),
                });
                self.push_presentation_update(user)?;
            }
            Action::Unchoose { component } => {
                {
                    let session = self.sessions.get_mut(user).expect("member has session");
                    session.unchoose(component);
                }
                self.broadcast(RoomEvent::ChoiceMade {
                    user: user.to_string(),
                    component,
                    form: None,
                });
                self.push_presentation_update(user)?;
            }
            Action::AddText { object, element } => {
                self.check_not_frozen_by_other(object, user)?;
                let img = self
                    .objects
                    .get_mut(&object)
                    .ok_or(ServerError::UnknownObject(object))?;
                let id = img.add_text(element.clone());
                self.broadcast(RoomEvent::ObjectChanged {
                    object,
                    by: user.to_string(),
                    delta: Delta::TextAdded { id, element },
                });
            }
            Action::AddLine { object, element } => {
                self.check_not_frozen_by_other(object, user)?;
                let img = self
                    .objects
                    .get_mut(&object)
                    .ok_or(ServerError::UnknownObject(object))?;
                let id = img.add_line(element);
                self.broadcast(RoomEvent::ObjectChanged {
                    object,
                    by: user.to_string(),
                    delta: Delta::LineAdded { id, element },
                });
            }
            Action::DeleteElement { object, element } => {
                self.check_not_frozen_by_other(object, user)?;
                let img = self
                    .objects
                    .get_mut(&object)
                    .ok_or(ServerError::UnknownObject(object))?;
                img.delete_element(element)?;
                self.broadcast(RoomEvent::ObjectChanged {
                    object,
                    by: user.to_string(),
                    delta: Delta::ElementDeleted { id: element },
                });
            }
            Action::ApplyOperation {
                component,
                trigger_form,
                operation,
                global,
            } => {
                if global {
                    // Component ids are u32; a document so large that its
                    // component count no longer fits must be rejected whole
                    // — the old `as u32` cast silently truncated and would
                    // have rebased every session onto the wrong components.
                    let components = u32::try_from(self.doc.num_components()).map_err(|_| {
                        ServerError::Invalid(format!(
                            "document has {} components, exceeding the u32 component-id space",
                            self.doc.num_components()
                        ))
                    })?;
                    self.doc
                        .add_global_operation(component, trigger_form, &operation)?;
                    // Viewer-local extensions were built against the old
                    // network; the prototype's policy is to re-derive local
                    // state after a global edit (identity rebase keeps the
                    // explicit choices, drops extensions and context).
                    let identity: Vec<Option<rcmo_core::ComponentId>> = (0..components)
                        .map(|i| Some(rcmo_core::ComponentId(i)))
                        .collect();
                    for session in self.sessions.values_mut() {
                        session.rebase(&identity);
                    }
                    self.broadcast(RoomEvent::OperationApplied {
                        user: user.to_string(),
                        component,
                        operation,
                    });
                    // Everyone's presentation may have changed.
                    let names: Vec<String> = self.members.iter().map(|m| m.name.clone()).collect();
                    for name in names {
                        self.push_presentation_update(&name)?;
                    }
                } else {
                    let session = self.sessions.get_mut(user).expect("member has session");
                    session.apply_local_operation(
                        &self.doc,
                        component,
                        trigger_form,
                        &operation,
                    )?;
                    self.push_presentation_update(user)?;
                }
            }
            Action::Freeze { object } => {
                if !self.objects.contains_key(&object) {
                    return Err(ServerError::UnknownObject(object));
                }
                if let Some(holder) = self.freezes.get(&object) {
                    return Err(ServerError::FreezeConflict(format!(
                        "object {object} already frozen by '{holder}'"
                    )));
                }
                self.freezes.insert(object, user.to_string());
                self.broadcast(RoomEvent::Frozen {
                    object,
                    by: user.to_string(),
                });
            }
            Action::Release { object } => match self.freezes.get(&object) {
                Some(holder) if holder == user => {
                    self.freezes.remove(&object);
                    self.broadcast(RoomEvent::Released {
                        object,
                        by: user.to_string(),
                    });
                }
                Some(holder) => {
                    return Err(ServerError::FreezeConflict(format!(
                        "'{user}' cannot release a freeze held by '{holder}'"
                    )))
                }
                None => {
                    return Err(ServerError::FreezeConflict(format!(
                        "object {object} is not frozen"
                    )))
                }
            },
            Action::Chat { text } => {
                self.broadcast(RoomEvent::Chat {
                    user: user.to_string(),
                    text,
                });
            }
        }
        Ok(())
    }

    /// Broadcasts a server-wide announcement into this room (the sender
    /// need not be a member — it is the administrator).
    pub(crate) fn announce(&mut self, user: &str, text: &str) {
        self.broadcast(RoomEvent::Chat {
            user: format!("{user} (announcement)"),
            text: text.to_string(),
        });
    }

    /// Broadcasts a shared analysis result (cooperative audio browsing).
    pub(crate) fn share_analysis(
        &mut self,
        user: &str,
        object: SharedObjectId,
        summary: &str,
    ) -> Result<()> {
        self.require_member(user)?;
        self.broadcast(RoomEvent::AudioAnalysed {
            object,
            by: user.to_string(),
            summary: summary.to_string(),
        });
        Ok(())
    }

    /// Recomputes `viewer`'s presentation (incrementally, through the
    /// engine's reconfiguration caches) and broadcasts only the delta
    /// against the presentation last broadcast for that viewer. A viewer
    /// with no broadcast history is diffed against the author-default
    /// presentation, which is what their client rendered on join.
    fn push_presentation_update(&mut self, viewer: &str) -> Result<()> {
        let p = self.presentation_for(viewer)?;
        let prev = self
            .last_presentations
            .remove(viewer)
            .unwrap_or_else(|| self.engine.default_presentation(&self.doc));
        let deltas = prev.diff(&p);
        let transfer = prev.delta_transfer_bytes(&p, &self.doc);
        self.last_presentations.insert(viewer.to_string(), p);
        self.broadcast(RoomEvent::PresentationChanged {
            viewer: viewer.to_string(),
            transfer_bytes: transfer,
            deltas,
        });
        Ok(())
    }
}

impl Metrics for Room {
    type View = RoomStats;

    fn obs(&self) -> &Registry {
        &self.obs
    }

    fn metrics(&self) -> RoomStats {
        RoomStats::from_registry(&self.obs)
    }
}
