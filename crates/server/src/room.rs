//! Shared rooms: membership, per-viewer presentation sessions, the in-room
//! object registry, freeze/release, and delta broadcast.

use crate::error::{JoinRejectCause, Result, ServerError};
use crate::events::{Action, Delta, RoomEvent, TriggerCondition};
use crate::resync::{ChangeLog, Resync, RoomSnapshot, SequencedEvent, DEFAULT_CHANGE_LOG_CAPACITY};
use crossbeam::channel::Sender;
use rcmo_core::{
    MultimediaDocument, Presentation, PresentationEngine, ViewerChoice, ViewerSession,
};
use rcmo_imaging::AnnotatedImage;
use rcmo_obs::{bounds, Counter, Histogram, Metrics, Registry};
use std::collections::HashMap;

/// Identifier of a room.
pub type RoomId = u64;

/// Identifier of a shared object inside a room (the multimedia database id
/// of the underlying image object).
pub type SharedObjectId = u64;

/// Aggregate propagation statistics of a room: a typed view over the
/// room's metrics registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoomStats {
    /// Events delivered (events × recipients). Only *successful* sends
    /// count; failed sends land in `delivery_failures`.
    pub events_delivered: u64,
    /// Total bytes delivered (approximate wire size × recipients).
    pub bytes_delivered: u64,
    /// Events appended to the room's change buffer.
    pub changes_logged: u64,
    /// Sends that failed because the member's receiver was gone.
    pub delivery_failures: u64,
    /// Members removed after their connection was detected dead.
    pub members_reaped: u64,
}

impl RoomStats {
    /// Reads the room counters out of a metrics registry.
    pub fn from_registry(obs: &Registry) -> Self {
        RoomStats {
            events_delivered: obs.read_counter("server.room.delivered.count"),
            bytes_delivered: obs.read_counter("server.room.delivered.bytes"),
            changes_logged: obs.read_counter("server.room.logged.count"),
            delivery_failures: obs.read_counter("server.room.delivery_failure.count"),
            members_reaped: obs.read_counter("server.room.reaped.count"),
        }
    }
}

#[derive(Debug)]
struct Member {
    name: String,
    sender: Sender<SequencedEvent>,
}

/// A room's full migratable state: what freeze → snapshot exports and what
/// the destination shard rebuilds from. Built on the resync
/// [`RoomSnapshot`] (the state fold every client catch-up already uses),
/// extended with what a *server* needs that a client does not: per-viewer
/// sessions (choices survive the move), the retained change-log tail (the
/// destination serves the same replay horizon), and the room's own
/// configuration.
#[derive(Debug, Clone)]
pub struct RoomState {
    /// Display name.
    pub name: String,
    /// The multimedia database id of the room's document.
    pub document_id: u64,
    /// The resync-path state snapshot (document, objects, freezes,
    /// members, and the sequence number the state reflects).
    pub snapshot: RoomSnapshot,
    /// Per-viewer presentation sessions, keyed by member name.
    pub sessions: Vec<(String, ViewerSession)>,
    /// The retained change-log tail ending at `snapshot.seq` (dense).
    pub tail: Vec<SequencedEvent>,
    /// The change log's ring capacity.
    pub change_log_capacity: usize,
    /// Member capacity (`None` = unbounded).
    pub capacity: Option<usize>,
    /// Registered triggers (id, owner, condition).
    pub triggers: Vec<(u64, String, TriggerCondition)>,
    /// The id the next registered trigger receives.
    pub next_trigger: u64,
}

/// A shared room. All access goes through the
/// [`InteractionServer`](crate::server::InteractionServer), which wraps
/// every room in its own `Arc<Mutex<Room>>`
/// ([`RoomHandle`](crate::server::RoomHandle)) — `&mut self` here is
/// exclusive by construction, and independent rooms are mutated fully in
/// parallel.
#[derive(Debug)]
pub struct Room {
    /// Room id.
    pub id: RoomId,
    /// Display name.
    pub name: String,
    /// The multimedia database id of the room's document.
    pub document_id: u64,
    pub(crate) doc: MultimediaDocument,
    members: Vec<Member>,
    sessions: HashMap<String, ViewerSession>,
    /// The presentation last broadcast per viewer; the baseline the next
    /// `PresentationChanged` deltas are computed against.
    last_presentations: HashMap<String, Presentation>,
    objects: HashMap<SharedObjectId, AnnotatedImage>,
    freezes: HashMap<SharedObjectId, String>,
    /// The "large memory buffer which maintains the changes made on the
    /// changed objects" — a bounded ring (see [`ChangeLog`]).
    change_log: ChangeLog,
    engine: PresentationEngine,
    /// Maximum members (`None` = unbounded). Joins beyond it are rejected
    /// with [`JoinRejectCause::AtCapacity`].
    capacity: Option<usize>,
    /// Set for the freeze→snapshot→thaw window of a live migration: all
    /// mutating calls are refused ([`ServerError::Migrating`]) so the
    /// exported state is the room's final word on its shard.
    frozen_for_migration: bool,
    /// Replication tap: every sequenced event is also sent here (the
    /// cluster journal that failover rebuilds from). A broken tap is
    /// dropped silently — it is an observer, never a member.
    tap: Option<Sender<SequencedEvent>>,
    obs: Registry,
    delivered: Counter,
    delivered_bytes: Counter,
    logged: Counter,
    delivery_failures: Counter,
    reaped: Counter,
    broadcast_lat: Histogram,
    resync_lat: Histogram,
    resync_replays: Counter,
    resync_snapshots: Counter,
    triggers: Vec<(u64, String, TriggerCondition)>,
    next_trigger: u64,
}

impl Room {
    pub(crate) fn new(
        id: RoomId,
        name: &str,
        document_id: u64,
        doc: MultimediaDocument,
        parent: &Registry,
    ) -> Room {
        let obs = Registry::with_parent(parent);
        let delivered = obs.counter("server.room.delivered.count");
        let delivered_bytes = obs.counter("server.room.delivered.bytes");
        let logged = obs.counter("server.room.logged.count");
        let delivery_failures = obs.counter("server.room.delivery_failure.count");
        let reaped = obs.counter("server.room.reaped.count");
        let broadcast_lat = obs.histogram("server.room.broadcast.us", bounds::LATENCY_US);
        let resync_lat = obs.histogram("server.room.resync.us", bounds::LATENCY_US);
        let resync_replays = obs.counter("server.room.resync.replay.count");
        let resync_snapshots = obs.counter("server.room.resync.snapshot.count");
        Room {
            id,
            name: name.to_string(),
            document_id,
            doc,
            members: Vec::new(),
            sessions: HashMap::new(),
            last_presentations: HashMap::new(),
            objects: HashMap::new(),
            freezes: HashMap::new(),
            change_log: ChangeLog::new(DEFAULT_CHANGE_LOG_CAPACITY),
            engine: PresentationEngine::new(),
            capacity: None,
            frozen_for_migration: false,
            tap: None,
            obs,
            delivered,
            delivered_bytes,
            logged,
            delivery_failures,
            reaped,
            broadcast_lat,
            resync_lat,
            resync_replays,
            resync_snapshots,
            triggers: Vec::new(),
            next_trigger: 1,
        }
    }

    /// Current members.
    pub fn member_names(&self) -> Vec<&str> {
        self.members.iter().map(|m| m.name.as_str()).collect()
    }

    /// Propagation statistics.
    pub fn stats(&self) -> RoomStats {
        self.metrics()
    }

    /// The room's bounded change buffer.
    pub fn change_log(&self) -> &ChangeLog {
        &self.change_log
    }

    /// Re-bounds the change buffer (shrinking evicts the oldest events).
    pub(crate) fn set_change_log_capacity(&mut self, capacity: usize) {
        self.change_log.set_capacity(capacity);
    }

    /// The shared document.
    pub fn document(&self) -> &MultimediaDocument {
        &self.doc
    }

    /// Logs `event` (assigning its sequence number) and sends it to every
    /// member. Returns the names of members whose connection proved dead —
    /// the caller (`broadcast`) reaps them.
    fn deliver(&mut self, event: RoomEvent) -> Vec<String> {
        let sequenced = self.change_log.push(event);
        self.logged.inc();
        // The replication tap observes the identical total order the
        // members do; it is not a member (never reaped, never counted).
        if let Some(tap) = &self.tap {
            if tap.send(sequenced.clone()).is_err() {
                self.tap = None;
            }
        }
        let size = sequenced.event.encoded_len() as u64;
        let mut dead = Vec::new();
        for m in &self.members {
            if m.sender.send(sequenced.clone()).is_ok() {
                self.delivered.inc();
                self.delivered_bytes.add(size);
            } else {
                // The receiver is gone: a crashed or disconnected client.
                self.delivery_failures.inc();
                dead.push(m.name.clone());
            }
        }
        dead
    }

    /// Broadcasts an event to every member, appends it to the change
    /// buffer, and reaps any member whose connection turns out to be dead
    /// (their freezes are released, and `Released`/`Left` events are
    /// propagated — which may in turn expose further dead members).
    fn broadcast(&mut self, event: RoomEvent) {
        let _t = self.broadcast_lat.start_timer_owned();
        let mut dead = self.deliver(event);
        while let Some(user) = dead.pop() {
            let before = self.members.len();
            self.members.retain(|m| m.name != user);
            if self.members.len() == before {
                continue; // already reaped this round
            }
            self.sessions.remove(&user);
            self.last_presentations.remove(&user);
            self.reaped.inc();
            let released: Vec<SharedObjectId> = self
                .freezes
                .iter()
                .filter(|(_, holder)| holder.as_str() == user)
                .map(|(&o, _)| o)
                .collect();
            for object in released {
                self.freezes.remove(&object);
                dead.extend(self.deliver(RoomEvent::Released {
                    object,
                    by: user.clone(),
                }));
            }
            dead.extend(self.deliver(RoomEvent::Left { user }));
        }
    }

    pub(crate) fn join(&mut self, user: &str, sender: Sender<SequencedEvent>) -> Result<()> {
        if self.frozen_for_migration {
            return Err(ServerError::JoinRejected {
                room: self.id,
                cause: JoinRejectCause::RoomFrozenForMigration,
            });
        }
        if self.members.iter().any(|m| m.name == user) {
            return Err(ServerError::AlreadyJoined(user.to_string()));
        }
        if let Some(cap) = self.capacity {
            if self.members.len() >= cap {
                return Err(ServerError::JoinRejected {
                    room: self.id,
                    cause: JoinRejectCause::AtCapacity,
                });
            }
        }
        self.members.push(Member {
            name: user.to_string(),
            sender,
        });
        self.sessions
            .insert(user.to_string(), ViewerSession::new(user));
        self.broadcast(RoomEvent::Joined {
            user: user.to_string(),
        });
        Ok(())
    }

    pub(crate) fn leave(&mut self, user: &str) -> Result<()> {
        let before = self.members.len();
        self.members.retain(|m| m.name != user);
        if self.members.len() == before {
            return Err(ServerError::NotInRoom {
                user: user.to_string(),
                room: self.id,
            });
        }
        self.sessions.remove(user);
        self.last_presentations.remove(user);
        // Freezes held by the leaver are released.
        let released: Vec<SharedObjectId> = self
            .freezes
            .iter()
            .filter(|(_, holder)| holder.as_str() == user)
            .map(|(&o, _)| o)
            .collect();
        for object in released {
            self.freezes.remove(&object);
            self.broadcast(RoomEvent::Released {
                object,
                by: user.to_string(),
            });
        }
        self.broadcast(RoomEvent::Left {
            user: user.to_string(),
        });
        Ok(())
    }

    /// Reconnects `user` with a fresh event channel and computes what they
    /// missed since `last_seen` (the highest sequence number the client
    /// observed before disconnecting; `0` for "nothing").
    ///
    /// Within the replay horizon the client receives the exact missed tail
    /// and converges to the identical total event order; beyond it, a
    /// [`RoomSnapshot`] of the room's current state (the fold of every
    /// evicted event). If the member had already been reaped, they rejoin
    /// — partners see a `Joined` event, and the join itself is part of the
    /// replayed order for everyone *else*, never for the resyncing client
    /// (their catch-up is computed first).
    pub(crate) fn resync(
        &mut self,
        user: &str,
        sender: Sender<SequencedEvent>,
        last_seen: u64,
    ) -> Result<Resync> {
        let _t = self.resync_lat.start_timer_owned();
        if self.frozen_for_migration {
            // A resync may rejoin (a membership mutation): refused while
            // frozen, retried by the cluster after the thaw.
            return Err(ServerError::Migrating(self.id));
        }
        // Catch-up is computed before any rejoin event so the client never
        // replays its own reconnection.
        let catch_up = match self.change_log.events_since(last_seen) {
            Some(events) => {
                self.resync_replays.add(events.len() as u64);
                Resync::Events(events)
            }
            None => {
                self.resync_snapshots.inc();
                Resync::Snapshot(self.snapshot())
            }
        };
        if let Some(m) = self.members.iter_mut().find(|m| m.name == user) {
            // Still considered a member (dead connection not yet detected):
            // swap in the live channel silently.
            m.sender = sender;
        } else {
            self.members.push(Member {
                name: user.to_string(),
                sender,
            });
            self.sessions
                .entry(user.to_string())
                .or_insert_with(|| ViewerSession::new(user));
            self.broadcast(RoomEvent::Joined {
                user: user.to_string(),
            });
        }
        Ok(catch_up)
    }

    /// The room's current state as a catch-up snapshot, reflecting every
    /// event through `change_log.last_seq()`.
    pub(crate) fn snapshot(&self) -> RoomSnapshot {
        let mut objects: Vec<(SharedObjectId, Vec<u8>)> = self
            .objects
            .iter()
            .map(|(&id, img)| (id, img.to_bytes()))
            .collect();
        objects.sort_by_key(|(id, _)| *id);
        let mut freezes: Vec<(SharedObjectId, String)> = self
            .freezes
            .iter()
            .map(|(&o, holder)| (o, holder.clone()))
            .collect();
        freezes.sort_by_key(|(o, _)| *o);
        RoomSnapshot {
            seq: self.change_log.last_seq(),
            document: self.doc.to_bytes(),
            objects,
            freezes,
            members: self.members.iter().map(|m| m.name.clone()).collect(),
        }
    }

    /// Marks the room frozen for migration: every mutating call
    /// (`act`, `join`, `resync`) is refused with
    /// [`ServerError::Migrating`] / [`JoinRejectCause::RoomFrozenForMigration`]
    /// until [`Self::thaw`]. Read-only calls keep working.
    pub(crate) fn freeze_for_migration(&mut self) {
        self.frozen_for_migration = true;
    }

    /// Lifts a migration freeze (on the destination shard, after rebuild).
    pub(crate) fn thaw(&mut self) {
        self.frozen_for_migration = false;
    }

    /// `true` while the room is frozen for a live migration.
    pub fn is_frozen_for_migration(&self) -> bool {
        self.frozen_for_migration
    }

    /// Current member count.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Bounds the member count (`None` = unbounded).
    pub(crate) fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
    }

    /// Attaches (or replaces) the replication tap: a channel that observes
    /// the room's total event order without being a member.
    pub(crate) fn set_tap(&mut self, tap: Sender<SequencedEvent>) {
        self.tap = Some(tap);
    }

    /// Exports the room's full migratable state: the resync snapshot (the
    /// state fold), the per-viewer sessions, and the retained change-log
    /// tail so the destination can serve the same replay horizon. The room
    /// should be frozen first — the export is then its final word.
    pub(crate) fn export_state(&self) -> RoomState {
        RoomState {
            name: self.name.clone(),
            document_id: self.document_id,
            snapshot: self.snapshot(),
            sessions: self
                .sessions
                .iter()
                .map(|(name, s)| (name.clone(), s.clone()))
                .collect(),
            tail: self.change_log.retained().cloned().collect(),
            change_log_capacity: self.change_log.capacity(),
            capacity: self.capacity,
            triggers: self.triggers.clone(),
            next_trigger: self.next_trigger,
        }
    }

    /// Rebuilds a room from exported state under a (possibly different)
    /// shard's registry. `members` supplies the live event channels to
    /// carry over — a migration passes the source's senders so clients
    /// keep their streams; a failover passes none and clients resync.
    ///
    /// The rebuilt room continues the source's total order exactly: its
    /// change log is restored at the same `next_seq` with the same
    /// retained tail, so sequence numbers stay gap-free end-to-end.
    pub(crate) fn from_state(
        id: RoomId,
        state: RoomState,
        members: Vec<(String, Sender<SequencedEvent>)>,
        parent: &Registry,
    ) -> Result<Room> {
        let doc = MultimediaDocument::from_bytes(&state.snapshot.document)?;
        let mut room = Room::new(id, &state.name, state.document_id, doc, parent);
        for (oid, bytes) in &state.snapshot.objects {
            room.objects
                .insert(*oid, AnnotatedImage::from_bytes(bytes)?);
        }
        room.freezes = state.snapshot.freezes.iter().cloned().collect();
        room.sessions = state.sessions.into_iter().collect();
        room.change_log =
            ChangeLog::restore(state.change_log_capacity, state.snapshot.seq, state.tail);
        room.capacity = state.capacity;
        room.triggers = state.triggers;
        room.next_trigger = state.next_trigger;
        for (name, sender) in members {
            room.sessions
                .entry(name.clone())
                .or_insert_with(|| ViewerSession::new(&name));
            room.members.push(Member { name, sender });
        }
        Ok(room)
    }

    /// Replays one replicated event into a failover rebuild: extends the
    /// change log verbatim (keeping the dense total order the source
    /// assigned) and folds the event's state effect into the room. Returns
    /// `false` when the event's effect cannot be reconstructed from the
    /// event alone (`OperationApplied` carries the operation name but not
    /// its trigger form) — the caller counts the rebuild as lossy and the
    /// room serves on with its checkpoint-era document.
    ///
    /// Membership is deliberately *not* restored: the dead shard took
    /// every member channel with it, so the rebuilt room starts with no
    /// members and clients re-enter through the resync path. Sessions
    /// (viewer choices) are restored, so a resyncing client gets their
    /// presentation back, not the default.
    pub(crate) fn ingest_replicated(&mut self, sequenced: &SequencedEvent) -> bool {
        self.change_log.push_sequenced(sequenced.clone());
        self.logged.inc();
        match &sequenced.event {
            RoomEvent::Joined { user } => {
                self.sessions
                    .entry(user.clone())
                    .or_insert_with(|| ViewerSession::new(user));
                true
            }
            RoomEvent::Left { user } => {
                // Freeze releases arrive as their own `Released` events.
                self.sessions.remove(user);
                self.last_presentations.remove(user);
                true
            }
            RoomEvent::ObjectChanged { object, delta, .. } => {
                let Some(img) = self.objects.get_mut(object) else {
                    return false;
                };
                match delta {
                    Delta::TextAdded { id, element } => img.add_text(element.clone()) == *id,
                    Delta::LineAdded { id, element } => img.add_line(*element) == *id,
                    Delta::ElementDeleted { id } => img.delete_element(*id).is_ok(),
                }
            }
            RoomEvent::ChoiceMade {
                user,
                component,
                form,
            } => {
                let session = self
                    .sessions
                    .entry(user.clone())
                    .or_insert_with(|| ViewerSession::new(user));
                match form {
                    Some(form) => session
                        .choose(
                            &self.doc,
                            ViewerChoice {
                                component: *component,
                                form: *form,
                            },
                        )
                        .is_ok(),
                    None => {
                        session.unchoose(*component);
                        true
                    }
                }
            }
            RoomEvent::Frozen { object, by } => {
                self.freezes.insert(*object, by.clone());
                true
            }
            RoomEvent::Released { object, .. } => {
                self.freezes.remove(object);
                true
            }
            // The operation's trigger form never crossed the wire; the
            // document mutation cannot be replayed from the event alone.
            RoomEvent::OperationApplied { .. } => false,
            // Pure notifications: no server-side state to fold.
            RoomEvent::Chat { .. }
            | RoomEvent::PresentationChanged { .. }
            | RoomEvent::TriggerFired { .. }
            | RoomEvent::AudioAnalysed { .. } => true,
        }
    }

    /// Detaches the live member channels (for a migration handoff). The
    /// room is left member-less; pair with [`Self::export_state`].
    pub(crate) fn take_member_channels(&mut self) -> Vec<(String, Sender<SequencedEvent>)> {
        self.members.drain(..).map(|m| (m.name, m.sender)).collect()
    }

    pub(crate) fn require_member(&self, user: &str) -> Result<()> {
        if self.members.iter().any(|m| m.name == user) {
            Ok(())
        } else {
            Err(ServerError::NotInRoom {
                user: user.to_string(),
                room: self.id,
            })
        }
    }

    fn check_not_frozen_by_other(&self, object: SharedObjectId, user: &str) -> Result<()> {
        match self.freezes.get(&object) {
            Some(holder) if holder != user => Err(ServerError::Frozen {
                object,
                holder: holder.clone(),
            }),
            _ => Ok(()),
        }
    }

    /// Registers an object (a working copy of a database image) in the room.
    pub(crate) fn insert_object(&mut self, id: SharedObjectId, image: AnnotatedImage) {
        self.objects.insert(id, image);
    }

    /// Read access to a shared object.
    pub fn object(&self, id: SharedObjectId) -> Result<&AnnotatedImage> {
        self.objects.get(&id).ok_or(ServerError::UnknownObject(id))
    }

    /// Removes an object from the room ("changed objects are saved and
    /// discarded from the room as soon as they are not needed").
    pub(crate) fn take_object(&mut self, id: SharedObjectId) -> Result<AnnotatedImage> {
        self.objects
            .remove(&id)
            .ok_or(ServerError::UnknownObject(id))
    }

    /// The viewer's current presentation of the room document.
    pub fn presentation_for(&self, user: &str) -> Result<Presentation> {
        let session = self.sessions.get(user).ok_or(ServerError::NotInRoom {
            user: user.to_string(),
            room: self.id,
        })?;
        Ok(self.engine.presentation_for(&self.doc, session)?)
    }

    /// Registers a dynamic event trigger owned by `user`; returns its id.
    pub(crate) fn add_trigger(&mut self, user: &str, condition: TriggerCondition) -> Result<u64> {
        self.require_member(user)?;
        let id = self.next_trigger;
        self.next_trigger += 1;
        self.triggers.push((id, user.to_string(), condition));
        Ok(id)
    }

    /// Removes a trigger; only its owner may do so.
    pub(crate) fn remove_trigger(&mut self, user: &str, id: u64) -> Result<()> {
        match self.triggers.iter().position(|(tid, _, _)| *tid == id) {
            Some(i) if self.triggers[i].1 == user => {
                self.triggers.remove(i);
                Ok(())
            }
            Some(_) => Err(ServerError::Invalid(format!(
                "trigger {id} is not owned by '{user}'"
            ))),
            None => Err(ServerError::Invalid(format!("no trigger {id}"))),
        }
    }

    /// Registered triggers (id, owner).
    pub fn triggers(&self) -> Vec<(u64, &str)> {
        self.triggers
            .iter()
            .map(|(id, owner, _)| (*id, owner.as_str()))
            .collect()
    }

    /// Scans retained events with sequence number ≥ `from_seq` and fires
    /// matching triggers. Trigger events themselves are never matched (no
    /// cascades).
    fn fire_triggers(&mut self, from_seq: u64) {
        let mut fired: Vec<RoomEvent> = Vec::new();
        for sequenced in self.change_log.retained_from(from_seq) {
            let event = &sequenced.event;
            if matches!(event, RoomEvent::TriggerFired { .. }) {
                continue;
            }
            for (id, owner, condition) in &self.triggers {
                if condition.matches(event) {
                    fired.push(RoomEvent::TriggerFired {
                        trigger: *id,
                        owner: owner.clone(),
                        cause: format!("{event:?}"),
                    });
                }
            }
        }
        for event in fired {
            self.broadcast(event);
        }
    }

    /// Applies a client action, propagating the resulting deltas. This is
    /// the server's core dispatch (the paper's "use case: updating the
    /// presentation", Fig. 4b, plus the object operations of §3).
    pub(crate) fn act(&mut self, user: &str, action: Action) -> Result<()> {
        if self.frozen_for_migration {
            return Err(ServerError::Migrating(self.id));
        }
        self.require_member(user)?;
        let log_start = self.change_log.last_seq() + 1;
        let result = self.act_inner(user, action);
        if result.is_ok() {
            self.fire_triggers(log_start);
        }
        result
    }

    fn act_inner(&mut self, user: &str, action: Action) -> Result<()> {
        match action {
            Action::Choose { component, form } => {
                {
                    let session = self.sessions.get_mut(user).expect("member has session");
                    session.choose(&self.doc, ViewerChoice { component, form })?;
                }
                self.broadcast(RoomEvent::ChoiceMade {
                    user: user.to_string(),
                    component,
                    form: Some(form),
                });
                self.push_presentation_update(user)?;
            }
            Action::Unchoose { component } => {
                {
                    let session = self.sessions.get_mut(user).expect("member has session");
                    session.unchoose(component);
                }
                self.broadcast(RoomEvent::ChoiceMade {
                    user: user.to_string(),
                    component,
                    form: None,
                });
                self.push_presentation_update(user)?;
            }
            Action::AddText { object, element } => {
                self.check_not_frozen_by_other(object, user)?;
                let img = self
                    .objects
                    .get_mut(&object)
                    .ok_or(ServerError::UnknownObject(object))?;
                let id = img.add_text(element.clone());
                self.broadcast(RoomEvent::ObjectChanged {
                    object,
                    by: user.to_string(),
                    delta: Delta::TextAdded { id, element },
                });
            }
            Action::AddLine { object, element } => {
                self.check_not_frozen_by_other(object, user)?;
                let img = self
                    .objects
                    .get_mut(&object)
                    .ok_or(ServerError::UnknownObject(object))?;
                let id = img.add_line(element);
                self.broadcast(RoomEvent::ObjectChanged {
                    object,
                    by: user.to_string(),
                    delta: Delta::LineAdded { id, element },
                });
            }
            Action::DeleteElement { object, element } => {
                self.check_not_frozen_by_other(object, user)?;
                let img = self
                    .objects
                    .get_mut(&object)
                    .ok_or(ServerError::UnknownObject(object))?;
                img.delete_element(element)?;
                self.broadcast(RoomEvent::ObjectChanged {
                    object,
                    by: user.to_string(),
                    delta: Delta::ElementDeleted { id: element },
                });
            }
            Action::ApplyOperation {
                component,
                trigger_form,
                operation,
                global,
            } => {
                if global {
                    // Component ids are u32; a document so large that its
                    // component count no longer fits must be rejected whole
                    // — the old `as u32` cast silently truncated and would
                    // have rebased every session onto the wrong components.
                    let components = u32::try_from(self.doc.num_components()).map_err(|_| {
                        ServerError::Invalid(format!(
                            "document has {} components, exceeding the u32 component-id space",
                            self.doc.num_components()
                        ))
                    })?;
                    self.doc
                        .add_global_operation(component, trigger_form, &operation)?;
                    // Viewer-local extensions were built against the old
                    // network; the prototype's policy is to re-derive local
                    // state after a global edit (identity rebase keeps the
                    // explicit choices, drops extensions and context).
                    let identity: Vec<Option<rcmo_core::ComponentId>> = (0..components)
                        .map(|i| Some(rcmo_core::ComponentId(i)))
                        .collect();
                    for session in self.sessions.values_mut() {
                        session.rebase(&identity);
                    }
                    self.broadcast(RoomEvent::OperationApplied {
                        user: user.to_string(),
                        component,
                        operation,
                    });
                    // Everyone's presentation may have changed.
                    let names: Vec<String> = self.members.iter().map(|m| m.name.clone()).collect();
                    for name in names {
                        self.push_presentation_update(&name)?;
                    }
                } else {
                    let session = self.sessions.get_mut(user).expect("member has session");
                    session.apply_local_operation(
                        &self.doc,
                        component,
                        trigger_form,
                        &operation,
                    )?;
                    self.push_presentation_update(user)?;
                }
            }
            Action::Freeze { object } => {
                if !self.objects.contains_key(&object) {
                    return Err(ServerError::UnknownObject(object));
                }
                if let Some(holder) = self.freezes.get(&object) {
                    return Err(ServerError::FreezeConflict(format!(
                        "object {object} already frozen by '{holder}'"
                    )));
                }
                self.freezes.insert(object, user.to_string());
                self.broadcast(RoomEvent::Frozen {
                    object,
                    by: user.to_string(),
                });
            }
            Action::Release { object } => match self.freezes.get(&object) {
                Some(holder) if holder == user => {
                    self.freezes.remove(&object);
                    self.broadcast(RoomEvent::Released {
                        object,
                        by: user.to_string(),
                    });
                }
                Some(holder) => {
                    return Err(ServerError::FreezeConflict(format!(
                        "'{user}' cannot release a freeze held by '{holder}'"
                    )))
                }
                None => {
                    return Err(ServerError::FreezeConflict(format!(
                        "object {object} is not frozen"
                    )))
                }
            },
            Action::Chat { text } => {
                self.broadcast(RoomEvent::Chat {
                    user: user.to_string(),
                    text,
                });
            }
        }
        Ok(())
    }

    /// Broadcasts a server-wide announcement into this room (the sender
    /// need not be a member — it is the administrator).
    pub(crate) fn announce(&mut self, user: &str, text: &str) {
        self.broadcast(RoomEvent::Chat {
            user: format!("{user} (announcement)"),
            text: text.to_string(),
        });
    }

    /// Broadcasts a shared analysis result (cooperative audio browsing).
    pub(crate) fn share_analysis(
        &mut self,
        user: &str,
        object: SharedObjectId,
        summary: &str,
    ) -> Result<()> {
        self.require_member(user)?;
        self.broadcast(RoomEvent::AudioAnalysed {
            object,
            by: user.to_string(),
            summary: summary.to_string(),
        });
        Ok(())
    }

    /// Recomputes `viewer`'s presentation (incrementally, through the
    /// engine's reconfiguration caches) and broadcasts only the delta
    /// against the presentation last broadcast for that viewer. A viewer
    /// with no broadcast history is diffed against the author-default
    /// presentation, which is what their client rendered on join.
    fn push_presentation_update(&mut self, viewer: &str) -> Result<()> {
        let p = self.presentation_for(viewer)?;
        let prev = self
            .last_presentations
            .remove(viewer)
            .unwrap_or_else(|| self.engine.default_presentation(&self.doc));
        let deltas = prev.diff(&p);
        let transfer = prev.delta_transfer_bytes(&p, &self.doc);
        self.last_presentations.insert(viewer.to_string(), p);
        self.broadcast(RoomEvent::PresentationChanged {
            viewer: viewer.to_string(),
            transfer_bytes: transfer,
            deltas,
        });
        Ok(())
    }
}

impl Metrics for Room {
    type View = RoomStats;

    fn obs(&self) -> &Registry {
        &self.obs
    }

    fn metrics(&self) -> RoomStats {
        RoomStats::from_registry(&self.obs)
    }
}
