//! Shared rooms: membership, per-viewer presentation sessions, the in-room
//! object registry, freeze/release, and delta broadcast.

use crate::error::{JoinRejectCause, Result, ServerError};
use crate::events::{Action, Delta, RoomEvent, TriggerCondition};
use crate::fanout::{event_queue, EventQueue, EventStream, QueueSendError};
use crate::resync::{ChangeLog, Resync, RoomSnapshot, SequencedEvent, DEFAULT_CHANGE_LOG_CAPACITY};
use crate::role::{Capability, JoinRequest, Role};
use crossbeam::channel::Sender;
use rcmo_core::{
    MultimediaDocument, Presentation, PresentationEngine, ViewerChoice, ViewerSession,
};
use rcmo_imaging::AnnotatedImage;
use rcmo_obs::{bounds, Counter, Histogram, Metrics, Registry, SharedClock};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of a room.
pub type RoomId = u64;

/// Identifier of a shared object inside a room (the multimedia database id
/// of the underlying image object).
pub type SharedObjectId = u64;

/// A room's configuration, consolidated: what used to be a scatter of
/// grown-by-accretion setters (`set_room_capacity`,
/// `set_change_log_capacity`, and now the member queue bound) is one
/// builder, accepted whole at room creation
/// ([`create_room_with_id`](crate::server::InteractionServer::create_room_with_id))
/// and through the single reconfiguration entry point
/// ([`configure_room`](crate::server::InteractionServer::configure_room)).
///
/// ```
/// use rcmo_server::RoomConfig;
/// let lecture = RoomConfig::new()
///     .with_capacity(Some(10_000))
///     .with_change_log_capacity(4096)
///     .with_member_queue_bound(1024);
/// assert_eq!(lecture.capacity(), Some(10_000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoomConfig {
    capacity: Option<usize>,
    change_log_capacity: usize,
    member_queue_bound: usize,
}

impl Default for RoomConfig {
    fn default() -> RoomConfig {
        RoomConfig::new()
    }
}

impl RoomConfig {
    /// The defaults: unbounded membership, a
    /// [`DEFAULT_CHANGE_LOG_CAPACITY`]-event change log, and the default
    /// member queue bound
    /// ([`DEFAULT_MEMBER_QUEUE_BOUND`](crate::fanout::DEFAULT_MEMBER_QUEUE_BOUND)).
    pub fn new() -> RoomConfig {
        RoomConfig {
            capacity: None,
            change_log_capacity: DEFAULT_CHANGE_LOG_CAPACITY,
            member_queue_bound: crate::fanout::DEFAULT_MEMBER_QUEUE_BOUND,
        }
    }

    /// Bounds the member count (`None` = unbounded). Joins beyond the
    /// bound are rejected with [`JoinRejectCause::AtCapacity`].
    pub fn with_capacity(mut self, capacity: Option<usize>) -> RoomConfig {
        self.capacity = capacity;
        self
    }

    /// Bounds the change-log ring (shrinking evicts the oldest events).
    pub fn with_change_log_capacity(mut self, capacity: usize) -> RoomConfig {
        self.change_log_capacity = capacity;
        self
    }

    /// Bounds each member's event send queue. Applies to members joining
    /// after the change; a member may still override it per-join via
    /// [`JoinRequest::with_queue_bound`].
    pub fn with_member_queue_bound(mut self, bound: usize) -> RoomConfig {
        self.member_queue_bound = bound;
        self
    }

    /// The member-count bound.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The change-log ring capacity.
    pub fn change_log_capacity(&self) -> usize {
        self.change_log_capacity
    }

    /// The default member queue bound.
    pub fn member_queue_bound(&self) -> usize {
        self.member_queue_bound
    }

    /// Rejects configurations that cannot work: a zero change log could
    /// never replay a resync tail (every reconnect would silently degrade
    /// to a snapshot), and a zero queue bound would evict every member on
    /// their first event.
    pub(crate) fn validate(&self) -> Result<()> {
        if self.change_log_capacity == 0 {
            return Err(ServerError::Invalid(
                "change log capacity must be at least 1 (a zero ring can never replay a resync tail)"
                    .to_string(),
            ));
        }
        if self.member_queue_bound == 0 {
            return Err(ServerError::Invalid(
                "member queue bound must be at least 1 (a zero queue evicts every member on \
                 their first event)"
                    .to_string(),
            ));
        }
        Ok(())
    }
}

/// Aggregate propagation statistics of a room: a typed view over the
/// room's metrics registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoomStats {
    /// Events delivered (events × recipients). Only *successful* sends
    /// count; failed sends land in `delivery_failures`.
    pub events_delivered: u64,
    /// Total bytes delivered (approximate wire size × recipients).
    pub bytes_delivered: u64,
    /// Events appended to the room's change buffer.
    pub changes_logged: u64,
    /// Sends that failed because the member's receiver was gone.
    pub delivery_failures: u64,
    /// Members removed after their connection was detected dead.
    pub members_reaped: u64,
    /// Events encoded into a shared broadcast payload — exactly one per
    /// broadcast event, regardless of member count (the encode-once
    /// invariant E19 gates on).
    pub events_encoded: u64,
    /// Members evicted because their bounded send queue filled (slow
    /// consumers; they re-enter through snapshot resync).
    pub slow_consumers_evicted: u64,
    /// Mutating calls refused by the role capability table.
    pub actions_denied: u64,
}

impl RoomStats {
    /// Reads the room counters out of a metrics registry.
    pub fn from_registry(obs: &Registry) -> Self {
        RoomStats {
            events_delivered: obs.read_counter("server.room.delivered.count"),
            bytes_delivered: obs.read_counter("server.room.delivered.bytes"),
            changes_logged: obs.read_counter("server.room.logged.count"),
            delivery_failures: obs.read_counter("server.room.delivery_failure.count"),
            members_reaped: obs.read_counter("server.room.reaped.count"),
            events_encoded: obs.read_counter("server.room.encode.count"),
            slow_consumers_evicted: obs.read_counter("server.room.evicted_slow.count"),
            actions_denied: obs.read_counter("server.room.denied.count"),
        }
    }
}

#[derive(Debug)]
struct Member {
    name: String,
    queue: EventQueue,
}

/// A room's full migratable state: what freeze → snapshot exports and what
/// the destination shard rebuilds from. Built on the resync
/// [`RoomSnapshot`] (the state fold every client catch-up already uses),
/// extended with what a *server* needs that a client does not: per-viewer
/// sessions (choices survive the move), the retained change-log tail (the
/// destination serves the same replay horizon), and the room's own
/// configuration.
#[derive(Debug, Clone)]
pub struct RoomState {
    /// Display name.
    pub name: String,
    /// The multimedia database id of the room's document.
    pub document_id: u64,
    /// The resync-path state snapshot (document, objects, freezes,
    /// members, and the sequence number the state reflects).
    pub snapshot: RoomSnapshot,
    /// Per-viewer presentation sessions, keyed by member name.
    pub sessions: Vec<(String, ViewerSession)>,
    /// The retained change-log tail ending at `snapshot.seq` (dense).
    pub tail: Vec<SequencedEvent>,
    /// The change log's ring capacity.
    pub change_log_capacity: usize,
    /// Member capacity (`None` = unbounded).
    pub capacity: Option<usize>,
    /// Default member queue bound.
    pub member_queue_bound: usize,
    /// Role assignments, keyed by member name — including *reserved*
    /// seats of members currently disconnected (reaped or slow-evicted),
    /// who reclaim their role on resync. Roles survive migration and
    /// failover with the rest of the state.
    pub roles: Vec<(String, Role)>,
    /// Registered triggers (id, owner, condition).
    pub triggers: Vec<(u64, String, TriggerCondition)>,
    /// The id the next registered trigger receives.
    pub next_trigger: u64,
}

/// A shared room. All access goes through the
/// [`InteractionServer`](crate::server::InteractionServer), which wraps
/// every room in its own `Arc<Mutex<Room>>`
/// ([`RoomHandle`](crate::server::RoomHandle)) — `&mut self` here is
/// exclusive by construction, and independent rooms are mutated fully in
/// parallel.
#[derive(Debug)]
pub struct Room {
    /// Room id.
    pub id: RoomId,
    /// Display name.
    pub name: String,
    /// The multimedia database id of the room's document.
    pub document_id: u64,
    pub(crate) doc: MultimediaDocument,
    members: Vec<Member>,
    /// Role assignments. A superset of the live membership: an
    /// involuntarily removed member (dead connection, slow consumer)
    /// keeps their seat reserved here and reclaims it on resync; a
    /// voluntary `leave` (or an eviction) frees it.
    roles: HashMap<String, Role>,
    sessions: HashMap<String, ViewerSession>,
    /// The presentation last broadcast per viewer; the baseline the next
    /// `PresentationChanged` deltas are computed against.
    last_presentations: HashMap<String, Presentation>,
    objects: HashMap<SharedObjectId, AnnotatedImage>,
    freezes: HashMap<SharedObjectId, String>,
    /// The "large memory buffer which maintains the changes made on the
    /// changed objects" — a bounded ring (see [`ChangeLog`]).
    change_log: ChangeLog,
    engine: PresentationEngine,
    /// Maximum members (`None` = unbounded). Joins beyond it are rejected
    /// with [`JoinRejectCause::AtCapacity`].
    capacity: Option<usize>,
    /// Default bound of each member's send queue (a join may override).
    member_queue_bound: usize,
    /// Serialised-document cache for snapshot resyncs: invalidated only
    /// when the shared document actually mutates (a global operation),
    /// so a late-join storm pays one serialisation, not one per joiner.
    doc_bytes: Option<Arc<Vec<u8>>>,
    /// Serialised shared-object cache, per object, invalidated on that
    /// object's deltas.
    object_bytes: HashMap<SharedObjectId, Arc<Vec<u8>>>,
    /// Set for the freeze→snapshot→thaw window of a live migration: all
    /// mutating calls are refused ([`ServerError::Migrating`]) so the
    /// exported state is the room's final word on its shard.
    frozen_for_migration: bool,
    /// Replication tap: every sequenced event is also sent here (the
    /// cluster journal that failover rebuilds from). A broken tap is
    /// dropped silently — it is an observer, never a member.
    tap: Option<Sender<Arc<SequencedEvent>>>,
    /// Adaptive-delivery state (policy + object cache + per-member
    /// bandwidth estimators), created lazily on the room's first delivery
    /// so rooms that never serve layered objects register no delivery
    /// metrics. Deliberately *not* migrated or replicated: caches rebuild
    /// where the room lands and estimators re-learn in a transfer or two.
    delivery: Option<Arc<crate::delivery::DeliveryState>>,
    obs: Registry,
    /// The time source behind `broadcast_lat`/`resync_lat` — the server's
    /// clock, so a simulated room records virtual-time spans.
    clock: SharedClock,
    delivered: Counter,
    delivered_bytes: Counter,
    logged: Counter,
    delivery_failures: Counter,
    reaped: Counter,
    encoded: Counter,
    evicted_slow: Counter,
    denied: Counter,
    snapshot_cache_hits: Counter,
    snapshot_cache_misses: Counter,
    broadcast_lat: Histogram,
    resync_lat: Histogram,
    resync_replays: Counter,
    resync_snapshots: Counter,
    triggers: Vec<(u64, String, TriggerCondition)>,
    next_trigger: u64,
}

impl Room {
    pub(crate) fn new(
        id: RoomId,
        name: &str,
        document_id: u64,
        doc: MultimediaDocument,
        config: RoomConfig,
        parent: &Registry,
        clock: SharedClock,
    ) -> Room {
        let obs = Registry::with_parent(parent);
        let delivered = obs.counter("server.room.delivered.count");
        let delivered_bytes = obs.counter("server.room.delivered.bytes");
        let logged = obs.counter("server.room.logged.count");
        let delivery_failures = obs.counter("server.room.delivery_failure.count");
        let reaped = obs.counter("server.room.reaped.count");
        let encoded = obs.counter("server.room.encode.count");
        let evicted_slow = obs.counter("server.room.evicted_slow.count");
        let denied = obs.counter("server.room.denied.count");
        let snapshot_cache_hits = obs.counter("server.room.snapshot_cache.hit.count");
        let snapshot_cache_misses = obs.counter("server.room.snapshot_cache.miss.count");
        let broadcast_lat = obs.histogram("server.room.broadcast.us", bounds::LATENCY_US);
        let resync_lat = obs.histogram("server.room.resync.us", bounds::LATENCY_US);
        let resync_replays = obs.counter("server.room.resync.replay.count");
        let resync_snapshots = obs.counter("server.room.resync.snapshot.count");
        Room {
            id,
            name: name.to_string(),
            document_id,
            doc,
            members: Vec::new(),
            roles: HashMap::new(),
            sessions: HashMap::new(),
            last_presentations: HashMap::new(),
            objects: HashMap::new(),
            freezes: HashMap::new(),
            change_log: ChangeLog::new(config.change_log_capacity()),
            engine: PresentationEngine::new(),
            capacity: config.capacity(),
            member_queue_bound: config.member_queue_bound(),
            doc_bytes: None,
            object_bytes: HashMap::new(),
            frozen_for_migration: false,
            tap: None,
            delivery: None,
            obs,
            clock,
            delivered,
            delivered_bytes,
            logged,
            delivery_failures,
            reaped,
            encoded,
            evicted_slow,
            denied,
            snapshot_cache_hits,
            snapshot_cache_misses,
            broadcast_lat,
            resync_lat,
            resync_replays,
            resync_snapshots,
            triggers: Vec::new(),
            next_trigger: 1,
        }
    }

    /// Current members.
    pub fn member_names(&self) -> Vec<&str> {
        self.members.iter().map(|m| m.name.as_str()).collect()
    }

    /// Propagation statistics.
    pub fn stats(&self) -> RoomStats {
        self.metrics()
    }

    /// The room's bounded change buffer.
    pub fn change_log(&self) -> &ChangeLog {
        &self.change_log
    }

    /// The room's current configuration, as one value.
    pub fn config(&self) -> RoomConfig {
        RoomConfig::new()
            .with_capacity(self.capacity)
            .with_change_log_capacity(self.change_log.capacity())
            .with_member_queue_bound(self.member_queue_bound)
    }

    /// Applies a validated [`RoomConfig`] whole: capacity, change-log ring
    /// (shrinking evicts the oldest events), and the default member queue
    /// bound (applies to members joining after the change).
    pub(crate) fn apply_config(&mut self, config: &RoomConfig) -> Result<()> {
        config.validate()?;
        self.capacity = config.capacity();
        self.change_log.set_capacity(config.change_log_capacity());
        self.member_queue_bound = config.member_queue_bound();
        Ok(())
    }

    /// The member's current role (`None` if they hold no seat, live or
    /// reserved).
    pub fn role_of(&self, user: &str) -> Option<Role> {
        self.roles.get(user).copied()
    }

    /// Who holds the presenter seat — live *or reserved* (a reaped
    /// presenter keeps the seat until they voluntarily leave or are
    /// evicted, so a momentary disconnect cannot lose the lectern).
    pub fn presenter(&self) -> Option<&str> {
        self.roles
            .iter()
            .find(|(_, r)| **r == Role::Presenter)
            .map(|(u, _)| u.as_str())
    }

    /// The shared document.
    pub fn document(&self) -> &MultimediaDocument {
        &self.doc
    }

    /// Logs `event` (assigning its sequence number), encodes it **once**
    /// into a shared `Arc` payload, and fans the pointer out to every
    /// member's bounded queue. Returns the members whose send failed,
    /// tagged with why — the caller (`broadcast`) removes them: a
    /// `Disconnected` member is reaped (dead client), a `Full` member is
    /// evicted as a slow consumer.
    fn deliver(&mut self, event: RoomEvent) -> Vec<(String, QueueSendError)> {
        let sequenced = Arc::new(self.change_log.push(event));
        self.logged.inc();
        // One encode per event, regardless of member count — the invariant
        // the E19 fan-out experiment gates on.
        self.encoded.inc();
        // The replication tap observes the identical total order the
        // members do; it is not a member (never reaped, never counted).
        if let Some(tap) = &self.tap {
            if tap.send(sequenced.clone()).is_err() {
                self.tap = None;
            }
        }
        let size = sequenced.event.encoded_len() as u64;
        let mut failed = Vec::new();
        for m in &self.members {
            match m.queue.try_send(sequenced.clone()) {
                Ok(()) => {
                    self.delivered.inc();
                    self.delivered_bytes.add(size);
                }
                Err(e) => {
                    if e == QueueSendError::Disconnected {
                        // The receiver is gone: a crashed client.
                        self.delivery_failures.inc();
                    }
                    failed.push((m.name.clone(), e));
                }
            }
        }
        failed
    }

    /// Broadcasts an event to every member, appends it to the change
    /// buffer, and removes any member whose send failed — dead connections
    /// are reaped, members with a full bounded queue are evicted as slow
    /// consumers. Either way their freezes are released and
    /// `Released`/`Left` events propagate (which may in turn expose further
    /// failed members), but their *role stays reserved*: an involuntarily
    /// removed member reclaims their seat through the resync path.
    fn broadcast(&mut self, event: RoomEvent) {
        let started = self.clock.now_us();
        let mut failed = self.deliver(event);
        while let Some((user, why)) = failed.pop() {
            let before = self.members.len();
            self.members.retain(|m| m.name != user);
            if self.members.len() == before {
                continue; // already removed this round
            }
            self.sessions.remove(&user);
            self.last_presentations.remove(&user);
            match why {
                QueueSendError::Full => self.evicted_slow.inc(),
                QueueSendError::Disconnected => self.reaped.inc(),
            }
            let released: Vec<SharedObjectId> = self
                .freezes
                .iter()
                .filter(|(_, holder)| holder.as_str() == user)
                .map(|(&o, _)| o)
                .collect();
            for object in released {
                self.freezes.remove(&object);
                failed.extend(self.deliver(RoomEvent::Released {
                    object,
                    by: user.clone(),
                }));
            }
            failed.extend(self.deliver(RoomEvent::Left { user }));
        }
        self.broadcast_lat
            .record(self.clock.now_us().saturating_sub(started));
    }

    pub(crate) fn join(&mut self, req: &JoinRequest) -> Result<EventStream> {
        if self.frozen_for_migration {
            return Err(ServerError::JoinRejected {
                room: self.id,
                cause: JoinRejectCause::RoomFrozenForMigration,
            });
        }
        if self.members.iter().any(|m| m.name == req.user) {
            return Err(ServerError::AlreadyJoined(req.user.clone()));
        }
        if let Some(cap) = self.capacity {
            if self.members.len() >= cap {
                return Err(ServerError::JoinRejected {
                    room: self.id,
                    cause: JoinRejectCause::AtCapacity,
                });
            }
        }
        // The presenter seat is unique — live or reserved. (The requester
        // themselves may hold the reservation: a reaped presenter coming
        // back through a fresh join rather than a resync.)
        if req.role == Role::Presenter && self.presenter().is_some_and(|seat| seat != req.user) {
            return Err(ServerError::JoinRejected {
                room: self.id,
                cause: JoinRejectCause::PresenterSeatTaken,
            });
        }
        let (queue, stream) = event_queue(req.queue_bound.unwrap_or(self.member_queue_bound));
        self.members.push(Member {
            name: req.user.clone(),
            queue,
        });
        self.sessions
            .entry(req.user.clone())
            .or_insert_with(|| ViewerSession::new(&req.user));
        self.roles.insert(req.user.clone(), req.role);
        self.broadcast(RoomEvent::Joined {
            user: req.user.clone(),
            role: req.role,
        });
        Ok(stream)
    }

    pub(crate) fn leave(&mut self, user: &str) -> Result<()> {
        let before = self.members.len();
        self.members.retain(|m| m.name != user);
        if self.members.len() == before {
            return Err(ServerError::NotInRoom {
                user: user.to_string(),
                room: self.id,
            });
        }
        self.sessions.remove(user);
        self.last_presentations.remove(user);
        // A voluntary leave gives the seat up — including the presenter
        // seat, which then stands free for the next presenter join.
        self.roles.remove(user);
        // Freezes held by the leaver are released.
        let released: Vec<SharedObjectId> = self
            .freezes
            .iter()
            .filter(|(_, holder)| holder.as_str() == user)
            .map(|(&o, _)| o)
            .collect();
        for object in released {
            self.freezes.remove(&object);
            self.broadcast(RoomEvent::Released {
                object,
                by: user.to_string(),
            });
        }
        self.broadcast(RoomEvent::Left {
            user: user.to_string(),
        });
        Ok(())
    }

    /// Reconnects `user` with a fresh bounded event queue and computes what
    /// they missed since `last_seen` (the highest sequence number the
    /// client observed before disconnecting; `0` for "nothing").
    ///
    /// Within the replay horizon the client receives the exact missed tail
    /// and converges to the identical total event order; beyond it, a
    /// [`RoomSnapshot`] of the room's current state (the fold of every
    /// evicted event — served from the room's serialised-byte caches, so a
    /// late-join storm costs one serialisation, not one per joiner). If the
    /// member had already been removed (reaped or evicted as a slow
    /// consumer), they rejoin *reclaiming their reserved role* — partners
    /// see a `Joined` event, and the join itself is part of the replayed
    /// order for everyone *else*, never for the resyncing client (their
    /// catch-up is computed first).
    pub(crate) fn resync(&mut self, user: &str, last_seen: u64) -> Result<(EventStream, Resync)> {
        let started = self.clock.now_us();
        if self.frozen_for_migration {
            // A resync may rejoin (a membership mutation): refused while
            // frozen, retried by the cluster after the thaw.
            return Err(ServerError::Migrating(self.id));
        }
        // Catch-up is computed before any rejoin event so the client never
        // replays its own reconnection.
        let catch_up = match self.change_log.events_since(last_seen) {
            Some(events) => {
                self.resync_replays.add(events.len() as u64);
                Resync::Events(events)
            }
            None => {
                self.resync_snapshots.inc();
                Resync::Snapshot(self.snapshot())
            }
        };
        let (queue, stream) = event_queue(self.member_queue_bound);
        if let Some(m) = self.members.iter_mut().find(|m| m.name == user) {
            // Still considered a member (dead connection not yet detected):
            // swap in the live queue silently.
            m.queue = queue;
        } else {
            // Reclaim the reserved seat (involuntary removal keeps it) or,
            // if none is reserved, re-enter with the symmetric-room default
            // role.
            let role = self.roles.get(user).copied().unwrap_or(Role::Moderator);
            self.members.push(Member {
                name: user.to_string(),
                queue,
            });
            self.sessions
                .entry(user.to_string())
                .or_insert_with(|| ViewerSession::new(user));
            self.roles.insert(user.to_string(), role);
            self.broadcast(RoomEvent::Joined {
                user: user.to_string(),
                role,
            });
        }
        self.resync_lat
            .record(self.clock.now_us().saturating_sub(started));
        Ok((stream, catch_up))
    }

    /// Removes `target` from the room on `by`'s authority
    /// ([`Capability::EvictMembers`]). Unlike an involuntary removal, an
    /// eviction *frees the seat* — the evicted member does not reclaim
    /// their role by resyncing. The presenter cannot be evicted; the seat
    /// moves only through [`Self::hand_off_presenter`].
    pub(crate) fn evict(&mut self, by: &str, target: &str) -> Result<()> {
        if self.frozen_for_migration {
            return Err(ServerError::Migrating(self.id));
        }
        self.require_capability(by, Capability::EvictMembers)?;
        if by == target {
            return Err(ServerError::Invalid(
                "cannot evict oneself; leave the room instead".to_string(),
            ));
        }
        if !self.members.iter().any(|m| m.name == target) {
            return Err(ServerError::NotInRoom {
                user: target.to_string(),
                room: self.id,
            });
        }
        if self.roles.get(target) == Some(&Role::Presenter) {
            return Err(ServerError::Invalid(
                "the presenter cannot be evicted; the seat moves only through a handoff"
                    .to_string(),
            ));
        }
        self.members.retain(|m| m.name != target);
        self.sessions.remove(target);
        self.last_presentations.remove(target);
        self.roles.remove(target);
        let released: Vec<SharedObjectId> = self
            .freezes
            .iter()
            .filter(|(_, holder)| holder.as_str() == target)
            .map(|(&o, _)| o)
            .collect();
        for object in released {
            self.freezes.remove(&object);
            self.broadcast(RoomEvent::Released {
                object,
                by: target.to_string(),
            });
        }
        self.broadcast(RoomEvent::Evicted {
            user: target.to_string(),
            by: by.to_string(),
        });
        Ok(())
    }

    /// Hands the presenter seat from `from` (who must hold
    /// [`Capability::HandOffPresenter`], i.e. be the presenter) to the live
    /// member `to`. The old presenter is demoted to moderator and the new
    /// one promoted in one atomic pair of `RoleChanged` events — no folded
    /// prefix of the event order ever shows two presenters.
    pub(crate) fn hand_off_presenter(&mut self, from: &str, to: &str) -> Result<()> {
        if self.frozen_for_migration {
            return Err(ServerError::Migrating(self.id));
        }
        self.require_capability(from, Capability::HandOffPresenter)?;
        if from == to {
            return Err(ServerError::Invalid(
                "cannot hand the presenter seat to oneself".to_string(),
            ));
        }
        if !self.members.iter().any(|m| m.name == to) {
            return Err(ServerError::NotInRoom {
                user: to.to_string(),
                room: self.id,
            });
        }
        self.roles.insert(from.to_string(), Role::Moderator);
        self.roles.insert(to.to_string(), Role::Presenter);
        self.broadcast(RoomEvent::RoleChanged {
            user: from.to_string(),
            role: Role::Moderator,
        });
        self.broadcast(RoomEvent::RoleChanged {
            user: to.to_string(),
            role: Role::Presenter,
        });
        Ok(())
    }

    /// The room's current state as a catch-up snapshot, reflecting every
    /// event through `change_log.last_seq()`.
    ///
    /// Serialisation is served from the room's byte caches (`doc_bytes`,
    /// `object_bytes`), which are invalidated only when the underlying
    /// state actually mutates — so a storm of snapshot resyncs between two
    /// document changes pays for *one* serialisation of each piece, and
    /// the broadcast hot path is never stalled re-encoding an unchanged
    /// document per joiner.
    pub(crate) fn snapshot(&mut self) -> RoomSnapshot {
        let document = match &self.doc_bytes {
            Some(bytes) => {
                self.snapshot_cache_hits.inc();
                bytes.as_ref().clone()
            }
            None => {
                self.snapshot_cache_misses.inc();
                let bytes = Arc::new(self.doc.to_bytes());
                self.doc_bytes = Some(bytes.clone());
                bytes.as_ref().clone()
            }
        };
        let mut objects: Vec<(SharedObjectId, Vec<u8>)> = Vec::with_capacity(self.objects.len());
        for (&id, img) in &self.objects {
            let bytes = match self.object_bytes.get(&id) {
                Some(cached) => {
                    self.snapshot_cache_hits.inc();
                    cached.as_ref().clone()
                }
                None => {
                    self.snapshot_cache_misses.inc();
                    let fresh = Arc::new(img.to_bytes());
                    self.object_bytes.insert(id, fresh.clone());
                    fresh.as_ref().clone()
                }
            };
            objects.push((id, bytes));
        }
        objects.sort_by_key(|(id, _)| *id);
        let mut freezes: Vec<(SharedObjectId, String)> = self
            .freezes
            .iter()
            .map(|(&o, holder)| (o, holder.clone()))
            .collect();
        freezes.sort_by_key(|(o, _)| *o);
        RoomSnapshot {
            seq: self.change_log.last_seq(),
            document,
            objects,
            freezes,
            members: self.members.iter().map(|m| m.name.clone()).collect(),
        }
    }

    /// Marks the room frozen for migration: every mutating call
    /// (`act`, `join`, `resync`) is refused with
    /// [`ServerError::Migrating`] / [`JoinRejectCause::RoomFrozenForMigration`]
    /// until [`Self::thaw`]. Read-only calls keep working.
    pub(crate) fn freeze_for_migration(&mut self) {
        self.frozen_for_migration = true;
    }

    /// Lifts a migration freeze (on the destination shard, after rebuild).
    pub(crate) fn thaw(&mut self) {
        self.frozen_for_migration = false;
    }

    /// `true` while the room is frozen for a live migration.
    pub fn is_frozen_for_migration(&self) -> bool {
        self.frozen_for_migration
    }

    /// Current member count.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Attaches (or replaces) the replication tap: a channel that observes
    /// the room's total event order without being a member. The tap shares
    /// the encode-once payloads — journaling costs a pointer per event,
    /// not a payload copy.
    pub(crate) fn set_tap(&mut self, tap: Sender<Arc<SequencedEvent>>) {
        self.tap = Some(tap);
    }

    /// Exports the room's full migratable state: the resync snapshot (the
    /// state fold), the per-viewer sessions, and the retained change-log
    /// tail so the destination can serve the same replay horizon. The room
    /// should be frozen first — the export is then its final word.
    pub(crate) fn export_state(&mut self) -> RoomState {
        let snapshot = self.snapshot();
        let mut roles: Vec<(String, Role)> = self
            .roles
            .iter()
            .map(|(name, role)| (name.clone(), *role))
            .collect();
        roles.sort_by(|a, b| a.0.cmp(&b.0));
        RoomState {
            name: self.name.clone(),
            document_id: self.document_id,
            snapshot,
            sessions: self
                .sessions
                .iter()
                .map(|(name, s)| (name.clone(), s.clone()))
                .collect(),
            tail: self.change_log.retained().cloned().collect(),
            change_log_capacity: self.change_log.capacity(),
            capacity: self.capacity,
            member_queue_bound: self.member_queue_bound,
            roles,
            triggers: self.triggers.clone(),
            next_trigger: self.next_trigger,
        }
    }

    /// Rebuilds a room from exported state under a (possibly different)
    /// shard's registry. `members` supplies the live event channels to
    /// carry over — a migration passes the source's senders so clients
    /// keep their streams; a failover passes none and clients resync.
    ///
    /// The rebuilt room continues the source's total order exactly: its
    /// change log is restored at the same `next_seq` with the same
    /// retained tail, so sequence numbers stay gap-free end-to-end.
    pub(crate) fn from_state(
        id: RoomId,
        state: RoomState,
        members: Vec<(String, EventQueue)>,
        parent: &Registry,
        clock: SharedClock,
    ) -> Result<Room> {
        let doc = MultimediaDocument::from_bytes(&state.snapshot.document)?;
        let config = RoomConfig::new()
            .with_capacity(state.capacity)
            .with_change_log_capacity(state.change_log_capacity)
            .with_member_queue_bound(state.member_queue_bound);
        let mut room = Room::new(
            id,
            &state.name,
            state.document_id,
            doc,
            config,
            parent,
            clock,
        );
        for (oid, bytes) in &state.snapshot.objects {
            room.objects
                .insert(*oid, AnnotatedImage::from_bytes(bytes)?);
        }
        room.freezes = state.snapshot.freezes.iter().cloned().collect();
        room.sessions = state.sessions.into_iter().collect();
        room.change_log =
            ChangeLog::restore(state.change_log_capacity, state.snapshot.seq, state.tail);
        room.roles = state.roles.into_iter().collect();
        room.triggers = state.triggers;
        room.next_trigger = state.next_trigger;
        for (name, queue) in members {
            room.sessions
                .entry(name.clone())
                .or_insert_with(|| ViewerSession::new(&name));
            room.members.push(Member { name, queue });
        }
        Ok(room)
    }

    /// Replays one replicated event into a failover rebuild: extends the
    /// change log verbatim (keeping the dense total order the source
    /// assigned) and folds the event's state effect into the room. Returns
    /// `false` when the event's effect cannot be reconstructed from the
    /// event alone (`OperationApplied` carries the operation name but not
    /// its trigger form) — the caller counts the rebuild as lossy and the
    /// room serves on with its checkpoint-era document.
    ///
    /// Membership is deliberately *not* restored: the dead shard took
    /// every member channel with it, so the rebuilt room starts with no
    /// members and clients re-enter through the resync path. Sessions
    /// (viewer choices) are restored, so a resyncing client gets their
    /// presentation back, not the default.
    pub(crate) fn ingest_replicated(&mut self, sequenced: &SequencedEvent) -> bool {
        self.change_log.push_sequenced(sequenced.clone());
        self.logged.inc();
        match &sequenced.event {
            RoomEvent::Joined { user, role } => {
                self.sessions
                    .entry(user.clone())
                    .or_insert_with(|| ViewerSession::new(user));
                self.roles.insert(user.clone(), *role);
                true
            }
            RoomEvent::Left { user } => {
                // Freeze releases arrive as their own `Released` events.
                self.sessions.remove(user);
                self.last_presentations.remove(user);
                // A journaled `Left` cannot distinguish a voluntary leave
                // from a reap/slow-evict (which reserves the seat locally),
                // so the fold conservatively frees it: after a failover no
                // member channel survives anyway, and a returning member
                // re-enters through resync with the default role.
                self.roles.remove(user);
                true
            }
            RoomEvent::Evicted { user, .. } => {
                self.sessions.remove(user);
                self.last_presentations.remove(user);
                self.roles.remove(user);
                true
            }
            RoomEvent::RoleChanged { user, role } => {
                self.roles.insert(user.clone(), *role);
                true
            }
            RoomEvent::ObjectChanged { object, delta, .. } => {
                // The object is about to mutate: drop its serialised cache.
                self.object_bytes.remove(object);
                let Some(img) = self.objects.get_mut(object) else {
                    return false;
                };
                match delta {
                    Delta::TextAdded { id, element } => img.add_text(element.clone()) == *id,
                    Delta::LineAdded { id, element } => img.add_line(*element) == *id,
                    Delta::ElementDeleted { id } => img.delete_element(*id).is_ok(),
                }
            }
            RoomEvent::ChoiceMade {
                user,
                component,
                form,
            } => {
                let session = self
                    .sessions
                    .entry(user.clone())
                    .or_insert_with(|| ViewerSession::new(user));
                match form {
                    Some(form) => session
                        .choose(
                            &self.doc,
                            ViewerChoice {
                                component: *component,
                                form: *form,
                            },
                        )
                        .is_ok(),
                    None => {
                        session.unchoose(*component);
                        true
                    }
                }
            }
            RoomEvent::Frozen { object, by } => {
                self.freezes.insert(*object, by.clone());
                true
            }
            RoomEvent::Released { object, .. } => {
                self.freezes.remove(object);
                true
            }
            // The operation's trigger form never crossed the wire; the
            // document mutation cannot be replayed from the event alone.
            RoomEvent::OperationApplied { .. } => false,
            // Pure notifications: no server-side state to fold.
            RoomEvent::Chat { .. }
            | RoomEvent::PresentationChanged { .. }
            | RoomEvent::TriggerFired { .. }
            | RoomEvent::AudioAnalysed { .. } => true,
        }
    }

    /// Detaches the live member queues (for a migration handoff). The
    /// room is left member-less; pair with [`Self::export_state`].
    pub(crate) fn take_member_channels(&mut self) -> Vec<(String, EventQueue)> {
        self.members.drain(..).map(|m| (m.name, m.queue)).collect()
    }

    pub(crate) fn require_member(&self, user: &str) -> Result<()> {
        if self.members.iter().any(|m| m.name == user) {
            Ok(())
        } else {
            Err(ServerError::NotInRoom {
                user: user.to_string(),
                room: self.id,
            })
        }
    }

    /// The capability gate every mutating entry point passes through: the
    /// acting user must be a live member *and* their role must grant `cap`.
    /// A denial is counted (`server.room.denied.count`) and surfaces as the
    /// structured [`ServerError::ActionRejected`].
    pub(crate) fn require_capability(&self, user: &str, cap: Capability) -> Result<()> {
        self.require_member(user)?;
        let role = self
            .roles
            .get(user)
            .copied()
            .expect("every live member holds a role");
        if role.allows(cap) {
            Ok(())
        } else {
            self.denied.inc();
            Err(ServerError::ActionRejected {
                required_capability: cap,
                role,
            })
        }
    }

    fn check_not_frozen_by_other(&self, object: SharedObjectId, user: &str) -> Result<()> {
        match self.freezes.get(&object) {
            Some(holder) if holder != user => Err(ServerError::Frozen {
                object,
                holder: holder.clone(),
            }),
            _ => Ok(()),
        }
    }

    /// The room's adaptive-delivery state, created from `cfg` on first
    /// use (under the room's own metrics registry) and shared thereafter.
    /// The returned `Arc` lets callers run cache loads and estimator math
    /// *outside* the room lock.
    pub(crate) fn delivery_state(
        &mut self,
        cfg: crate::delivery::DeliveryConfig,
    ) -> Arc<crate::delivery::DeliveryState> {
        self.delivery
            .get_or_insert_with(|| Arc::new(crate::delivery::DeliveryState::new(cfg, &self.obs)))
            .clone()
    }

    /// Drops any cached delivery payloads of a stored object (all layer
    /// depths) — called after the object is updated in the database.
    pub(crate) fn invalidate_cached_object(&mut self, object_id: u64) {
        if let Some(delivery) = &self.delivery {
            delivery.cache().invalidate(object_id);
        }
    }

    /// Registers an object (a working copy of a database image) in the room.
    pub(crate) fn insert_object(&mut self, id: SharedObjectId, image: AnnotatedImage) {
        self.object_bytes.remove(&id);
        self.objects.insert(id, image);
    }

    /// Read access to a shared object.
    pub fn object(&self, id: SharedObjectId) -> Result<&AnnotatedImage> {
        self.objects.get(&id).ok_or(ServerError::UnknownObject(id))
    }

    /// Removes an object from the room ("changed objects are saved and
    /// discarded from the room as soon as they are not needed").
    pub(crate) fn take_object(&mut self, id: SharedObjectId) -> Result<AnnotatedImage> {
        self.object_bytes.remove(&id);
        self.objects
            .remove(&id)
            .ok_or(ServerError::UnknownObject(id))
    }

    /// The viewer's current presentation of the room document.
    pub fn presentation_for(&self, user: &str) -> Result<Presentation> {
        let session = self.sessions.get(user).ok_or(ServerError::NotInRoom {
            user: user.to_string(),
            room: self.id,
        })?;
        Ok(self.engine.presentation_for(&self.doc, session)?)
    }

    /// Registers a dynamic event trigger owned by `user`; returns its id.
    pub(crate) fn add_trigger(&mut self, user: &str, condition: TriggerCondition) -> Result<u64> {
        self.require_capability(user, Capability::ManageTriggers)?;
        let id = self.next_trigger;
        self.next_trigger += 1;
        self.triggers.push((id, user.to_string(), condition));
        Ok(id)
    }

    /// Removes a trigger; only its owner may do so.
    pub(crate) fn remove_trigger(&mut self, user: &str, id: u64) -> Result<()> {
        match self.triggers.iter().position(|(tid, _, _)| *tid == id) {
            Some(i) if self.triggers[i].1 == user => {
                self.triggers.remove(i);
                Ok(())
            }
            Some(_) => Err(ServerError::Invalid(format!(
                "trigger {id} is not owned by '{user}'"
            ))),
            None => Err(ServerError::Invalid(format!("no trigger {id}"))),
        }
    }

    /// Registered triggers (id, owner).
    pub fn triggers(&self) -> Vec<(u64, &str)> {
        self.triggers
            .iter()
            .map(|(id, owner, _)| (*id, owner.as_str()))
            .collect()
    }

    /// Scans retained events with sequence number ≥ `from_seq` and fires
    /// matching triggers. Trigger events themselves are never matched (no
    /// cascades).
    fn fire_triggers(&mut self, from_seq: u64) {
        let mut fired: Vec<RoomEvent> = Vec::new();
        for sequenced in self.change_log.retained_from(from_seq) {
            let event = &sequenced.event;
            if matches!(event, RoomEvent::TriggerFired { .. }) {
                continue;
            }
            for (id, owner, condition) in &self.triggers {
                if condition.matches(event) {
                    fired.push(RoomEvent::TriggerFired {
                        trigger: *id,
                        owner: owner.clone(),
                        cause: format!("{event:?}"),
                    });
                }
            }
        }
        for event in fired {
            self.broadcast(event);
        }
    }

    /// Applies a client action, propagating the resulting deltas. This is
    /// the server's core dispatch (the paper's "use case: updating the
    /// presentation", Fig. 4b, plus the object operations of §3).
    pub(crate) fn act(&mut self, user: &str, action: Action) -> Result<()> {
        if self.frozen_for_migration {
            return Err(ServerError::Migrating(self.id));
        }
        self.require_capability(user, Self::capability_for(&action))?;
        let log_start = self.change_log.last_seq() + 1;
        let result = self.act_inner(user, action);
        if result.is_ok() {
            self.fire_triggers(log_start);
        }
        result
    }

    /// The fixed action → capability mapping: what each [`Action`] touches
    /// decides what the acting role must hold. Viewer-local actions
    /// (choices, local operations) need only [`Capability::AdjustOwnView`];
    /// anything that mutates shared state needs the matching shared-state
    /// capability.
    fn capability_for(action: &Action) -> Capability {
        match action {
            Action::Choose { .. } | Action::Unchoose { .. } => Capability::AdjustOwnView,
            Action::ApplyOperation { global, .. } => {
                if *global {
                    Capability::ApplyGlobalOperation
                } else {
                    Capability::AdjustOwnView
                }
            }
            Action::AddText { .. } | Action::AddLine { .. } | Action::DeleteElement { .. } => {
                Capability::AnnotateObjects
            }
            Action::Freeze { .. } | Action::Release { .. } => Capability::FreezeObjects,
            Action::Chat { .. } => Capability::Chat,
        }
    }

    fn act_inner(&mut self, user: &str, action: Action) -> Result<()> {
        match action {
            Action::Choose { component, form } => {
                {
                    let session = self.sessions.get_mut(user).expect("member has session");
                    session.choose(&self.doc, ViewerChoice { component, form })?;
                }
                self.broadcast(RoomEvent::ChoiceMade {
                    user: user.to_string(),
                    component,
                    form: Some(form),
                });
                self.push_presentation_update(user)?;
            }
            Action::Unchoose { component } => {
                {
                    let session = self.sessions.get_mut(user).expect("member has session");
                    session.unchoose(component);
                }
                self.broadcast(RoomEvent::ChoiceMade {
                    user: user.to_string(),
                    component,
                    form: None,
                });
                self.push_presentation_update(user)?;
            }
            Action::AddText { object, element } => {
                self.check_not_frozen_by_other(object, user)?;
                self.object_bytes.remove(&object);
                let img = self
                    .objects
                    .get_mut(&object)
                    .ok_or(ServerError::UnknownObject(object))?;
                let id = img.add_text(element.clone());
                self.broadcast(RoomEvent::ObjectChanged {
                    object,
                    by: user.to_string(),
                    delta: Delta::TextAdded { id, element },
                });
            }
            Action::AddLine { object, element } => {
                self.check_not_frozen_by_other(object, user)?;
                self.object_bytes.remove(&object);
                let img = self
                    .objects
                    .get_mut(&object)
                    .ok_or(ServerError::UnknownObject(object))?;
                let id = img.add_line(element);
                self.broadcast(RoomEvent::ObjectChanged {
                    object,
                    by: user.to_string(),
                    delta: Delta::LineAdded { id, element },
                });
            }
            Action::DeleteElement { object, element } => {
                self.check_not_frozen_by_other(object, user)?;
                self.object_bytes.remove(&object);
                let img = self
                    .objects
                    .get_mut(&object)
                    .ok_or(ServerError::UnknownObject(object))?;
                img.delete_element(element)?;
                self.broadcast(RoomEvent::ObjectChanged {
                    object,
                    by: user.to_string(),
                    delta: Delta::ElementDeleted { id: element },
                });
            }
            Action::ApplyOperation {
                component,
                trigger_form,
                operation,
                global,
            } => {
                if global {
                    // Component ids are u32; a document so large that its
                    // component count no longer fits must be rejected whole
                    // — the old `as u32` cast silently truncated and would
                    // have rebased every session onto the wrong components.
                    let components = u32::try_from(self.doc.num_components()).map_err(|_| {
                        ServerError::Invalid(format!(
                            "document has {} components, exceeding the u32 component-id space",
                            self.doc.num_components()
                        ))
                    })?;
                    self.doc
                        .add_global_operation(component, trigger_form, &operation)?;
                    // The shared document mutated: the next snapshot must
                    // re-serialise it.
                    self.doc_bytes = None;
                    // Viewer-local extensions were built against the old
                    // network; the prototype's policy is to re-derive local
                    // state after a global edit (identity rebase keeps the
                    // explicit choices, drops extensions and context).
                    let identity: Vec<Option<rcmo_core::ComponentId>> = (0..components)
                        .map(|i| Some(rcmo_core::ComponentId(i)))
                        .collect();
                    for session in self.sessions.values_mut() {
                        session.rebase(&identity);
                    }
                    self.broadcast(RoomEvent::OperationApplied {
                        user: user.to_string(),
                        component,
                        operation,
                    });
                    // Everyone's presentation may have changed.
                    let names: Vec<String> = self.members.iter().map(|m| m.name.clone()).collect();
                    for name in names {
                        self.push_presentation_update(&name)?;
                    }
                } else {
                    let session = self.sessions.get_mut(user).expect("member has session");
                    session.apply_local_operation(
                        &self.doc,
                        component,
                        trigger_form,
                        &operation,
                    )?;
                    self.push_presentation_update(user)?;
                }
            }
            Action::Freeze { object } => {
                if !self.objects.contains_key(&object) {
                    return Err(ServerError::UnknownObject(object));
                }
                if let Some(holder) = self.freezes.get(&object) {
                    return Err(ServerError::FreezeConflict(format!(
                        "object {object} already frozen by '{holder}'"
                    )));
                }
                self.freezes.insert(object, user.to_string());
                self.broadcast(RoomEvent::Frozen {
                    object,
                    by: user.to_string(),
                });
            }
            Action::Release { object } => match self.freezes.get(&object) {
                Some(holder) if holder == user => {
                    self.freezes.remove(&object);
                    self.broadcast(RoomEvent::Released {
                        object,
                        by: user.to_string(),
                    });
                }
                Some(holder) => {
                    return Err(ServerError::FreezeConflict(format!(
                        "'{user}' cannot release a freeze held by '{holder}'"
                    )))
                }
                None => {
                    return Err(ServerError::FreezeConflict(format!(
                        "object {object} is not frozen"
                    )))
                }
            },
            Action::Chat { text } => {
                self.broadcast(RoomEvent::Chat {
                    user: user.to_string(),
                    text,
                });
            }
        }
        Ok(())
    }

    /// Broadcasts a server-wide announcement into this room (the sender
    /// need not be a member — it is the administrator).
    pub(crate) fn announce(&mut self, user: &str, text: &str) {
        self.broadcast(RoomEvent::Chat {
            user: format!("{user} (announcement)"),
            text: text.to_string(),
        });
    }

    /// Broadcasts a shared analysis result (cooperative audio browsing).
    pub(crate) fn share_analysis(
        &mut self,
        user: &str,
        object: SharedObjectId,
        summary: &str,
    ) -> Result<()> {
        self.require_capability(user, Capability::ShareAnalysis)?;
        self.broadcast(RoomEvent::AudioAnalysed {
            object,
            by: user.to_string(),
            summary: summary.to_string(),
        });
        Ok(())
    }

    /// Recomputes `viewer`'s presentation (incrementally, through the
    /// engine's reconfiguration caches) and broadcasts only the delta
    /// against the presentation last broadcast for that viewer. A viewer
    /// with no broadcast history is diffed against the author-default
    /// presentation, which is what their client rendered on join.
    fn push_presentation_update(&mut self, viewer: &str) -> Result<()> {
        let p = self.presentation_for(viewer)?;
        let prev = self
            .last_presentations
            .remove(viewer)
            .unwrap_or_else(|| self.engine.default_presentation(&self.doc));
        let deltas = prev.diff(&p);
        let transfer = prev.delta_transfer_bytes(&p, &self.doc);
        self.last_presentations.insert(viewer.to_string(), p);
        self.broadcast(RoomEvent::PresentationChanged {
            viewer: viewer.to_string(),
            transfer_bytes: transfer,
            deltas,
        });
        Ok(())
    }
}

impl Metrics for Room {
    type View = RoomStats;

    fn obs(&self) -> &Registry {
        &self.obs
    }

    fn metrics(&self) -> RoomStats {
        RoomStats::from_registry(&self.obs)
    }
}
