//! Bandwidth-adaptive layered delivery: the per-client depth policy and
//! the room-level object cache (DESIGN.md §16).
//!
//! The paper's Fig. 9 multi-resolution serving used to exist here only as
//! a *failure* fallback: LIC1 degradation kicked in when a FaultyLink
//! misbehaved, sized by a hardcoded "base layer ≈ 1/5 of the bytes" guess.
//! This module inverts that into a first-class delivery tier:
//!
//! * a per-client [`rcmo_netsim::BandwidthEstimator`] (EWMA over observed
//!   transfer times, fed by client reports through
//!   [`report_transfer`](crate::server::InteractionServer::report_transfer));
//! * a [`DeliveryPolicy`] mapping the estimate onto an LIC1 layer depth
//!   using the **actual** per-object byte ladder from the codec header
//!   ([`rcmo_codec::LayeredHeader::layer_prefixes`]) — the deepest prefix
//!   whose transfer fits the time-to-first-render budget;
//! * a room-level [`ObjectCache`] in front of mediadb, keyed by
//!   `(object, layer-prefix)`, holding `Arc`-shared payloads that fan out
//!   through the same shared-pointer discipline as the PR 7 encode-once
//!   broadcast — N viewers of one CT image cost one `begin_read`, not N.
//!
//! Cache scope and authorisation: the cache is per *room*, like the
//! serialised snapshot caches — the database ACL is checked for the user
//! whose miss populates an entry, and subsequent hits are served to any
//! member whose room capability allows opening objects (room membership
//! already implies read access to room objects; snapshot resyncs ship the
//! same bytes to every member). Entries are invalidated whenever the
//! stored object is updated
//! ([`save_and_close_image`](crate::server::InteractionServer::save_and_close_image)).

use crate::error::Result;
use parking_lot::Mutex;
use rcmo_netsim::BandwidthEstimator;
use rcmo_obs::{bounds, Counter, Histogram, Registry};
use std::collections::HashMap;
use std::sync::Arc;

/// The adaptive-delivery knobs, server-wide (every room's delivery state
/// is created from the server's current config).
#[derive(Debug, Clone, Copy)]
pub struct DeliveryConfig {
    /// Time-to-first-render budget in seconds: the policy picks the
    /// deepest layer prefix whose estimated transfer fits this budget.
    pub ttfr_budget_s: f64,
    /// Bandwidth assumed for a client with no samples yet (bits/s). The
    /// default is deliberately modest — a first render errs coarse-but-
    /// fast, and the estimator replaces the assumption within a transfer
    /// or two.
    pub default_bps: f64,
    /// EWMA smoothing factor handed to each client's
    /// [`BandwidthEstimator`].
    pub ewma_alpha: f64,
    /// Byte budget of each room's [`ObjectCache`]; least-recently-used
    /// entries are evicted past it.
    pub cache_capacity_bytes: u64,
}

impl Default for DeliveryConfig {
    fn default() -> DeliveryConfig {
        DeliveryConfig {
            ttfr_budget_s: 2.0,
            default_bps: 256_000.0,
            ewma_alpha: BandwidthEstimator::DEFAULT_ALPHA,
            cache_capacity_bytes: 64 * 1024 * 1024,
        }
    }
}

/// Maps an estimated bandwidth onto an LIC1 layer depth using the
/// object's real byte ladder. Pure and deterministic — the simulator
/// exercises it on virtual-clock estimates.
#[derive(Debug, Clone, Copy)]
pub struct DeliveryPolicy {
    cfg: DeliveryConfig,
}

impl DeliveryPolicy {
    /// A policy over the given knobs.
    pub fn new(cfg: DeliveryConfig) -> DeliveryPolicy {
        DeliveryPolicy { cfg }
    }

    /// Chooses how many layers to serve: the largest count whose ladder
    /// rung transfers within the TTFR budget at `estimate_bps` (falling
    /// back to the configured default before the first sample). Always at
    /// least one layer — a render, however coarse, beats a stall — and at
    /// most `ladder.len()`. Returns `0` only for an empty ladder (no
    /// layered header: the caller serves the full payload).
    pub fn choose_layers(&self, estimate_bps: Option<f64>, ladder: &[u64]) -> usize {
        if ladder.is_empty() {
            return 0;
        }
        let bps = estimate_bps
            .unwrap_or(self.cfg.default_bps)
            .max(rcmo_netsim::MIN_BANDWIDTH_BPS);
        let mut chosen = 1;
        for (i, &rung) in ladder.iter().enumerate() {
            let secs = (rung as f64 * 8.0) / bps;
            if i == 0 || secs <= self.cfg.ttfr_budget_s {
                chosen = i + 1;
            } else {
                break;
            }
        }
        chosen
    }
}

/// Key of one cached payload: the object id and the number of layers the
/// entry's bytes decode (`FULL_PAYLOAD` = the whole stored payload,
/// layered or not).
pub type CacheKey = (u64, usize);

/// The `layers` component of a [`CacheKey`] denoting the full payload.
pub const FULL_PAYLOAD: usize = usize::MAX;

struct CacheInner {
    entries: HashMap<CacheKey, Arc<Vec<u8>>>,
    /// Recency list, oldest first (small: a room shows a handful of
    /// objects × a handful of depths).
    recency: Vec<CacheKey>,
    bytes: u64,
}

/// A room-level byte cache in front of mediadb, keyed by
/// `(object, layer-prefix)`. Entries are `Arc`-shared: serving a cached
/// payload to another viewer moves a pointer, exactly like the encode-once
/// broadcast fan-out.
///
/// Loads are single-flight by construction: the cache lock is held across
/// the miss loader, so a late-join storm of viewers opening the same CT
/// image performs one storage read while the rest wait for the pointer.
/// (The lock is the *cache's*, not the room's — the broadcast hot path is
/// never behind a storage fetch.)
pub struct ObjectCache {
    inner: Mutex<CacheInner>,
    capacity: u64,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    invalidations: Counter,
}

impl std::fmt::Debug for ObjectCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        write!(
            f,
            "ObjectCache(entries={}, bytes={})",
            inner.entries.len(),
            inner.bytes
        )
    }
}

impl ObjectCache {
    /// A cache bounded at `capacity` bytes, counting into `obs`
    /// (`server.delivery.cache.*`).
    pub fn new(capacity: u64, obs: &Registry) -> ObjectCache {
        ObjectCache {
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                recency: Vec::new(),
                bytes: 0,
            }),
            capacity,
            hits: obs.counter("server.delivery.cache.hit.count"),
            misses: obs.counter("server.delivery.cache.miss.count"),
            evictions: obs.counter("server.delivery.cache.evict.count"),
            invalidations: obs.counter("server.delivery.cache.invalidate.count"),
        }
    }

    /// The full payload of `object`, loading through `load` on a miss
    /// (one storage `begin_read`; concurrent callers of the same room wait
    /// on the cache lock and hit).
    pub fn get_or_load(
        &self,
        object: u64,
        load: impl FnOnce() -> Result<Vec<u8>>,
    ) -> Result<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock();
        let key = (object, FULL_PAYLOAD);
        if let Some(bytes) = inner.entries.get(&key) {
            self.hits.inc();
            let bytes = bytes.clone();
            Self::touch(&mut inner, key);
            return Ok(bytes);
        }
        self.misses.inc();
        let bytes = Arc::new(load()?);
        self.insert(&mut inner, key, bytes.clone());
        Ok(bytes)
    }

    /// The `layers`-deep prefix (`prefix_len` bytes) of an object whose
    /// full payload is `full`. Cached per `(object, layers)`; the slice is
    /// materialised once and `Arc`-shared afterwards.
    pub fn prefix(
        &self,
        object: u64,
        layers: usize,
        prefix_len: usize,
        full: &Arc<Vec<u8>>,
    ) -> Arc<Vec<u8>> {
        if prefix_len >= full.len() {
            return full.clone();
        }
        let mut inner = self.inner.lock();
        let key = (object, layers);
        if let Some(bytes) = inner.entries.get(&key) {
            self.hits.inc();
            let bytes = bytes.clone();
            Self::touch(&mut inner, key);
            return bytes;
        }
        // A prefix cut is not a storage read: the miss counters track
        // `begin_read`s, so only the full-payload path counts them.
        let bytes = Arc::new(full[..prefix_len].to_vec());
        self.insert(&mut inner, key, bytes.clone());
        bytes
    }

    /// Drops every entry of `object` (all layer depths and the full
    /// payload) — the stored object changed.
    pub fn invalidate(&self, object: u64) {
        let mut inner = self.inner.lock();
        let doomed: Vec<CacheKey> = inner
            .entries
            .keys()
            .filter(|(o, _)| *o == object)
            .copied()
            .collect();
        if doomed.is_empty() {
            return;
        }
        self.invalidations.inc();
        for key in doomed {
            if let Some(bytes) = inner.entries.remove(&key) {
                inner.bytes = inner.bytes.saturating_sub(bytes.len() as u64);
            }
            inner.recency.retain(|k| *k != key);
        }
    }

    /// Current cached bytes.
    pub fn bytes(&self) -> u64 {
        self.inner.lock().bytes
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn touch(inner: &mut CacheInner, key: CacheKey) {
        inner.recency.retain(|k| *k != key);
        inner.recency.push(key);
    }

    fn insert(&self, inner: &mut CacheInner, key: CacheKey, bytes: Arc<Vec<u8>>) {
        inner.bytes += bytes.len() as u64;
        if let Some(old) = inner.entries.insert(key, bytes) {
            inner.bytes = inner.bytes.saturating_sub(old.len() as u64);
        }
        Self::touch(inner, key);
        // Evict past the byte budget, oldest first — but never the entry
        // just inserted (a single oversized object may overshoot rather
        // than thrash).
        while inner.bytes > self.capacity && inner.recency.len() > 1 {
            let victim = inner.recency.remove(0);
            if let Some(old) = inner.entries.remove(&victim) {
                inner.bytes = inner.bytes.saturating_sub(old.len() as u64);
                self.evictions.inc();
            }
        }
    }
}

/// One room's adaptive-delivery state: the policy, the object cache, and
/// the per-member bandwidth estimators. Created lazily on first use (a
/// room that never delivers registers no delivery metrics) and *not*
/// migrated — a cache rebuilds where the room lands, and estimators
/// re-learn in a transfer or two.
pub struct DeliveryState {
    policy: DeliveryPolicy,
    cache: ObjectCache,
    estimators: Mutex<HashMap<String, BandwidthEstimator>>,
    alpha: f64,
    depth_hist: Histogram,
    saved_bytes: Counter,
    served_bytes: Counter,
    full_payloads: Counter,
}

impl std::fmt::Debug for DeliveryState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DeliveryState({:?})", self.cache)
    }
}

impl DeliveryState {
    /// Builds a room's delivery state from the server's current config,
    /// registering its metrics under the room's registry (which parents
    /// into the server's).
    pub fn new(cfg: DeliveryConfig, obs: &Registry) -> DeliveryState {
        DeliveryState {
            policy: DeliveryPolicy::new(cfg),
            cache: ObjectCache::new(cfg.cache_capacity_bytes, obs),
            estimators: Mutex::new(HashMap::new()),
            alpha: cfg.ewma_alpha,
            depth_hist: obs.histogram("server.delivery.depth.layers", bounds::SMALL_COUNT),
            saved_bytes: obs.counter("server.delivery.saved.bytes"),
            served_bytes: obs.counter("server.delivery.served.bytes"),
            full_payloads: obs.counter("server.delivery.full_payload.count"),
        }
    }

    /// The depth policy.
    pub fn policy(&self) -> &DeliveryPolicy {
        &self.policy
    }

    /// The room's object cache.
    pub fn cache(&self) -> &ObjectCache {
        &self.cache
    }

    /// Folds one observed client transfer into `user`'s estimator
    /// (`now_s` in the server clock's seconds — virtual under the
    /// simulator).
    pub fn observe_transfer(&self, user: &str, bytes: u64, elapsed_s: f64, now_s: f64) {
        let mut estimators = self.estimators.lock();
        let alpha = self.alpha;
        estimators
            .entry(user.to_string())
            .or_insert_with(|| BandwidthEstimator::new(alpha))
            .observe(bytes, elapsed_s, now_s);
    }

    /// `user`'s staleness-decayed bandwidth estimate at `now_s`, if any
    /// sample arrived yet.
    pub fn estimate_bps(&self, user: &str, now_s: f64) -> Option<f64> {
        self.estimators
            .lock()
            .get(user)
            .and_then(|e| e.estimate_at(now_s))
    }

    /// Records one adaptive delivery: the chosen depth, the bytes served,
    /// and the bytes the prefix saved against the full payload.
    pub fn record_delivery(&self, layers: usize, served: u64, full: u64) {
        self.depth_hist.record(layers as u64);
        self.served_bytes.add(served);
        self.saved_bytes.add(full.saturating_sub(served));
    }

    /// Records a full-payload delivery (no decodable layered header — the
    /// honest path for raw `GIM1` objects; never a fixed-fraction guess).
    pub fn record_full_payload(&self, served: u64) {
        self.full_payloads.inc();
        self.served_bytes.add(served);
    }
}

/// What [`deliver_image`](crate::server::InteractionServer::deliver_image)
/// hands back: the payload prefix to put on the wire (shared, not copied)
/// plus how it was chosen.
#[derive(Debug, Clone)]
pub struct ImageDelivery {
    /// The bytes to send — an `Arc` into the room cache, shared with
    /// every other viewer served the same prefix.
    pub payload: Arc<Vec<u8>>,
    /// Layers the payload decodes (`0` for a non-layered full payload).
    pub layers: usize,
    /// Layers the full stream holds (`0` for a non-layered payload).
    pub total_layers: usize,
    /// Size of the full stored payload in bytes.
    pub full_bytes: u64,
    /// The bandwidth estimate the choice was made from (`None` = no
    /// sample yet; the policy used its configured default).
    pub estimate_bps: Option<f64>,
}

impl ImageDelivery {
    /// `true` when the client got the complete stored payload (all layers
    /// of a layered stream, or a non-layered object).
    pub fn is_full_depth(&self) -> bool {
        self.payload.len() as u64 == self.full_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(budget_s: f64, default_bps: f64) -> DeliveryPolicy {
        DeliveryPolicy::new(DeliveryConfig {
            ttfr_budget_s: budget_s,
            default_bps,
            ..DeliveryConfig::default()
        })
    }

    #[test]
    fn depth_tracks_bandwidth_over_a_real_ladder() {
        // A 3-layer ladder: 2 KB base, 10 KB mid, 100 KB full.
        let ladder = [2_000u64, 10_000, 100_000];
        let p = policy(2.0, 256_000.0);
        // 56k modem: 10 KB = 1.43 s fits, 100 KB = 14.3 s does not.
        assert_eq!(p.choose_layers(Some(56_000.0), &ladder), 2);
        // LAN: everything fits.
        assert_eq!(p.choose_layers(Some(10_000_000.0), &ladder), 3);
        // A dead-slow link still gets the base layer.
        assert_eq!(p.choose_layers(Some(10.0), &ladder), 1);
        // No estimate: the configured default (256 kbit/s) carries the
        // mid rung (0.3 s) but not the full stream (3.1 s).
        assert_eq!(p.choose_layers(None, &ladder), 2);
        // No ladder (no decodable header): the caller serves full bytes.
        assert_eq!(p.choose_layers(Some(56_000.0), &[]), 0);
    }

    #[test]
    fn cache_serves_shared_pointers_and_counts_one_load() {
        let obs = Registry::detached();
        let cache = ObjectCache::new(1 << 20, &obs);
        let mut loads = 0;
        for _ in 0..10 {
            let bytes = cache
                .get_or_load(7, || {
                    loads += 1;
                    Ok(vec![0xAB; 4096])
                })
                .unwrap();
            assert_eq!(bytes.len(), 4096);
        }
        assert_eq!(loads, 1, "N viewers, one storage read");
        assert_eq!(obs.read_counter("server.delivery.cache.miss.count"), 1);
        assert_eq!(obs.read_counter("server.delivery.cache.hit.count"), 9);
        // Prefix entries share with the full payload when they cover it.
        let full = cache.get_or_load(7, || unreachable!()).unwrap();
        let p = cache.prefix(7, 1, 1024, &full);
        assert_eq!(p.len(), 1024);
        let p2 = cache.prefix(7, 1, 1024, &full);
        assert!(Arc::ptr_eq(&p, &p2), "same prefix, same allocation");
        let whole = cache.prefix(7, 3, 4096, &full);
        assert!(
            Arc::ptr_eq(&whole, &full),
            "full-length prefix is the full entry"
        );
    }

    #[test]
    fn eviction_is_lru_and_never_the_newest() {
        let obs = Registry::detached();
        let cache = ObjectCache::new(10_000, &obs);
        cache.get_or_load(1, || Ok(vec![1; 4_000])).unwrap();
        cache.get_or_load(2, || Ok(vec![2; 4_000])).unwrap();
        // Touch 1 so 2 is the LRU victim.
        cache.get_or_load(1, || unreachable!()).unwrap();
        cache.get_or_load(3, || Ok(vec![3; 4_000])).unwrap();
        assert_eq!(obs.read_counter("server.delivery.cache.evict.count"), 1);
        // 2 was evicted; 1 and 3 remain.
        let mut loads = 0;
        cache
            .get_or_load(2, || {
                loads += 1;
                Ok(vec![2; 4_000])
            })
            .unwrap();
        assert_eq!(loads, 1);
        // An oversized single entry overshoots rather than thrashes.
        let big = ObjectCache::new(10, &obs);
        let b = big.get_or_load(9, || Ok(vec![9; 1_000])).unwrap();
        assert_eq!(b.len(), 1_000);
        assert_eq!(big.len(), 1);
    }

    #[test]
    fn invalidation_drops_every_depth_of_the_object() {
        let obs = Registry::detached();
        let cache = ObjectCache::new(1 << 20, &obs);
        let full = cache.get_or_load(5, || Ok(vec![5; 8_192])).unwrap();
        cache.prefix(5, 1, 1_000, &full);
        cache.prefix(5, 2, 4_000, &full);
        cache.get_or_load(6, || Ok(vec![6; 100])).unwrap();
        assert_eq!(cache.len(), 4);
        cache.invalidate(5);
        assert_eq!(cache.len(), 1, "object 6 survives");
        assert_eq!(
            obs.read_counter("server.delivery.cache.invalidate.count"),
            1
        );
        let mut reloaded = false;
        cache
            .get_or_load(5, || {
                reloaded = true;
                Ok(vec![55; 8_192])
            })
            .unwrap();
        assert!(reloaded, "invalidated entry must re-read storage");
    }

    #[test]
    fn estimators_are_per_member_and_clock_driven() {
        let obs = Registry::detached();
        let st = DeliveryState::new(DeliveryConfig::default(), &obs);
        assert_eq!(st.estimate_bps("ann", 0.0), None);
        st.observe_transfer("ann", 125_000, 1.0, 0.0); // 1 Mbit/s
        st.observe_transfer("bob", 7_000, 1.0, 0.0); // 56 kbit/s
        let ann = st.estimate_bps("ann", 1.0).unwrap();
        let bob = st.estimate_bps("bob", 1.0).unwrap();
        assert!(ann > 900_000.0 && bob < 60_000.0, "{ann} vs {bob}");
    }
}
