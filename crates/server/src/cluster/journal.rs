//! Per-room replication journals: the change-log tail the cluster holds
//! *outside* the owning shard, so a dead shard's rooms can be rebuilt
//! with zero event loss.
//!
//! Every room carries a tap ([`crate::server::InteractionServer::tap_room`])
//! that feeds its sequenced event stream into an unbounded channel owned by
//! the frontend — an asynchronous replication stream in miniature. The
//! journal pairs that stream with the room's last full checkpoint (the
//! migration-grade [`RoomState`] taken at creation, at each migration, and
//! on demand): rebuild = restore the checkpoint, then replay the journal
//! tail through [`Room::ingest_replicated`], which both extends the change
//! log verbatim (dense, gap-free sequence numbers) and folds each event's
//! state effect back into the room.
//!
//! The tail is **bounded**: a journal whose drained tail outgrows its cap
//! is compacted — the tail is folded into the checkpoint exactly the way a
//! failover rebuild would fold it, then cleared. A chatty room between
//! explicit checkpoints therefore costs the frontend at most `cap` events
//! of replica memory, never an unbounded backlog (see
//! [`ClusterFrontend::maintain_replicas`](crate::cluster::ClusterFrontend::maintain_replicas)).

use crate::error::Result;
use crate::resync::SequencedEvent;
use crate::room::{Room, RoomId, RoomState};
use crossbeam::channel::Receiver;
use rcmo_obs::{Registry, SharedClock};
use std::sync::Arc;

/// A room's standby replica: checkpoint + replicated tail.
#[derive(Debug)]
pub(crate) struct RoomJournal {
    /// The last full checkpoint; `checkpoint.snapshot.seq` is the sequence
    /// number the checkpoint state reflects.
    checkpoint: RoomState,
    /// The live replication stream (the room's tap). Events arrive as
    /// the room's shared encode-once payloads — journaling a broadcast
    /// costs one pointer, not a payload copy.
    rx: Receiver<Arc<SequencedEvent>>,
    /// Drained events with `seq > checkpoint.snapshot.seq`, dense.
    events: Vec<Arc<SequencedEvent>>,
    /// Tail bound: [`Self::compact_if_over`] folds the tail into the
    /// checkpoint once the drained tail exceeds this.
    cap: usize,
}

impl RoomJournal {
    /// A journal whose replica starts at `checkpoint`, fed by `rx`, with a
    /// drained-tail bound of `cap` events. The tap may have been attached
    /// slightly *before* the checkpoint was exported; the overlap is
    /// deduplicated by sequence number on drain.
    pub(crate) fn new(
        checkpoint: RoomState,
        rx: Receiver<Arc<SequencedEvent>>,
        cap: usize,
    ) -> RoomJournal {
        RoomJournal {
            checkpoint,
            rx,
            events: Vec::new(),
            cap: cap.max(1),
        }
    }

    /// Pulls everything the replication stream has delivered so far into
    /// the journal tail, dropping events the checkpoint already reflects.
    pub(crate) fn drain(&mut self) {
        let mut last = self
            .events
            .last()
            .map(|e| e.seq)
            .unwrap_or(self.checkpoint.snapshot.seq);
        for ev in self.rx.try_iter() {
            if ev.seq > last {
                last = ev.seq;
                self.events.push(ev);
            }
        }
    }

    /// Sequence number of the newest replicated event (checkpoint seq if
    /// the tail is empty).
    pub(crate) fn last_replicated_seq(&self) -> u64 {
        self.events
            .last()
            .map(|e| e.seq)
            .unwrap_or(self.checkpoint.snapshot.seq)
    }

    /// Number of events in the drained tail.
    pub(crate) fn tail_len(&self) -> usize {
        self.events.len()
    }

    /// Rebuilds the room's state from checkpoint + tail: the failover
    /// path. Returns the rebuilt state (change log continued verbatim —
    /// the destination serves the same dense order and replay horizon)
    /// and how many tail events were *lossy* — logged into the order but
    /// with a state effect that could not be reconstructed from the event
    /// alone (see [`Room::ingest_replicated`]).
    pub(crate) fn rebuild_state(
        &self,
        room: RoomId,
        clock: SharedClock,
    ) -> Result<(RoomState, u64)> {
        // A scratch registry: the rebuild is a pure computation; the
        // adopted room re-registers under its destination shard.
        let scratch = Registry::new();
        let mut r = Room::from_state(room, self.checkpoint.clone(), Vec::new(), &scratch, clock)?;
        let mut lossy = 0u64;
        for ev in &self.events {
            if !r.ingest_replicated(ev) {
                lossy += 1;
            }
        }
        Ok((r.export_state(), lossy))
    }

    /// Folds the tail into the checkpoint if it outgrew the cap — the
    /// same computation a failover rebuild performs, done early so the
    /// tail never holds more than `cap` events between maintenance
    /// passes. Returns `(events folded, lossy folds)` when a compaction
    /// ran. A compacted replica rebuilds to the identical state the
    /// uncompacted one would have (checkpoint ∘ tail is associative);
    /// only the memory shape changes.
    pub(crate) fn compact_if_over(
        &mut self,
        room: RoomId,
        clock: SharedClock,
    ) -> Result<Option<(u64, u64)>> {
        if self.events.len() <= self.cap {
            return Ok(None);
        }
        let folded = self.events.len() as u64;
        let (state, lossy) = self.rebuild_state(room, clock)?;
        self.checkpoint = state;
        self.events.clear();
        Ok(Some((folded, lossy)))
    }

    /// Resets the replica: a fresh checkpoint (which subsumes every event
    /// drained so far) and a fresh stream from the room's new home.
    pub(crate) fn reset(&mut self, checkpoint: RoomState, rx: Receiver<Arc<SequencedEvent>>) {
        self.checkpoint = checkpoint;
        self.rx = rx;
        self.events.clear();
    }
}
