//! The cluster frontend: N `InteractionServer` shards behind one room
//! directory, with failure detection, live migration, and failover.
//!
//! Architecture (the VRVS-style reflector federation of the related work):
//! every client call names a room; the frontend looks the room up in the
//! [`RoomDirectory`], checks the owning shard's health, and forwards the
//! call under that shard's *ingress lock* — each shard models a
//! single-threaded reflector daemon, so a shard serializes its own
//! traffic while different shards proceed fully in parallel. Calls that
//! hit a mid-migration room or a suspect shard retry with bounded
//! backoff instead of erroring; only an exhausted retry budget surfaces
//! [`ServerError::ShardUnavailable`] / [`ServerError::Migrating`].
//!
//! Lock order (deadlock discipline, extending DESIGN.md §11's map → room
//! order): `directory`, `health`, and `journals` are frontend-level locks,
//! acquired and released *before* any shard is entered, never while an
//! ingress, room-map, or room lock is held (the one exception: `journals`
//! may be held across *control-plane* shard calls — tap/checkpoint — which
//! take room locks but never ingress). The per-shard `ingress` lock is
//! taken only by the data-plane `route`, holds no frontend lock, and is
//! never nested with another shard's ingress.

use crate::error::{JoinRejectCause, Result, ServerError};
use crate::events::{Action, TriggerCondition};
use crate::resync::Resync;
use crate::role::{JoinRequest, Role};
use crate::room::{RoomConfig, RoomId, RoomStats, SharedObjectId};
use crate::server::{ClientConnection, InteractionServer};
use crossbeam::channel::unbounded;
use parking_lot::Mutex;
use rcmo_core::Presentation;
use rcmo_imaging::GrayImage;
use rcmo_mediadb::MediaDb;
use rcmo_netsim::{FaultSpec, Link};
use rcmo_obs::{bounds, Counter, Gauge, Histogram, Metrics, MetricsSnapshot, Registry};
use rcmo_obs::{SharedClock, WallClock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use super::directory::{Placement, RoomDirectory, ShardId};
use super::health::{HealthTracker, ShardHealth};
use super::journal::RoomJournal;

/// Static configuration of a cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of shards.
    pub shards: usize,
    /// Virtual ring points per shard (spreads failover load).
    pub vnodes_per_shard: usize,
    /// Heartbeat interval in virtual seconds.
    pub heartbeat_interval_s: f64,
    /// Consecutive missed intervals before a shard is suspect.
    pub suspect_after_missed: u32,
    /// Consecutive missed intervals before a shard is declared dead.
    pub dead_after_missed: u32,
    /// The control link heartbeats ride on.
    pub control_link: Link,
    /// Per-shard fault models for the control link (padded with
    /// [`FaultSpec::none`] when shorter than `shards`). Seeded outages
    /// here are how an experiment injects deterministic shard stalls and
    /// partitions.
    pub heartbeat_faults: Vec<FaultSpec>,
    /// Modeled service time of the shard's reflector event loop, held
    /// under the ingress lock for every routed data-plane call (0 = none).
    /// Experiments set this to make the single-threaded-daemon bottleneck
    /// explicit, the way E17 models the slow CT decode.
    pub ingress_service_us: u64,
    /// Bounded retry budget for routed calls that hit a migrating room or
    /// an unhealthy shard.
    pub route_retries: u32,
    /// First retry backoff in microseconds (doubles per retry, capped).
    pub route_backoff_base_us: u64,
    /// Backoff cap in microseconds.
    pub route_backoff_cap_us: u64,
    /// Maximum events a room's replica journal holds between checkpoints.
    /// A tail that outgrows the cap is folded into the replica's
    /// checkpoint by [`ClusterFrontend::maintain_replicas`] — the memory a
    /// frontend spends per room stays bounded no matter how chatty the
    /// room is between explicit checkpoints.
    pub journal_tail_cap: usize,
}

impl ClusterConfig {
    /// A cluster of `shards` with LAN control links and default detection
    /// thresholds (suspect after 2 missed 0.5 s beats, dead after 4).
    pub fn new(shards: usize) -> ClusterConfig {
        ClusterConfig {
            shards,
            vnodes_per_shard: 16,
            heartbeat_interval_s: 0.5,
            suspect_after_missed: 2,
            dead_after_missed: 4,
            control_link: Link::new(10_000_000.0, 0.005),
            heartbeat_faults: Vec::new(),
            ingress_service_us: 0,
            route_retries: 64,
            route_backoff_base_us: 50,
            route_backoff_cap_us: 2_000,
            journal_tail_cap: 4_096,
        }
    }

    /// Sets the per-shard heartbeat fault models.
    pub fn with_heartbeat_faults(mut self, faults: Vec<FaultSpec>) -> ClusterConfig {
        self.heartbeat_faults = faults;
        self
    }
}

/// Aggregate cluster statistics: a typed view over the frontend registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterStats {
    /// Directory lookups served.
    pub directory_lookups: u64,
    /// Routed calls that retried (migration freeze or unhealthy shard).
    pub route_retries: u64,
    /// Live migrations completed.
    pub migrations: u64,
    /// Shards failed over.
    pub failover_shards: u64,
    /// Rooms rebuilt by failover.
    pub failover_rooms: u64,
    /// Journal events whose state effect could not be replayed (the event
    /// still holds its slot in the rebuilt total order).
    pub failover_lossy_events: u64,
    /// Rooms currently tracked by the directory.
    pub rooms: u64,
}

impl ClusterStats {
    /// Reads the cluster counters out of a metrics registry.
    pub fn from_registry(obs: &Registry) -> ClusterStats {
        ClusterStats {
            directory_lookups: obs.read_counter("cluster.directory.lookup.count"),
            route_retries: obs.read_counter("cluster.route.retry.count"),
            migrations: obs.read_counter("cluster.migration.count"),
            failover_shards: obs.read_counter("cluster.failover.shard.count"),
            failover_rooms: obs.read_counter("cluster.failover.room.count"),
            failover_lossy_events: obs.read_counter("cluster.failover.lossy.count"),
            rooms: obs.read_gauge("cluster.rooms") as u64,
        }
    }
}

struct Shard {
    server: InteractionServer,
    /// The shard's single-threaded "reflector event loop": every routed
    /// data-plane call serializes through it. Never nested with another
    /// shard's ingress.
    ingress: Mutex<()>,
}

/// The sharded interaction cluster of ROADMAP item 1: a room directory
/// over N shards, heartbeat failure detection in virtual time, live room
/// migration, and zero-event-loss failover.
pub struct ClusterFrontend {
    shards: Vec<Shard>,
    directory: Mutex<RoomDirectory>,
    health: Mutex<HealthTracker>,
    journals: Mutex<HashMap<RoomId, RoomJournal>>,
    next_room: AtomicU64,
    config: ClusterConfig,
    /// Time source for every frontend latency span and backoff sleep.
    /// Wall time in production; the simulator injects a virtual clock.
    clock: SharedClock,
    obs: Registry,
    lookups: Counter,
    retries: Counter,
    migrations: Counter,
    migration_lat: Histogram,
    failover_shards: Counter,
    failover_rooms: Counter,
    failover_lossy: Counter,
    failover_lat: Histogram,
    ingress_wait: Histogram,
    journal_compactions: Counter,
    journal_evicted: Counter,
    journal_compact_lossy: Counter,
    rooms_gauge: Gauge,
    shard_health_gauges: Vec<Gauge>,
}

impl std::fmt::Debug for ClusterFrontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ClusterFrontend(shards={})", self.shards.len())
    }
}

impl ClusterFrontend {
    /// Builds a cluster of `config.shards` shards over one shared durable
    /// store (every shard clones the `MediaDb` handle — the paper's
    /// database server is common infrastructure behind the reflectors).
    pub fn new(db: MediaDb, config: ClusterConfig) -> ClusterFrontend {
        ClusterFrontend::new_with_clock(db, config, WallClock::shared())
    }

    /// Builds a cluster with an explicit time source. The clock is shared
    /// with every shard server, so the whole cluster keeps one timeline —
    /// the simulator's virtual one, or production's wall clock.
    pub fn new_with_clock(
        db: MediaDb,
        config: ClusterConfig,
        clock: SharedClock,
    ) -> ClusterFrontend {
        assert!(config.shards > 0, "a cluster needs at least one shard");
        let obs = Registry::new();
        let mut faults = config.heartbeat_faults.clone();
        faults.resize(config.shards, FaultSpec::none());
        let health = HealthTracker::new(
            config.control_link,
            faults,
            config.heartbeat_interval_s,
            config.suspect_after_missed,
            config.dead_after_missed,
        );
        let shards = (0..config.shards)
            .map(|_| Shard {
                server: InteractionServer::new_with_clock(db.clone(), clock.clone()),
                ingress: Mutex::new(()),
            })
            .collect();
        let shard_health_gauges = (0..config.shards)
            .map(|s| obs.gauge(&format!("cluster.shard.{s}.health")))
            .collect();
        ClusterFrontend {
            shards,
            directory: Mutex::new(RoomDirectory::new(config.shards, config.vnodes_per_shard)),
            health: Mutex::new(health),
            journals: Mutex::new(HashMap::new()),
            next_room: AtomicU64::new(1),
            lookups: obs.counter("cluster.directory.lookup.count"),
            retries: obs.counter("cluster.route.retry.count"),
            migrations: obs.counter("cluster.migration.count"),
            migration_lat: obs.histogram("cluster.migration.us", bounds::LATENCY_US),
            failover_shards: obs.counter("cluster.failover.shard.count"),
            failover_rooms: obs.counter("cluster.failover.room.count"),
            failover_lossy: obs.counter("cluster.failover.lossy.count"),
            failover_lat: obs.histogram("cluster.failover.room.us", bounds::LATENCY_US),
            ingress_wait: obs.histogram("cluster.shard.ingress.wait.us", bounds::LATENCY_US),
            journal_compactions: obs.counter("cluster.journal.compact.count"),
            journal_evicted: obs.counter("cluster.journal.evicted.count"),
            journal_compact_lossy: obs.counter("cluster.journal.compact.lossy.count"),
            rooms_gauge: obs.gauge("cluster.rooms"),
            shard_health_gauges,
            obs,
            config,
            clock,
        }
    }

    /// Number of shards (dead ones included — slots are never reused).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Direct access to a shard's server (tests and experiments; normal
    /// traffic goes through the routed API).
    pub fn shard_server(&self, shard: ShardId) -> &InteractionServer {
        &self.shards[shard].server
    }

    /// The failure detector's virtual clock.
    pub fn now_s(&self) -> f64 {
        self.health.lock().now_s()
    }

    /// A shard's current health.
    pub fn shard_health(&self, shard: ShardId) -> ShardHealth {
        self.health.lock().health(shard)
    }

    /// Shards not declared dead.
    pub fn surviving_shards(&self) -> Vec<ShardId> {
        self.health.lock().surviving_shards()
    }

    /// Advances the virtual clock, pumping heartbeats. Returns shards
    /// *newly* declared dead — the caller decides when to fail them over
    /// (see [`Self::fail_over_shard`]).
    pub fn advance(&self, dt_s: f64) -> Vec<ShardId> {
        let newly_dead = {
            let mut health = self.health.lock();
            let newly_dead = health.advance(dt_s);
            for (s, gauge) in self.shard_health_gauges.iter().enumerate() {
                gauge.set(health.health(s).as_gauge());
            }
            newly_dead
        };
        newly_dead
    }

    /// Advances the failure detector to the absolute virtual time `now_s`
    /// (a no-op when it is already there or past). The simulator's bridge:
    /// the detector's own interval clock and the simulator's [`SimClock`]
    /// stay one timeline, so heartbeat deadlines land at the same seeded
    /// instants every run.
    ///
    /// [`SimClock`]: rcmo_obs::SimClock
    pub fn advance_to(&self, now_s: f64) -> Vec<ShardId> {
        let dt = now_s - self.now_s();
        if dt <= 0.0 {
            return Vec::new();
        }
        self.advance(dt)
    }

    /// Kills a shard's process at the current virtual time (a seeded
    /// crash): it stops heartbeating and will be declared dead once the
    /// clock advances past the detection threshold.
    pub fn kill_shard(&self, shard: ShardId) {
        self.health.lock().crash(shard);
    }

    // ---- room lifecycle ----------------------------------------------

    /// Creates a room, placing it by consistent hash over the live ring.
    /// Room ids are allocated centrally: they are location-independent
    /// keys, unique across every shard.
    pub fn create_room(&self, user: &str, name: &str, document_id: u64) -> Result<RoomId> {
        self.create_room_with_config(user, name, document_id, RoomConfig::new())
    }

    /// Creates a room with an explicit [`RoomConfig`] (the lecture path:
    /// capacity, change-log horizon, and member queue bound decided up
    /// front), placed by consistent hash like [`Self::create_room`].
    pub fn create_room_with_config(
        &self,
        user: &str,
        name: &str,
        document_id: u64,
        config: RoomConfig,
    ) -> Result<RoomId> {
        let id = self.next_room.fetch_add(1, Ordering::Relaxed);
        let shard = {
            let mut dir = self.directory.lock();
            let mut shard = dir.place_new(id);
            if self.health.lock().health(shard) == ShardHealth::Dead {
                // The ring still lists a dead-but-not-failed-over shard:
                // place on the first survivor instead.
                let survivors = self.health.lock().surviving_shards();
                let fallback = *survivors
                    .first()
                    .ok_or_else(|| ServerError::Invalid("no live shards left".into()))?;
                dir.complete_migration(id, fallback);
                shard = fallback;
            }
            shard
        };
        let result = (|| {
            self.shards[shard]
                .server
                .create_room_with_id(id, user, name, document_id, config)?;
            self.attach_journal(id, shard)
        })();
        match result {
            Ok(()) => {
                self.rooms_gauge.set(self.directory.lock().len() as i64);
                Ok(id)
            }
            Err(e) => {
                self.directory.lock().remove_room(id);
                Err(e)
            }
        }
    }

    /// Taps a room on its shard and installs (or resets) its journal with
    /// a fresh checkpoint. Control-plane: takes room locks, not ingress.
    fn attach_journal(&self, room: RoomId, shard: ShardId) -> Result<()> {
        let server = &self.shards[shard].server;
        let (tx, rx) = unbounded();
        server.tap_room(room, tx)?;
        let checkpoint = {
            let handle = server.room_handle(room)?;
            let mut guard = handle.lock();
            guard.export_state()
        };
        let mut journals = self.journals.lock();
        match journals.get_mut(&room) {
            Some(j) => j.reset(checkpoint, rx),
            None => {
                journals.insert(
                    room,
                    RoomJournal::new(checkpoint, rx, self.config.journal_tail_cap),
                );
            }
        }
        Ok(())
    }

    /// Replica maintenance: drains every room's replication stream and
    /// folds any journal tail that outgrew
    /// [`ClusterConfig::journal_tail_cap`] into its checkpoint. Returns
    /// the number of journals compacted. Run this periodically (the
    /// simulator does it once per epoch) — between runs, per-room replica
    /// memory is bounded by the cap instead of growing with room chatter.
    ///
    /// Counters: `cluster.journal.compact.count` (tails folded),
    /// `cluster.journal.evicted.count` (events evicted from tails),
    /// `cluster.journal.compact.lossy.count` (events folded without a
    /// replayable state effect — still safe, the room checkpoints those
    /// through [`Self::act`]'s barrier before they can reach a journal).
    pub fn maintain_replicas(&self) -> Result<usize> {
        let mut journals = self.journals.lock();
        let mut compacted = 0;
        for (&room, journal) in journals.iter_mut() {
            journal.drain();
            if let Some((evicted, lossy)) = journal.compact_if_over(room, self.clock.clone())? {
                self.journal_compactions.inc();
                self.journal_evicted.add(evicted);
                self.journal_compact_lossy.add(lossy);
                compacted += 1;
            }
        }
        Ok(compacted)
    }

    /// Refreshes a room's replica checkpoint (subsumes the journal tail).
    /// Periodic checkpointing bounds the replay work a failover does, and
    /// is required after a global document operation — the one event whose
    /// effect the journal cannot replay.
    pub fn checkpoint_room(&self, room: RoomId) -> Result<()> {
        let shard = self.shard_of(room)?;
        self.attach_journal(room, shard)
    }

    /// Drains a room's replication stream and reports the replica's reach:
    /// `(last replicated sequence number, drained tail length)`. A replica
    /// is *current* when the first component equals the room's
    /// [`Self::last_seq`] — the invariant the zero-loss failover gate
    /// checks before killing a shard.
    pub fn replication_status(&self, room: RoomId) -> Result<(u64, usize)> {
        let mut journals = self.journals.lock();
        let journal = journals
            .get_mut(&room)
            .ok_or(ServerError::UnknownRoom(room))?;
        journal.drain();
        Ok((journal.last_replicated_seq(), journal.tail_len()))
    }

    /// Closes a room cluster-wide: shard, directory, and journal.
    pub fn close_room(&self, room: RoomId) -> Result<()> {
        let shard = self.shard_of(room)?;
        self.shards[shard].server.close_room(room)?;
        self.directory.lock().remove_room(room);
        self.journals.lock().remove(&room);
        self.rooms_gauge.set(self.directory.lock().len() as i64);
        Ok(())
    }

    /// Reaps member-less rooms on every surviving shard, returning the
    /// ids closed cluster-wide.
    pub fn reap_empty_rooms(&self) -> Vec<RoomId> {
        let mut all = Vec::new();
        for s in self.surviving_shards() {
            all.extend(self.shards[s].server.reap_empty_rooms());
        }
        let mut dir = self.directory.lock();
        let mut journals = self.journals.lock();
        for &room in &all {
            dir.remove_room(room);
            journals.remove(&room);
        }
        self.rooms_gauge.set(dir.len() as i64);
        all
    }

    /// The shard currently serving `room`, if it is placed and settled.
    fn shard_of(&self, room: RoomId) -> Result<ShardId> {
        match self.directory.lock().lookup(room) {
            Some(Placement::OnShard(s)) => Ok(s),
            Some(Placement::Migrating) => Err(ServerError::Migrating(room)),
            None => Err(ServerError::UnknownRoom(room)),
        }
    }

    // ---- data-plane routing ------------------------------------------

    /// Routes a call to the shard owning `room`, retrying with bounded
    /// exponential backoff across migration freezes, mid-handoff directory
    /// states, and suspect shards. Errors only after the retry budget:
    /// the last transient condition observed — a migration freeze that
    /// never lifted surfaces [`ServerError::Migrating`], an unhealthy
    /// shard [`ServerError::ShardUnavailable`] — or the routed call's own
    /// (non-transient) error.
    fn route<R>(&self, room: RoomId, f: impl Fn(&InteractionServer) -> Result<R>) -> Result<R> {
        let mut attempt: u32 = 0;
        // Why the budget ran out: the freshest transient condition seen.
        // Every match arm below either returns or assigns it, so it is
        // definitely initialised before the exhaustion check reads it.
        let mut last_transient: ServerError;
        loop {
            self.lookups.inc();
            let placement = self.directory.lock().lookup(room);
            match placement {
                None => return Err(ServerError::UnknownRoom(room)),
                Some(Placement::Migrating) => {
                    // Transient: handoff in progress.
                    last_transient = ServerError::Migrating(room);
                }
                Some(Placement::OnShard(shard)) => {
                    let h = self.health.lock().health(shard);
                    if h == ShardHealth::Alive {
                        let s = &self.shards[shard];
                        let queued = self.clock.now_us();
                        let _ingress = s.ingress.lock();
                        self.ingress_wait
                            .record(self.clock.now_us().saturating_sub(queued));
                        if self.config.ingress_service_us > 0 {
                            self.clock.sleep_us(self.config.ingress_service_us);
                        }
                        match f(&s.server) {
                            // The room left this shard between lookup and
                            // call (migration raced us): transient.
                            Err(e @ ServerError::UnknownRoom(r))
                                if r == room
                                    && self.directory.lock().lookup(room)
                                        != Some(Placement::OnShard(shard)) =>
                            {
                                last_transient = e;
                            }
                            // Frozen for migration: transient.
                            Err(e @ ServerError::Migrating(_)) => last_transient = e,
                            Err(
                                e @ ServerError::JoinRejected {
                                    cause: JoinRejectCause::RoomFrozenForMigration,
                                    ..
                                },
                            ) => last_transient = e,
                            other => return other,
                        }
                    } else {
                        // Suspect or dead: hold the call and retry —
                        // failover or recovery resolves it.
                        last_transient = ServerError::ShardUnavailable { shard, room };
                    }
                }
            }
            if attempt >= self.config.route_retries {
                return Err(last_transient);
            }
            self.retries.inc();
            let backoff = (self.config.route_backoff_base_us << attempt.min(10))
                .min(self.config.route_backoff_cap_us);
            self.clock.sleep_us(backoff);
            attempt += 1;
        }
    }

    /// Joins a room as the role the [`JoinRequest`] asks for. Structured
    /// rejection: an unplaced room is [`JoinRejectCause::RoomNotFound`];
    /// an exhausted retry budget maps to
    /// [`JoinRejectCause::ShardUnavailable`] /
    /// [`JoinRejectCause::RoomFrozenForMigration`]; room capacity and a
    /// taken presenter seat surface [`JoinRejectCause::AtCapacity`] /
    /// [`JoinRejectCause::PresenterSeatTaken`] directly from the shard
    /// (both non-transient — the router never burns retries on them).
    pub fn join(&self, room: RoomId, req: &JoinRequest) -> Result<ClientConnection> {
        self.route(room, move |srv| srv.join(room, req))
            .map_err(|e| Self::join_cause(room, e))
    }

    /// Joins as a [`Role::Moderator`] with default queue bounds — the
    /// symmetric-room shim over [`Self::join`].
    pub fn join_default(&self, room: RoomId, user: &str) -> Result<ClientConnection> {
        self.join(room, &JoinRequest::moderator(user))
    }

    /// Reconnects a client after a lost stream (or a failover): the shard
    /// now serving the room replays the missed tail or snapshots.
    pub fn resync(
        &self,
        room: RoomId,
        user: &str,
        last_seen_seq: u64,
    ) -> Result<(ClientConnection, Resync)> {
        let user = user.to_string();
        self.route(room, move |srv| srv.resync(room, &user, last_seen_seq))
            .map_err(|e| Self::join_cause(room, e))
    }

    fn join_cause(room: RoomId, e: ServerError) -> ServerError {
        let cause = match &e {
            ServerError::UnknownRoom(_) => JoinRejectCause::RoomNotFound,
            ServerError::ShardUnavailable { .. } => JoinRejectCause::ShardUnavailable,
            ServerError::Migrating(_) => JoinRejectCause::RoomFrozenForMigration,
            _ => return e,
        };
        ServerError::JoinRejected { room, cause }
    }

    /// Leaves a room.
    pub fn leave(&self, room: RoomId, user: &str) -> Result<()> {
        let user = user.to_string();
        self.route(room, move |srv| srv.leave(room, &user))
    }

    /// Performs an action in a room. A *global* document operation is a
    /// checkpoint barrier: its [`crate::events::RoomEvent::OperationApplied`]
    /// event does not carry the operation form, so the journal could log
    /// but not replay it — refreshing the checkpoint right after captures
    /// the derived variable in the replica instead.
    pub fn act(&self, room: RoomId, user: &str, action: Action) -> Result<()> {
        let barrier = matches!(&action, Action::ApplyOperation { global: true, .. });
        let user = user.to_string();
        self.route(room, move |srv| srv.act(room, &user, action.clone()))?;
        if barrier {
            self.checkpoint_room(room)?;
        }
        Ok(())
    }

    /// The viewer's current presentation.
    pub fn presentation(&self, room: RoomId, user: &str) -> Result<Presentation> {
        let user = user.to_string();
        self.route(room, move |srv| srv.presentation(room, &user))
    }

    /// Renders a viewer's presentation as text.
    pub fn render_presentation(&self, room: RoomId, user: &str) -> Result<String> {
        let user = user.to_string();
        self.route(room, move |srv| srv.render_presentation(room, &user))
    }

    /// The document outline.
    pub fn outline(&self, room: RoomId) -> Result<String> {
        self.route(room, move |srv| srv.outline(room))
    }

    /// Opens a stored image into the room as a shared working copy.
    /// Checkpoint barrier: an object open is not a room event (the pixels
    /// come from the shared durable store, not the wire), so the replica
    /// learns of the object through a fresh checkpoint.
    pub fn open_image(&self, room: RoomId, user: &str, object_id: u64) -> Result<()> {
        let user = user.to_string();
        self.route(room, move |srv| srv.open_image(room, &user, object_id))?;
        self.checkpoint_room(room)
    }

    /// Renders a shared object's current state.
    pub fn render_object(&self, room: RoomId, object: SharedObjectId) -> Result<GrayImage> {
        self.route(room, move |srv| srv.render_object(room, object))
    }

    /// Number of annotation elements on a shared object.
    pub fn object_elements(&self, room: RoomId, object: SharedObjectId) -> Result<usize> {
        self.route(room, move |srv| srv.object_elements(room, object))
    }

    /// Saves a shared object back to the database and closes it.
    /// Checkpoint barrier, like [`Self::open_image`]: the close leaves no
    /// room event behind.
    pub fn save_and_close_image(&self, room: RoomId, user: &str, object_id: u64) -> Result<()> {
        let user = user.to_string();
        self.route(room, move |srv| {
            srv.save_and_close_image(room, &user, object_id)
        })?;
        self.checkpoint_room(room)
    }

    /// Serves a stored image at a bandwidth-adapted layer depth through
    /// the room's object cache. Not a checkpoint barrier: a delivery
    /// mutates no room state (the cache and estimators rebuild wherever
    /// the room lands after a migration or failover).
    pub fn deliver_image(
        &self,
        room: RoomId,
        user: &str,
        object_id: u64,
    ) -> Result<crate::delivery::ImageDelivery> {
        let user = user.to_string();
        self.route(room, move |srv| srv.deliver_image(room, &user, object_id))
    }

    /// Reports one client-observed transfer into the member's bandwidth
    /// estimator on whichever shard serves the room.
    pub fn report_transfer(
        &self,
        room: RoomId,
        user: &str,
        bytes: u64,
        elapsed_s: f64,
    ) -> Result<()> {
        let user = user.to_string();
        self.route(room, move |srv| {
            srv.report_transfer(room, &user, bytes, elapsed_s)
        })
    }

    /// The member's current bandwidth estimate in the room, if any.
    pub fn estimated_bandwidth(&self, room: RoomId, user: &str) -> Result<Option<f64>> {
        let user = user.to_string();
        self.route(room, move |srv| srv.estimated_bandwidth(room, &user))
    }

    /// Warms the room's object cache from the CP-net prefetch planner.
    pub fn warm_room_cache(&self, room: RoomId, user: &str) -> Result<usize> {
        let user = user.to_string();
        self.route(room, move |srv| srv.warm_room_cache(room, &user))
    }

    /// Persists the room's document back to the database.
    pub fn save_document(&self, room: RoomId, user: &str) -> Result<()> {
        let user = user.to_string();
        self.route(room, move |srv| srv.save_document(room, &user))
    }

    /// Runs audio segmentation and shares the summary with the room.
    pub fn analyse_audio(
        &self,
        room: RoomId,
        user: &str,
        audio_id: u64,
    ) -> Result<Vec<rcmo_audio::Segment>> {
        let user = user.to_string();
        self.route(room, move |srv| srv.analyse_audio(room, &user, audio_id))
    }

    /// Registers a dynamic event trigger.
    pub fn add_trigger(
        &self,
        room: RoomId,
        user: &str,
        condition: TriggerCondition,
    ) -> Result<u64> {
        let user = user.to_string();
        self.route(room, move |srv| {
            srv.add_trigger(room, &user, condition.clone())
        })
    }

    /// Removes a trigger (owner only).
    pub fn remove_trigger(&self, room: RoomId, user: &str, trigger: u64) -> Result<()> {
        let user = user.to_string();
        self.route(room, move |srv| srv.remove_trigger(room, &user, trigger))
    }

    /// Members of a room.
    pub fn members(&self, room: RoomId) -> Result<Vec<String>> {
        self.route(room, move |srv| srv.members(room))
    }

    /// Propagation statistics of a room.
    pub fn room_stats(&self, room: RoomId) -> Result<RoomStats> {
        self.route(room, move |srv| srv.room_stats(room))
    }

    /// Events retained in a room's change buffer.
    pub fn change_log_len(&self, room: RoomId) -> Result<usize> {
        self.route(room, move |srv| srv.change_log_len(room))
    }

    /// Latest sequence number in a room's total order.
    pub fn last_seq(&self, room: RoomId) -> Result<u64> {
        self.route(room, move |srv| srv.last_seq(room))
    }

    /// Reconfigures a room whole — capacity, change-log horizon, member
    /// queue bound — via [`crate::server::InteractionServer::configure_room`].
    /// `user` must hold [`crate::role::Capability::ConfigureRoom`] in the
    /// room. Replaces the old per-knob setters.
    pub fn configure_room(&self, room: RoomId, user: &str, config: RoomConfig) -> Result<()> {
        let user = user.to_string();
        self.route(room, move |srv| {
            srv.configure_room(room, &user, config.clone())
        })
    }

    /// A room's current configuration.
    pub fn room_config(&self, room: RoomId) -> Result<RoomConfig> {
        self.route(room, move |srv| srv.room_config(room))
    }

    /// Removes `target` from the room on `by`'s authority.
    pub fn evict(&self, room: RoomId, by: &str, target: &str) -> Result<()> {
        let by = by.to_string();
        let target = target.to_string();
        self.route(room, move |srv| srv.evict(room, &by, &target))
    }

    /// Hands the presenter seat from `from` to `to`.
    pub fn hand_off_presenter(&self, room: RoomId, from: &str, to: &str) -> Result<()> {
        let from = from.to_string();
        let to = to.to_string();
        self.route(room, move |srv| srv.hand_off_presenter(room, &from, &to))
    }

    /// The member's current role in the room (live or reserved), if any.
    /// Roles ride the exported [`crate::room::RoomState`], so the answer
    /// is stable across migration and failover.
    pub fn role_of(&self, room: RoomId, user: &str) -> Result<Option<Role>> {
        let user = user.to_string();
        self.route(room, move |srv| srv.role_of(room, &user))
    }

    /// Who holds the room's presenter seat, if anyone.
    pub fn presenter(&self, room: RoomId) -> Result<Option<String>> {
        self.route(room, move |srv| srv.presenter(room))
    }

    /// Broadcasts an announcement into every room on every *surviving*
    /// shard — the cross-shard fan-out a single-server announcement never
    /// needed. Returns rooms reached; shards already declared dead are
    /// skipped (their rooms re-home on failover and hear the next one).
    pub fn broadcast_announcement(&self, user: &str, text: &str) -> Result<usize> {
        let mut reached = 0;
        for s in self.surviving_shards() {
            let shard = &self.shards[s];
            let _ingress = shard.ingress.lock();
            reached += shard.server.broadcast_announcement(user, text)?;
        }
        Ok(reached)
    }

    // ---- migration and failover --------------------------------------

    /// Live-migrates a room to `target`: freeze on the source, export the
    /// migration-grade state (snapshot + sessions + change-log tail),
    /// rebuild on the target with the members' live channels re-attached,
    /// thaw. The room's total order continues with gap-free sequence
    /// numbers; calls racing the handoff retry until the directory settles.
    pub fn migrate_room(&self, room: RoomId, target: ShardId) -> Result<()> {
        let t0 = self.clock.now_us();
        if self.shard_health(target) != ShardHealth::Alive {
            return Err(ServerError::Invalid(format!(
                "migration target shard {target} is not alive"
            )));
        }
        let source = {
            let mut dir = self.directory.lock();
            match dir.lookup(room) {
                Some(Placement::OnShard(s)) if s == target => return Ok(()),
                Some(Placement::OnShard(s)) => {
                    dir.begin_migration(room);
                    s
                }
                Some(Placement::Migrating) => {
                    return Err(ServerError::Invalid(format!(
                        "room {room} is already migrating"
                    )))
                }
                None => return Err(ServerError::UnknownRoom(room)),
            }
        };
        let result = (|| {
            if self.shard_health(source) == ShardHealth::Dead {
                return Err(ServerError::ShardUnavailable {
                    shard: source,
                    room,
                });
            }
            let src = &self.shards[source].server;
            src.freeze_room_for_migration(room)?;
            let detached = src.detach_room(room)?;
            self.shards[target].server.adopt_room(detached)?;
            // The journal's new checkpoint is the adopted room's state —
            // it subsumes everything replicated so far.
            self.attach_journal(room, target)
        })();
        match result {
            Ok(()) => {
                self.directory.lock().complete_migration(room, target);
                self.migrations.inc();
                self.migration_lat
                    .record(self.clock.now_us().saturating_sub(t0));
                Ok(())
            }
            Err(e) => {
                // Roll back what we can: thaw if the room is still on the
                // source, and restore its directory entry.
                let _ = self.shards[source].server.thaw_room(room);
                self.directory.lock().complete_migration(room, source);
                Err(e)
            }
        }
    }

    /// Fails over every room of a declared-dead shard: each is rebuilt on
    /// a surviving shard from its replica (checkpoint + replicated
    /// change-log tail), continuing the same dense event order, and the
    /// directory re-pins it. Clients of those rooms resync (their streams
    /// died with the shard); in-flight calls have been retrying and settle
    /// onto the new placement. Returns `(room, new shard)` pairs.
    pub fn fail_over_shard(&self, dead: ShardId) -> Result<Vec<(RoomId, ShardId)>> {
        if self.shard_health(dead) != ShardHealth::Dead {
            return Err(ServerError::Invalid(format!(
                "shard {dead} is not declared dead; refusing to fail it over"
            )));
        }
        let survivors = self.surviving_shards();
        if survivors.is_empty() {
            return Err(ServerError::Invalid(
                "no surviving shards to fail over onto".to_string(),
            ));
        }
        // Dead shards stop contributing ring points; survivors inherit
        // its keyspace.
        let rooms = {
            let mut dir = self.directory.lock();
            dir.remove_shard(dead);
            dir.rooms_on(dead)
        };
        let mut moved = Vec::new();
        for room in rooms {
            let t0 = self.clock.now_us();
            let rebuilt = {
                let mut journals = self.journals.lock();
                let Some(journal) = journals.get_mut(&room) else {
                    continue;
                };
                journal.drain();
                journal.rebuild_state(room, self.clock.clone())?
            };
            let (state, lossy) = rebuilt;
            let target = {
                let mut dir = self.directory.lock();
                let candidate = dir.place_failover(room);
                // The ring only lists shards never declared dead, but a
                // not-yet-failed-over dead shard may still own points.
                if survivors.contains(&candidate) {
                    candidate
                } else {
                    let fallback = survivors[room as usize % survivors.len()];
                    dir.complete_migration(room, fallback);
                    fallback
                }
            };
            self.shards[target]
                .server
                .adopt_room(crate::server::DetachedRoom {
                    id: room,
                    state,
                    members: Vec::new(),
                })?;
            self.attach_journal(room, target)?;
            self.failover_rooms.inc();
            self.failover_lossy.add(lossy);
            self.failover_lat
                .record(self.clock.now_us().saturating_sub(t0));
            moved.push((room, target));
        }
        self.failover_shards.inc();
        Ok(moved)
    }

    /// Advances virtual time and fails over any shard the detector newly
    /// declared dead — the convenience loop driver for experiments.
    pub fn advance_and_fail_over(&self, dt_s: f64) -> Result<Vec<(RoomId, ShardId)>> {
        let mut moved = Vec::new();
        for dead in self.advance(dt_s) {
            moved.extend(self.fail_over_shard(dead)?);
        }
        Ok(moved)
    }

    /// Snapshot of the frontend's metrics (directory, routing, migration,
    /// failover, and per-shard health gauges — `cluster.shard.N.health`:
    /// 0 alive, 1 suspect, 2 dead). Shard-internal room metrics live in
    /// each shard's own registry; see [`Self::shard_server`].
    pub fn metrics(&self) -> MetricsSnapshot {
        // Refresh health gauges so a metrics read never reports stale
        // liveness (advance() also updates them on every tick).
        {
            let health = self.health.lock();
            for (s, gauge) in self.shard_health_gauges.iter().enumerate() {
                gauge.set(health.health(s).as_gauge());
            }
        }
        self.obs.snapshot()
    }
}

impl Metrics for ClusterFrontend {
    type View = ClusterStats;

    fn obs(&self) -> &Registry {
        &self.obs
    }

    fn metrics(&self) -> ClusterStats {
        ClusterStats::from_registry(&self.obs)
    }
}
