//! The room directory: consistent-hash placement of `RoomId → shard`,
//! with a placement table that makes rooms location-independent.
//!
//! The hash ring decides where a *new* room lands (and where a failed-over
//! room is rebuilt); the placement table is the authority for where a room
//! *is* — a migrated room's entry simply points at its new shard, so a
//! room's identity never encodes its location. Ring points are virtual
//! nodes (several per shard) so removing a dead shard redistributes its
//! keyspace roughly evenly over the survivors instead of dumping it on one
//! neighbour.

use crate::room::RoomId;
use std::collections::HashMap;

/// Identifier of a shard in the cluster (its index in the shard vector).
pub type ShardId = usize;

/// Where the directory says a room is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// The room is served by this shard.
    OnShard(ShardId),
    /// The room is mid-migration: frozen on its source, not yet adopted by
    /// its target. Calls should retry with backoff — the entry flips to
    /// `OnShard(target)` when the handoff completes.
    Migrating,
}

/// FNV-1a, the same cheap stable hash the reconfiguration memo uses — no
/// cryptographic strength needed, only stability and spread.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cluster's room directory: hash ring + placement table.
#[derive(Debug)]
pub struct RoomDirectory {
    /// Ring points `(hash, shard)`, sorted by hash. Dead shards' points
    /// are removed; the ring only ever places onto live shards.
    ring: Vec<(u64, ShardId)>,
    /// Authoritative placement of every existing room.
    placements: HashMap<RoomId, Placement>,
    vnodes_per_shard: usize,
}

impl RoomDirectory {
    /// A directory over `shards` shards with `vnodes_per_shard` ring
    /// points each.
    pub fn new(shards: usize, vnodes_per_shard: usize) -> RoomDirectory {
        assert!(shards > 0, "a cluster needs at least one shard");
        let vnodes_per_shard = vnodes_per_shard.max(1);
        let mut ring = Vec::with_capacity(shards * vnodes_per_shard);
        for shard in 0..shards {
            for v in 0..vnodes_per_shard {
                let mut key = [0u8; 16];
                key[..8].copy_from_slice(&(shard as u64).to_le_bytes());
                key[8..].copy_from_slice(&(v as u64).to_le_bytes());
                ring.push((fnv1a(&key), shard));
            }
        }
        ring.sort_unstable();
        RoomDirectory {
            ring,
            placements: HashMap::new(),
            vnodes_per_shard,
        }
    }

    /// The shard the ring hashes `room` onto (first ring point clockwise
    /// of the room's hash). Panics if the ring is empty (every shard
    /// dead) — the caller gates on surviving shards.
    fn ring_shard(&self, room: RoomId) -> ShardId {
        assert!(!self.ring.is_empty(), "no live shards left on the ring");
        let h = fnv1a(&room.to_le_bytes());
        let i = self.ring.partition_point(|&(p, _)| p < h);
        self.ring[i % self.ring.len()].1
    }

    /// Places a new room: hashes it onto the ring, records the placement,
    /// and returns the owning shard.
    pub fn place_new(&mut self, room: RoomId) -> ShardId {
        let shard = self.ring_shard(room);
        self.placements.insert(room, Placement::OnShard(shard));
        shard
    }

    /// Re-places a room whose shard died: hashes it onto the surviving
    /// ring (the dead shard's points are already removed) and records the
    /// new placement.
    pub fn place_failover(&mut self, room: RoomId) -> ShardId {
        let shard = self.ring_shard(room);
        self.placements.insert(room, Placement::OnShard(shard));
        shard
    }

    /// Current placement of a room, or `None` if the directory has never
    /// heard of it (or it was closed).
    pub fn lookup(&self, room: RoomId) -> Option<Placement> {
        self.placements.get(&room).copied()
    }

    /// Marks a room mid-migration (source frozen, target not yet serving).
    pub fn begin_migration(&mut self, room: RoomId) {
        self.placements.insert(room, Placement::Migrating);
    }

    /// Completes a migration: the room now lives on `target`.
    pub fn complete_migration(&mut self, room: RoomId, target: ShardId) {
        self.placements.insert(room, Placement::OnShard(target));
    }

    /// Drops a room from the directory (closed or reaped).
    pub fn remove_room(&mut self, room: RoomId) {
        self.placements.remove(&room);
    }

    /// Every room currently placed on `shard` (sorted, so failover order
    /// is deterministic).
    pub fn rooms_on(&self, shard: ShardId) -> Vec<RoomId> {
        let mut rooms: Vec<RoomId> = self
            .placements
            .iter()
            .filter(|(_, p)| **p == Placement::OnShard(shard))
            .map(|(&r, _)| r)
            .collect();
        rooms.sort_unstable();
        rooms
    }

    /// Removes a dead shard's points from the ring. Its rooms' placements
    /// are untouched — failover re-pins each via [`Self::place_failover`].
    pub fn remove_shard(&mut self, shard: ShardId) {
        self.ring.retain(|&(_, s)| s != shard);
    }

    /// Number of ring points a live shard contributes.
    pub fn vnodes_per_shard(&self) -> usize {
        self.vnodes_per_shard
    }

    /// Number of rooms the directory tracks.
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// `true` if no rooms are tracked.
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_spread() {
        let mut d = RoomDirectory::new(4, 16);
        let mut counts = [0usize; 4];
        for room in 1..=1000u64 {
            let s = d.place_new(room);
            assert_eq!(d.lookup(room), Some(Placement::OnShard(s)));
            counts[s] += 1;
        }
        // Rough spread: every shard owns a meaningful share.
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 100, "shard {s} owns only {c}/1000 rooms");
        }
        // Same ring, same answers.
        let mut d2 = RoomDirectory::new(4, 16);
        for room in 1..=1000u64 {
            assert_eq!(Some(Placement::OnShard(d2.place_new(room))), d.lookup(room));
        }
    }

    #[test]
    fn removing_a_shard_only_moves_its_rooms() {
        let mut d = RoomDirectory::new(4, 16);
        let before: Vec<(u64, ShardId)> = (1..=500u64).map(|r| (r, d.place_new(r))).collect();
        d.remove_shard(2);
        for (room, old_shard) in before {
            let new_shard = d.ring_shard(room);
            if old_shard != 2 {
                // Consistent hashing: survivors' rooms do not move.
                assert_eq!(new_shard, old_shard, "room {room} moved needlessly");
            } else {
                assert_ne!(new_shard, 2, "room {room} still on the dead shard");
            }
        }
    }

    #[test]
    fn migration_states_flow() {
        let mut d = RoomDirectory::new(2, 8);
        let s = d.place_new(7);
        d.begin_migration(7);
        assert_eq!(d.lookup(7), Some(Placement::Migrating));
        let target = (s + 1) % 2;
        d.complete_migration(7, target);
        assert_eq!(d.lookup(7), Some(Placement::OnShard(target)));
        assert_eq!(d.rooms_on(target), vec![7]);
        d.remove_room(7);
        assert_eq!(d.lookup(7), None);
        assert!(d.is_empty());
    }
}
