//! The sharded interaction cluster: N interaction servers behind a room
//! directory, with heartbeat failure detection, live room migration, and
//! zero-event-loss failover (DESIGN.md §12).
//!
//! Layout:
//! - [`directory`]: consistent-hash ring and the room → shard placement
//!   table (rooms are location-independent; placement can change).
//! - [`health`]: per-shard heartbeat streams in virtual time, the
//!   Alive → Suspect → Dead classification, and the sticky death latch.
//! - [`journal`]: per-room standby replicas (checkpoint + replicated
//!   change-log tail) held by the frontend, outside any shard.
//! - [`frontend`]: the [`ClusterFrontend`] tying it together — routed
//!   client API with bounded-backoff retry, migration, failover, and
//!   cluster metrics.

pub mod directory;
pub mod frontend;
pub mod health;
mod journal;

#[cfg(test)]
mod tests;

pub use directory::{Placement, RoomDirectory, ShardId};
pub use frontend::{ClusterConfig, ClusterFrontend, ClusterStats};
pub use health::{HealthTracker, ShardHealth};
