//! Heartbeat-based shard failure detection in virtual time.
//!
//! Each shard beats over its own control link
//! ([`rcmo_netsim::HeartbeatLink`]); the tracker advances a virtual clock
//! and classifies every shard by how long its last beat is overdue:
//! within `suspect_after` intervals → [`ShardHealth::Alive`], then
//! [`ShardHealth::Suspect`] (calls retry, no failover yet), then
//! [`ShardHealth::Dead`] — the declaration the frontend's failover acts
//! on. Death is sticky: a declared-dead shard never rejoins under the
//! same id (the standard membership-protocol rule that keeps a zombie
//! from splitting the room directory).
//!
//! All nondeterminism lives in the seeded [`FaultSpec`] of each link, so a
//! run's entire suspect/dead timeline is reproducible from its seeds.

use rcmo_netsim::{FaultSpec, HeartbeatLink, Link};

use super::directory::ShardId;

/// A shard's health as the failure detector sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Heartbeats arriving on schedule.
    Alive,
    /// Beats overdue past the suspicion threshold: calls to it retry with
    /// backoff, but its rooms stay put (it may just be stalled).
    Suspect,
    /// Beats overdue past the death threshold (or the process is known
    /// crashed): failover may rebuild its rooms elsewhere. Sticky.
    Dead,
}

impl ShardHealth {
    /// Gauge encoding for metrics (0 alive, 1 suspect, 2 dead).
    pub fn as_gauge(self) -> i64 {
        match self {
            ShardHealth::Alive => 0,
            ShardHealth::Suspect => 1,
            ShardHealth::Dead => 2,
        }
    }
}

#[derive(Debug)]
struct ShardState {
    link: HeartbeatLink,
    /// Virtual time of the last beat that arrived.
    last_arrival: f64,
    /// The process stopped beating entirely (seeded kill).
    crashed: bool,
    /// Sticky death latch.
    declared_dead: bool,
}

/// The frontend's failure detector: one heartbeat stream per shard, a
/// shared virtual clock, and the suspect/dead thresholds.
#[derive(Debug)]
pub struct HealthTracker {
    shards: Vec<ShardState>,
    interval_s: f64,
    suspect_after: u32,
    dead_after: u32,
    now_s: f64,
}

impl HealthTracker {
    /// A tracker over `faults.len()` shards, each beating every
    /// `interval_s` virtual seconds over `link` under its own fault model.
    /// A shard is suspect after `suspect_after` missed intervals and dead
    /// after `dead_after`.
    pub fn new(
        link: Link,
        faults: Vec<FaultSpec>,
        interval_s: f64,
        suspect_after: u32,
        dead_after: u32,
    ) -> HealthTracker {
        assert!(
            suspect_after >= 1 && dead_after > suspect_after,
            "thresholds must satisfy 1 <= suspect_after < dead_after"
        );
        let shards = faults
            .into_iter()
            .map(|fault| ShardState {
                link: HeartbeatLink::new(link, fault, interval_s),
                last_arrival: 0.0,
                crashed: false,
                declared_dead: false,
            })
            .collect();
        HealthTracker {
            shards,
            interval_s,
            suspect_after,
            dead_after,
            now_s: 0.0,
        }
    }

    /// The virtual clock.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Number of shards tracked.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` if no shards are tracked.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Marks a shard's process as crashed (a seeded kill): it stops
    /// beating, so the clock advancing past `dead_after` intervals will
    /// declare it dead.
    pub fn crash(&mut self, shard: ShardId) {
        self.shards[shard].crashed = true;
    }

    /// Advances the virtual clock by `dt_s`, pumping every live shard's
    /// heartbeat stream and latching deaths. Returns shards that became
    /// dead during this advance.
    pub fn advance(&mut self, dt_s: f64) -> Vec<ShardId> {
        assert!(dt_s >= 0.0, "time only moves forward");
        self.now_s += dt_s;
        let now = self.now_s;
        let mut newly_dead = Vec::new();
        for (id, s) in self.shards.iter_mut().enumerate() {
            if !s.crashed {
                if let Some(&last) = s.link.beats_until(now).last() {
                    s.last_arrival = last;
                }
            }
            if !s.declared_dead
                && Self::classify_raw(s, now, self.interval_s, self.suspect_after, self.dead_after)
                    == ShardHealth::Dead
            {
                s.declared_dead = true;
                newly_dead.push(id);
            }
        }
        newly_dead
    }

    fn classify_raw(
        s: &ShardState,
        now: f64,
        interval_s: f64,
        suspect_after: u32,
        dead_after: u32,
    ) -> ShardHealth {
        if s.declared_dead {
            return ShardHealth::Dead;
        }
        let overdue = (now - s.last_arrival) / interval_s;
        if overdue >= dead_after as f64 {
            ShardHealth::Dead
        } else if overdue >= suspect_after as f64 {
            ShardHealth::Suspect
        } else {
            ShardHealth::Alive
        }
    }

    /// The health of `shard` at the current virtual time.
    pub fn health(&self, shard: ShardId) -> ShardHealth {
        let s = &self.shards[shard];
        Self::classify_raw(
            s,
            self.now_s,
            self.interval_s,
            self.suspect_after,
            self.dead_after,
        )
    }

    /// Every shard currently classified dead.
    pub fn dead_shards(&self) -> Vec<ShardId> {
        (0..self.shards.len())
            .filter(|&s| self.health(s) == ShardHealth::Dead)
            .collect()
    }

    /// Shards not declared dead (alive or merely suspect).
    pub fn surviving_shards(&self) -> Vec<ShardId> {
        (0..self.shards.len())
            .filter(|&s| self.health(s) != ShardHealth::Dead)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lan() -> Link {
        Link::new(10_000_000.0, 0.005)
    }

    #[test]
    fn clean_shards_stay_alive() {
        let mut t = HealthTracker::new(lan(), vec![FaultSpec::none(); 3], 0.5, 2, 4);
        assert!(t.advance(60.0).is_empty());
        for s in 0..3 {
            assert_eq!(t.health(s), ShardHealth::Alive);
        }
        assert_eq!(t.surviving_shards(), vec![0, 1, 2]);
    }

    #[test]
    fn crash_walks_alive_suspect_dead_and_sticks() {
        let mut t = HealthTracker::new(lan(), vec![FaultSpec::none(); 2], 0.5, 2, 4);
        t.advance(10.0);
        t.crash(1);
        // One interval overdue: still alive (the detector is patient).
        t.advance(0.6);
        assert_eq!(t.health(1), ShardHealth::Alive);
        // Past 2 intervals: suspect. Past 4: dead, reported exactly once.
        t.advance(0.6);
        assert_eq!(t.health(1), ShardHealth::Suspect);
        let dead = t.advance(1.0);
        assert_eq!(dead, vec![1]);
        assert_eq!(t.health(1), ShardHealth::Dead);
        assert!(t.advance(100.0).is_empty(), "death reported once");
        assert_eq!(t.health(0), ShardHealth::Alive);
        assert_eq!(t.surviving_shards(), vec![0]);
    }

    #[test]
    fn stall_window_suspects_then_recovers() {
        // Outage [5, 6.2): beats at 5, 5.5, 6 are lost — the shard goes
        // suspect — then beating resumes and it is alive again. The
        // window stays short of the death threshold, so no latch.
        let spec = FaultSpec::none().with_outage(5.0, 6.2);
        let mut t = HealthTracker::new(lan(), vec![spec, FaultSpec::none()], 0.5, 2, 4);
        t.advance(4.9);
        assert_eq!(t.health(0), ShardHealth::Alive);
        t.advance(1.4); // now 6.3: last arrival ~4.5, overdue > 2 intervals
        assert_eq!(t.health(0), ShardHealth::Suspect);
        t.advance(0.5); // beats at 6.5+ arrive again
        assert_eq!(t.health(0), ShardHealth::Alive);
    }

    #[test]
    fn timelines_are_seed_deterministic() {
        let run = |seed| {
            let mut t = HealthTracker::new(lan(), vec![FaultSpec::lossy(0.4, seed); 2], 0.5, 2, 4);
            let mut timeline = Vec::new();
            for _ in 0..100 {
                t.advance(0.25);
                timeline.push((t.health(0), t.health(1)));
            }
            timeline
        };
        assert_eq!(run(9), run(9));
    }
}
