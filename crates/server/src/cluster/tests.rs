use super::*;
use crate::error::{JoinRejectCause, ServerError};
use crate::events::{Action, RoomEvent};
use crate::resync::Resync;
use crate::role::{JoinRequest, Role};
use crate::room::RoomConfig;
use crate::server::{ClientConnection, InteractionServer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcmo_core::{FormKind, MediaRef, MultimediaDocument, PresentationForm};
use rcmo_imaging::{ct_phantom, LineElement, TextElement};
use rcmo_mediadb::{AccessLevel, DocumentObject, ImageObject, MediaDb};
use rcmo_netsim::FaultSpec;
use rcmo_obs::Metrics;

/// A database with `users` write-level users (`user-0` …), one stored CT
/// image, and one document referencing it.
fn fixture_db(users: usize) -> (MediaDb, u64, u64) {
    let db = MediaDb::in_memory().unwrap();
    for u in 0..users {
        db.put_user("admin", &format!("user-{u}"), AccessLevel::Write)
            .unwrap();
    }
    let ct = ct_phantom(32, 2, 1).unwrap();
    let image_id = db
        .insert_image(
            "admin",
            &ImageObject {
                name: "ct".into(),
                quality: 0,
                texts: String::new(),
                cm: Vec::new(),
                data: ct.to_bytes(),
            },
        )
        .unwrap();
    let mut doc = MultimediaDocument::new("Case");
    let images = doc.add_composite(doc.root(), "Images").unwrap();
    doc.add_primitive(
        images,
        "CT",
        MediaRef::Stored {
            media_type: "Image".into(),
            object_id: image_id,
        },
        vec![
            PresentationForm::new("flat", FormKind::Flat, 100_000),
            PresentationForm::hidden(),
        ],
    )
    .unwrap();
    doc.validate().unwrap();
    let doc_id = db
        .insert_document(
            "admin",
            &DocumentObject {
                title: doc.title().into(),
                data: doc.to_bytes(),
            },
        )
        .unwrap();
    (db, doc_id, image_id)
}

/// Test-sized retry budget: transient states resolve (or fail) fast.
fn test_config(shards: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(shards);
    cfg.route_retries = 4;
    cfg.route_backoff_base_us = 10;
    cfg.route_backoff_cap_us = 100;
    cfg
}

fn cluster(shards: usize, users: usize) -> (ClusterFrontend, u64, u64) {
    let (db, doc_id, image_id) = fixture_db(users);
    (
        ClusterFrontend::new(db, test_config(shards)),
        doc_id,
        image_id,
    )
}

fn payloads(conn: &ClientConnection) -> Vec<RoomEvent> {
    conn.events.try_iter().map(|e| e.event).collect()
}

#[test]
fn rooms_spread_across_shards_and_route_transparently() {
    let (cf, doc_id, _) = cluster(4, 8);
    let mut rooms = Vec::new();
    for i in 0..8 {
        let user = format!("user-{i}");
        rooms.push(cf.create_room(&user, &format!("room-{i}"), doc_id).unwrap());
    }
    // Consistent hashing with 16 vnodes/shard spreads 8 rooms over >1 shard.
    let populated = (0..4)
        .filter(|&s| cf.shard_server(s).room_count() > 0)
        .count();
    assert!(populated >= 2, "placement collapsed onto {populated} shard");
    assert_eq!(
        (0..4).map(|s| cf.shard_server(s).room_count()).sum::<u64>(),
        8
    );
    // Every room is reachable through the frontend regardless of shard.
    for (i, &room) in rooms.iter().enumerate() {
        let user = format!("user-{i}");
        let conn = cf.join_default(room, &user).unwrap();
        cf.act(
            room,
            &user,
            Action::Chat {
                text: format!("hello from {i}"),
            },
        )
        .unwrap();
        let got = payloads(&conn);
        assert!(got
            .iter()
            .any(|e| matches!(e, RoomEvent::Chat { text, .. } if text.contains("hello"))));
        assert!(!cf.render_presentation(room, &user).unwrap().is_empty());
    }
    assert_eq!(Metrics::metrics(&cf).rooms, 8);
}

#[test]
fn announcement_fans_out_across_shards() {
    let (cf, doc_id, _) = cluster(3, 6);
    let mut conns = Vec::new();
    for i in 0..6 {
        let user = format!("user-{i}");
        let room = cf.create_room(&user, &format!("r{i}"), doc_id).unwrap();
        conns.push(cf.join_default(room, &user).unwrap());
    }
    let reached = cf
        .broadcast_announcement("admin", "maintenance at noon")
        .unwrap();
    assert_eq!(reached, 6);
    for conn in &conns {
        assert!(payloads(conn)
            .iter()
            .any(|e| matches!(e, RoomEvent::Chat { text, .. } if text.contains("maintenance"))));
    }
}

#[test]
fn close_and_reap_keep_directory_and_room_count_in_sync() {
    let (cf, doc_id, _) = cluster(2, 3);
    let keep = cf.create_room("user-0", "keep", doc_id).unwrap();
    let close = cf.create_room("user-1", "close", doc_id).unwrap();
    let idle = cf.create_room("user-2", "idle", doc_id).unwrap();
    let _conn = cf.join_default(keep, "user-0").unwrap();

    cf.close_room(close).unwrap();
    assert!(matches!(
        cf.join_default(close, "user-1"),
        Err(ServerError::JoinRejected {
            cause: JoinRejectCause::RoomNotFound,
            ..
        })
    ));

    // Reaping closes the member-less room but not the occupied one.
    let reaped = cf.reap_empty_rooms();
    assert_eq!(reaped, vec![idle]);
    assert!(cf.members(keep).is_ok());
    let total: u64 = (0..2).map(|s| cf.shard_server(s).room_count()).sum();
    assert_eq!(total, 1);
    assert_eq!(Metrics::metrics(&cf).rooms, 1);
}

#[test]
fn zero_change_log_capacity_is_rejected() {
    let (cf, doc_id, _) = cluster(1, 1);
    let room = cf.create_room("user-0", "r", doc_id).unwrap();
    let _c = cf.join_default(room, "user-0").unwrap();
    match cf.configure_room(
        room,
        "user-0",
        RoomConfig::new().with_change_log_capacity(0),
    ) {
        Err(ServerError::Invalid(msg)) => assert!(msg.contains("at least 1")),
        other => panic!("expected Invalid, got {other:?}"),
    }
    cf.configure_room(
        room,
        "user-0",
        RoomConfig::new().with_change_log_capacity(8),
    )
    .unwrap();
    // Zero queue bounds are rejected the same way, at creation too.
    match cf.create_room_with_config(
        "user-0",
        "r2",
        doc_id,
        RoomConfig::new().with_member_queue_bound(0),
    ) {
        Err(ServerError::Invalid(msg)) => assert!(msg.contains("queue bound")),
        other => panic!("expected Invalid, got {other:?}"),
    }
}

#[test]
fn join_rejections_carry_structured_causes() {
    let (cf, doc_id, _) = cluster(2, 3);
    // Unknown room.
    match cf.join_default(99, "user-0") {
        Err(ServerError::JoinRejected { room, cause }) => {
            assert_eq!(room, 99);
            assert_eq!(cause, JoinRejectCause::RoomNotFound);
            assert!(!cause.is_transient());
        }
        other => panic!("expected JoinRejected, got {other:?}"),
    }
    // Capacity (configured up front, before the first member).
    let room = cf
        .create_room_with_config(
            "user-0",
            "small",
            doc_id,
            RoomConfig::new().with_capacity(Some(1)),
        )
        .unwrap();
    let _first = cf.join_default(room, "user-0").unwrap();
    match cf.join_default(room, "user-1") {
        Err(ServerError::JoinRejected { cause, .. }) => {
            assert_eq!(cause, JoinRejectCause::AtCapacity);
            assert!(cause
                .as_str()
                .contains("maximum number of room participants"));
        }
        other => panic!("expected AtCapacity, got {other:?}"),
    }
    // Lifting the bound (a member holding ConfigureRoom reconfigures)
    // admits the second member.
    cf.configure_room(room, "user-0", RoomConfig::new().with_capacity(None))
        .unwrap();
    cf.join_default(room, "user-1").unwrap();
}

#[test]
fn frozen_room_rejects_join_with_migration_cause() {
    let (cf, doc_id, _) = cluster(2, 2);
    let room = cf.create_room("user-0", "r", doc_id).unwrap();
    cf.join_default(room, "user-0").unwrap();
    let shard = (0..2)
        .find(|&s| cf.shard_server(s).room_count() > 0)
        .unwrap();
    cf.shard_server(shard)
        .freeze_room_for_migration(room)
        .unwrap();
    match cf.join_default(room, "user-1") {
        Err(ServerError::JoinRejected { cause, .. }) => {
            assert_eq!(cause, JoinRejectCause::RoomFrozenForMigration);
            assert!(cause.is_transient());
        }
        other => panic!("expected frozen rejection, got {other:?}"),
    }
    cf.shard_server(shard).thaw_room(room).unwrap();
    cf.join_default(room, "user-1").unwrap();
}

#[test]
fn migration_is_transparent_to_live_members() {
    let (cf, doc_id, image_id) = cluster(2, 2);
    let room = cf.create_room("user-0", "tumor-board", doc_id).unwrap();
    let a = cf.join_default(room, "user-0").unwrap();
    let b = cf.join_default(room, "user-1").unwrap();
    cf.open_image(room, "user-0", image_id).unwrap();
    for i in 0..5 {
        cf.act(
            room,
            "user-0",
            Action::Chat {
                text: format!("pre-{i}"),
            },
        )
        .unwrap();
    }
    let source = (0..2)
        .find(|&s| cf.shard_server(s).room_count() == 1)
        .unwrap();
    let target = 1 - source;
    let before = cf.last_seq(room).unwrap();

    cf.migrate_room(room, target).unwrap();

    assert_eq!(cf.shard_server(source).room_count(), 0);
    assert_eq!(cf.shard_server(target).room_count(), 1);
    // The total order continues: same seq counter, same replay horizon.
    assert_eq!(cf.last_seq(room).unwrap(), before);
    for i in 0..5 {
        cf.act(
            room,
            "user-1",
            Action::Chat {
                text: format!("post-{i}"),
            },
        )
        .unwrap();
    }
    // Both members' original connections span the handoff: dense seqs,
    // no gap, no duplicate, all ten chats present.
    for conn in [&a, &b] {
        let events: Vec<_> = conn.events.try_iter().collect();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "gap in {seqs:?}");
        let chats: Vec<String> = events
            .iter()
            .filter_map(|e| match &e.event {
                RoomEvent::Chat { text, .. } => Some(text.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(chats.iter().filter(|t| t.starts_with("pre-")).count(), 5);
        assert_eq!(chats.iter().filter(|t| t.starts_with("post-")).count(), 5);
    }
    // The annotated shared object crossed over too.
    assert_eq!(cf.object_elements(room, image_id).unwrap(), 0);
    assert_eq!(cf.members(room).unwrap().len(), 2);
    assert_eq!(Metrics::metrics(&cf).migrations, 1);
}

#[test]
fn migration_rejects_bad_targets_and_rolls_back() {
    let (cf, doc_id, _) = cluster(2, 1);
    let room = cf.create_room("user-0", "r", doc_id).unwrap();
    let source = (0..2)
        .find(|&s| cf.shard_server(s).room_count() == 1)
        .unwrap();

    // Migrating to the current shard is a no-op.
    cf.migrate_room(room, source).unwrap();
    assert_eq!(Metrics::metrics(&cf).migrations, 0);

    // Unknown room.
    assert!(matches!(
        cf.migrate_room(999, source),
        Err(ServerError::UnknownRoom(999))
    ));

    // A dead target is refused outright.
    let target = 1 - source;
    cf.kill_shard(target);
    let newly_dead = cf.advance(10.0);
    assert_eq!(newly_dead, vec![target]);
    assert!(matches!(
        cf.migrate_room(room, target),
        Err(ServerError::Invalid(_))
    ));
    // The room still serves from its original shard.
    cf.join_default(room, "user-0").unwrap();
    assert_eq!(
        cf.shard_health(target),
        ShardHealth::Dead,
        "death is sticky"
    );
}

#[test]
fn failover_rebuilds_rooms_with_zero_event_loss() {
    let (db, doc_id, image_id) = fixture_db(4);
    let mut cfg = test_config(2);
    cfg.heartbeat_faults = vec![FaultSpec::none(); 2];
    let cf = ClusterFrontend::new(db, cfg);

    // Two rooms, one pinned to each shard via migration so the kill hits
    // exactly one of them.
    let doomed = cf.create_room("user-0", "doomed", doc_id).unwrap();
    let safe = cf.create_room("user-1", "safe", doc_id).unwrap();
    cf.migrate_room(doomed, 0).unwrap();
    cf.migrate_room(safe, 1).unwrap();

    let conn = cf.join_default(doomed, "user-0").unwrap();
    let safe_conn = cf.join_default(safe, "user-1").unwrap();
    cf.open_image(doomed, "user-0", image_id).unwrap();
    cf.act(
        doomed,
        "user-0",
        Action::AddLine {
            object: image_id,
            element: LineElement {
                x0: 0,
                y0: 0,
                x1: 10,
                y1: 10,
                intensity: 200,
            },
        },
    )
    .unwrap();
    for i in 0..6 {
        cf.act(
            doomed,
            "user-0",
            Action::Chat {
                text: format!("m{i}"),
            },
        )
        .unwrap();
    }
    // The uninterrupted observer's view of the total order, pre-crash.
    let reference: Vec<_> = conn.events.try_iter().collect();
    let last_seen = reference.last().unwrap().seq;
    assert_eq!(cf.last_seq(doomed).unwrap(), last_seen);
    // The replica is current before the crash.
    assert_eq!(cf.replication_status(doomed).unwrap().0, last_seen);

    // Crash shard 0; the detector declares it dead; failover re-homes the
    // doomed room onto shard 1.
    cf.kill_shard(0);
    let moved = cf.advance_and_fail_over(10.0).unwrap();
    assert_eq!(moved, vec![(doomed, 1)]);
    assert_eq!(cf.shard_server(1).room_count(), 2);

    // The surviving room never noticed.
    cf.act(
        safe,
        "user-1",
        Action::Chat {
            text: "still here".into(),
        },
    )
    .unwrap();
    assert!(payloads(&safe_conn)
        .iter()
        .any(|e| matches!(e, RoomEvent::Chat { text, .. } if text == "still here")));

    // Zero loss, E13-style: a client resyncing from seq 0 replays a
    // stream identical to the uninterrupted reference over the common
    // range, and the order stays dense.
    let (conn2, catch_up) = cf.resync(doomed, "user-0", 0).unwrap();
    let Resync::Events(replayed) = catch_up else {
        panic!("within horizon: expected event replay, got snapshot");
    };
    assert_eq!(replayed, reference, "rebuilt order diverged from original");

    // The rebuilt room keeps serving: state survived (annotation intact),
    // and new events continue the dense order.
    assert_eq!(cf.object_elements(doomed, image_id).unwrap(), 1);
    cf.act(
        doomed,
        "user-0",
        Action::Chat {
            text: "after".into(),
        },
    )
    .unwrap();
    let new_events: Vec<_> = conn2.events.try_iter().collect();
    let seqs: Vec<u64> = new_events.iter().map(|e| e.seq).collect();
    assert!(!seqs.is_empty());
    assert!(
        seqs.windows(2).all(|w| w[1] == w[0] + 1) && seqs[0] == last_seen + 1,
        "post-failover seqs not dense from {last_seen}: {seqs:?}"
    );

    let stats = Metrics::metrics(&cf);
    assert_eq!(stats.failover_shards, 1);
    assert_eq!(stats.failover_rooms, 1);
    assert_eq!(stats.failover_lossy_events, 0);
}

#[test]
fn create_room_avoids_dead_shards() {
    let (cf, doc_id, _) = cluster(2, 1);
    cf.kill_shard(1);
    cf.advance(10.0);
    // Every new room lands on the survivor even when the hash prefers the
    // dead shard (its ring points are still present until failover).
    for i in 0..6 {
        let room = cf.create_room("user-0", &format!("r{i}"), doc_id).unwrap();
        assert!(cf.join_default(room, "user-0").is_ok());
    }
    assert_eq!(cf.shard_server(0).room_count(), 6);
    assert_eq!(cf.shard_server(1).room_count(), 0);
}

/// Satellite property test: for random interaction histories, freeze →
/// export → rebuild is an identity on everything a member can observe —
/// presentation, member set, shared-object state, sequence counter, and
/// replay horizon — including a non-empty change-log tail.
#[test]
fn property_freeze_export_rebuild_is_identity() {
    for seed in 0..8u64 {
        let (db, doc_id, image_id) = fixture_db(3);
        let source = InteractionServer::new(db.clone());
        let dest = InteractionServer::new(db);
        let room = source.create_room("user-0", "prop", doc_id).unwrap();
        let users = ["user-0", "user-1", "user-2"];
        let conns: Vec<_> = users
            .iter()
            .map(|u| source.join_default(room, u).unwrap())
            .collect();
        source.open_image(room, "user-0", image_id).unwrap();

        let mut rng = StdRng::seed_from_u64(seed);
        let steps = rng.gen_range(5..40);
        for step in 0..steps {
            let user = users[rng.gen_range(0..users.len())];
            match rng.gen_range(0..4) {
                0 => source
                    .act(
                        room,
                        user,
                        Action::Chat {
                            text: format!("s{step}"),
                        },
                    )
                    .unwrap(),
                1 => source
                    .act(
                        room,
                        user,
                        Action::AddLine {
                            object: image_id,
                            element: LineElement {
                                x0: rng.gen_range(0..32),
                                y0: rng.gen_range(0..32),
                                x1: rng.gen_range(0..32),
                                y1: rng.gen_range(0..32),
                                intensity: 255,
                            },
                        },
                    )
                    .unwrap(),
                2 => source
                    .act(
                        room,
                        user,
                        Action::AddText {
                            object: image_id,
                            element: TextElement {
                                x: rng.gen_range(0..32),
                                y: rng.gen_range(0..32),
                                text: format!("t{step}"),
                                intensity: 200,
                                scale: 1,
                            },
                        },
                    )
                    .unwrap(),
                _ => {
                    source
                        .act(room, user, Action::Freeze { object: image_id })
                        .unwrap();
                    source
                        .act(room, user, Action::Release { object: image_id })
                        .unwrap();
                }
            }
        }

        let members_before = source.members(room).unwrap();
        let last_seq = source.last_seq(room).unwrap();
        let log_len = source.change_log_len(room).unwrap();
        let elements = source.object_elements(room, image_id).unwrap();
        let views: Vec<String> = users
            .iter()
            .map(|u| source.render_presentation(room, u).unwrap())
            .collect();
        assert!(log_len > 0, "history must leave a non-empty tail");

        source.freeze_room_for_migration(room).unwrap();
        let detached = source.detach_room(room).unwrap();
        assert_eq!(detached.state.tail.len(), log_len);
        dest.adopt_room(detached).unwrap();

        // Everything observable is preserved on the destination.
        assert_eq!(dest.members(room).unwrap(), members_before, "seed {seed}");
        assert_eq!(dest.last_seq(room).unwrap(), last_seq, "seed {seed}");
        assert_eq!(dest.change_log_len(room).unwrap(), log_len, "seed {seed}");
        assert_eq!(
            dest.object_elements(room, image_id).unwrap(),
            elements,
            "seed {seed}"
        );
        for (u, view) in users.iter().zip(&views) {
            assert_eq!(
                &dest.render_presentation(room, u).unwrap(),
                view,
                "seed {seed}"
            );
        }
        // The order continues densely: the next event takes last_seq + 1,
        // delivered over the members' original (re-attached) channels.
        dest.act(
            room,
            "user-1",
            Action::Chat {
                text: "cont".into(),
            },
        )
        .unwrap();
        for conn in &conns {
            let tail: Vec<_> = conn.events.try_iter().collect();
            assert_eq!(tail.last().unwrap().seq, last_seq + 1, "seed {seed}");
        }
        // And the destination can still serve a full-horizon resync.
        let (_c, catch_up) = dest.resync(room, "user-2", 0).unwrap();
        match catch_up {
            Resync::Events(ev) => assert_eq!(ev.last().unwrap().seq, last_seq + 1),
            Resync::Snapshot(s) => assert_eq!(s.seq, last_seq + 1),
        }
    }
}

#[test]
fn suspect_shard_call_fails_after_retry_budget_then_recovers() {
    let (db, doc_id, _) = fixture_db(1);
    let mut cfg = test_config(1);
    // Shard 0's heartbeats black out over [5, 7): long enough to go
    // suspect, short of the 2 s death threshold.
    cfg.heartbeat_faults = vec![FaultSpec::none().with_outage(5.0, 7.0)];
    let cf = ClusterFrontend::new(db, cfg);
    let room = cf.create_room("user-0", "r", doc_id).unwrap();
    cf.join_default(room, "user-0").unwrap();

    cf.advance(6.5); // inside the outage: suspect
    assert_eq!(cf.shard_health(0), ShardHealth::Suspect);
    match cf.act(room, "user-0", Action::Chat { text: "x".into() }) {
        Err(ServerError::ShardUnavailable { shard: 0, room: r }) => assert_eq!(r, room),
        other => panic!("expected ShardUnavailable, got {other:?}"),
    }
    let retries_after_suspect = Metrics::metrics(&cf).route_retries;
    assert!(retries_after_suspect > 0);

    cf.advance(1.0); // beats resume: alive again, calls flow
    assert_eq!(cf.shard_health(0), ShardHealth::Alive);
    cf.act(room, "user-0", Action::Chat { text: "y".into() })
        .unwrap();
}

#[test]
fn roles_survive_migration_and_failover() {
    let (db, doc_id, image_id) = fixture_db(3);
    let mut cfg = test_config(2);
    cfg.heartbeat_faults = vec![FaultSpec::none(); 2];
    let cf = ClusterFrontend::new(db, cfg);

    let room = cf.create_room("user-0", "lecture", doc_id).unwrap();
    cf.migrate_room(room, 0).unwrap();
    let prof = cf.join(room, &JoinRequest::presenter("user-0")).unwrap();
    assert_eq!(prof.role, Role::Presenter);
    let _viewer = cf.join(room, &JoinRequest::viewer("user-1")).unwrap();
    cf.open_image(room, "user-0", image_id).unwrap();

    // Live migration carries the role table with the room.
    cf.migrate_room(room, 1).unwrap();
    assert_eq!(cf.role_of(room, "user-0").unwrap(), Some(Role::Presenter));
    assert_eq!(cf.role_of(room, "user-1").unwrap(), Some(Role::Viewer));
    assert_eq!(cf.presenter(room).unwrap().as_deref(), Some("user-0"));
    // The presenter seat stays unique across the move (and the cause is
    // non-transient, so the router surfaces it instead of retrying).
    assert!(matches!(
        cf.join(room, &JoinRequest::presenter("user-2")),
        Err(ServerError::JoinRejected {
            cause: JoinRejectCause::PresenterSeatTaken,
            ..
        })
    ));
    // The viewer is still gated post-migration.
    assert!(matches!(
        cf.act(room, "user-1", Action::Freeze { object: image_id }),
        Err(ServerError::ActionRejected { .. })
    ));

    // Crash the room's new home; failover folds the journal back into a
    // live room — including the role table, reconstructed from the
    // role-carrying `Joined` events.
    cf.kill_shard(1);
    let moved = cf.advance_and_fail_over(10.0).unwrap();
    assert_eq!(moved, vec![(room, 0)]);
    assert_eq!(cf.role_of(room, "user-0").unwrap(), Some(Role::Presenter));
    assert_eq!(cf.presenter(room).unwrap().as_deref(), Some("user-0"));
    assert!(matches!(
        cf.join(room, &JoinRequest::presenter("user-2")),
        Err(ServerError::JoinRejected {
            cause: JoinRejectCause::PresenterSeatTaken,
            ..
        })
    ));
    // The rebuilt room still enforces the capability table: a returning
    // viewer is denied mutation, and the presenter keeps presenting.
    let (conn1, _) = cf.resync(room, "user-1", 0).unwrap();
    assert_eq!(conn1.role, Role::Viewer);
    assert!(matches!(
        cf.act(room, "user-1", Action::Freeze { object: image_id }),
        Err(ServerError::ActionRejected { .. })
    ));
    let (conn0, _) = cf.resync(room, "user-0", 0).unwrap();
    assert_eq!(conn0.role, Role::Presenter);
    cf.act(
        room,
        "user-0",
        Action::Chat {
            text: "lecture continues".into(),
        },
    )
    .unwrap();
}

#[test]
fn journal_tail_is_bounded_by_compaction_and_failover_stays_lossless() {
    let (db, doc_id, _) = fixture_db(2);
    let mut cfg = test_config(2);
    cfg.heartbeat_faults = vec![FaultSpec::none(); 2];
    cfg.journal_tail_cap = 8;
    let cf = ClusterFrontend::new(db, cfg);

    let room = cf.create_room("user-0", "chatty", doc_id).unwrap();
    cf.migrate_room(room, 0).unwrap();
    let conn = cf.join_default(room, "user-0").unwrap();
    for i in 0..50 {
        cf.act(
            room,
            "user-0",
            Action::Chat {
                text: format!("m{i}"),
            },
        )
        .unwrap();
    }

    // Maintenance folds the over-cap tail into the checkpoint; the
    // drained tail afterwards is within the cap (here: empty).
    let compacted = cf.maintain_replicas().unwrap();
    assert!(compacted >= 1, "over-cap tail was not compacted");
    let (replicated, tail) = cf.replication_status(room).unwrap();
    assert_eq!(replicated, cf.last_seq(room).unwrap());
    assert!(tail <= 8, "tail {tail} exceeds the configured cap");
    let snap = cf.metrics();
    assert!(snap.counters["cluster.journal.compact.count"] >= 1);
    assert!(snap.counters["cluster.journal.evicted.count"] > 8);
    assert_eq!(snap.counters["cluster.journal.compact.lossy.count"], 0);

    // The compacted replica fails over with the same zero-loss guarantee
    // an uncompacted one gives: the rebuilt room continues the exact
    // sequence the client last saw.
    let last = cf.last_seq(room).unwrap();
    drop(conn);
    cf.kill_shard(0);
    let moved = cf.advance_and_fail_over(10.0).unwrap();
    assert_eq!(moved, vec![(room, 1)]);
    assert_eq!(cf.last_seq(room).unwrap(), last);
    assert_eq!(cf.metrics().counters["cluster.failover.lossy.count"], 0);
    let (_conn, catch_up) = cf.resync(room, "user-0", last).unwrap();
    assert!(matches!(catch_up, Resync::Events(ref evs) if evs.is_empty()));
}
